// Ablation D: the extension learners on the paper's five representative
// datasets — Table 4's layout applied to the roster the paper surveys
// but does not run (MAS, SI from §A.1; SAM-kNN from ref [54]; OzaBag;
// incremental Naive-Bayes; detect-and-reset from §2.2), with Naive-NN
// and SEA-DT as anchors from the original table.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/recommendation.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Ablation D",
                     "Extension learners on the representative datasets "
                     "(mean ± std over seeds)");
  const std::vector<std::string> learners = {
      "Naive-NN", "SEA-DT",        "MAS",     "SI",
      "SAM-kNN",  "OzaBag",        "Naive-Bayes",
      "DriftReset-NN"};
  std::printf("%-12s", "Dataset");
  for (const std::string& name : learners) {
    std::printf(" %14s", name.c_str());
  }
  std::printf(" %14s\n", "Best");

  LearnerConfig config;
  config.seed = flags.seed;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("%-12s", info.short_name.c_str());
    std::fflush(stdout);
    std::vector<RepeatedResult> results;
    for (const std::string& name : learners) {
      RepeatedResult result =
          RunRepeated(name, config, stream, flags.repeats);
      results.push_back(result);
      std::printf(" %14s", bench::FormatLoss(result).c_str());
      std::fflush(stdout);
    }
    std::printf(" %14s\n", BestAlgorithm(results).c_str());
  }
  std::printf(
      "\nReading: the regularisers (MAS, SI) track Naive-NN as EWC/LwF\n"
      "do; the instance-based learners (SAM-kNN) are strong on the\n"
      "drifting classification streams; Naive-Bayes is the cheapest\n"
      "baseline and competitive only where the classes are near-Gaussian\n"
      "— the paper's 'no silver bullet' finding again, now over the\n"
      "extended roster.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.06, 2));
  return 0;
}
