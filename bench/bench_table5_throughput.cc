// Reproduces Table 5: throughput (items/second) of the ten algorithms on
// the five representative datasets. The shape to reproduce: decision
// trees are orders of magnitude faster than NN-based methods; EWC/LwF
// roughly halve Naive-NN's throughput; ARF is by far the slowest.

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Table 5",
                     "Throughput (items/second), higher is better");
  const std::vector<std::string> learners = {
      "Naive-NN", "EWC",        "LwF",    "iCaRL",    "SEA-NN",
      "Naive-DT", "Naive-GBDT", "SEA-DT", "SEA-GBDT", "ARF"};
  std::printf("%-12s", "Dataset");
  for (const std::string& name : learners) {
    std::printf(" %11s", name.c_str());
  }
  std::printf("\n");

  LearnerConfig config;
  config.seed = flags.seed;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("%-12s", info.short_name.c_str());
    std::fflush(stdout);
    for (const std::string& name : learners) {
      // Throughput comes from the metrics layer: the evaluator records
      // items and phase seconds into the registry, and the cell reads
      // them back — no stopwatch in this bench.
      bench::BeginCell();
      RepeatedResult result = RunRepeated(name, config, stream, 1);
      if (result.not_applicable) {
        std::printf(" %11s", "N/A");
      } else {
        std::printf(" %11.0f", bench::CollectCell().Throughput());
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: Naive-DT >> Naive-GBDT > SEA trees >> NN\n"
      "family; EWC/LwF/iCaRL below Naive-NN; ARF slowest by 1-3 orders\n"
      "of magnitude.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
