// Reproduces Figure 8 and the §5.3 case study: sustained anomalous
// episodes (the Beijing 2012 flood and the 2014-15 haze analogues) are
// injected into a PM2.5-like stream; ECOD and Isolation Forest are run
// per window and their detections are compared against the injected
// ground truth — precision/recall the real data could never provide.

#include <cstdio>

#include "bench/bench_util.h"
#include "outlier/ecod.h"
#include "outlier/isolation_forest.h"
#include "stats/outlier_stats.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 8",
                     "Detected anomalies around flood / haze events");
  StreamSpec spec = RepresentativeSpec("ROOM", flags.scale);
  spec.task = TaskType::kRegression;  // PM2.5-style target
  spec.name = "beijing_pm25_events";
  spec.anomaly_events.clear();
  spec.point_anomaly_rate = 0.0;
  // The paper's 30-day windows are long relative to the events; keep
  // that proportion. The mean+3*sd rule is relative to the window's own
  // score distribution, so a window can only surface anomalies that stay
  // a small minority of it (<~5%) — beyond that the contamination drags
  // the threshold above the anomalies themselves.
  spec.window_size = std::max<int64_t>(100, spec.num_instances / 12);
  // "Flood": one-day burst of extreme values across the weather sensors.
  spec.anomaly_events.push_back({0.300, 0.303, 0.9, 1, 20.0, 6});
  // "Haze": months-long episode at a low per-row rate.
  spec.anomaly_events.push_back({0.60, 0.75, 0.03, 2, 16.0, 6});
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  OE_CHECK(prepared.ok());

  std::vector<OutlierStats> stats = ComputeOutlierStats(*prepared);
  for (const OutlierStats& s : stats) {
    std::printf("%-8s per-window anomaly ratio: %s (avg %.4f, max %.4f)\n",
                s.detector.c_str(),
                bench::Spark(s.ratio_per_window).c_str(),
                s.anomaly_ratio_avg, s.anomaly_ratio_max);
  }

  // Row-level precision/recall vs injected ground truth, per detector.
  std::vector<bool> truth(static_cast<size_t>(stream->table.num_rows()),
                          false);
  for (int64_t row : stream->true_outlier_rows) {
    truth[static_cast<size_t>(row)] = true;
  }
  for (const char* detector_name : {"ecod", "iforest"}) {
    int64_t tp = 0;
    int64_t fp = 0;
    int64_t fn = 0;
    for (size_t w = 0; w < prepared->windows.size(); ++w) {
      const Matrix& features = prepared->windows[w].features;
      if (features.rows() < 8) continue;
      std::vector<double> scores;
      if (std::string(detector_name) == "ecod") {
        Ecod detector;
        Result<std::vector<double>> s = detector.FitScore(features);
        OE_CHECK(s.ok());
        scores = *s;
      } else {
        IsolationForest::Options ifo;
        ifo.num_trees = 50;
        ifo.seed = flags.seed + w;
        IsolationForest detector(ifo);
        Result<std::vector<double>> s = detector.FitScore(features);
        OE_CHECK(s.ok());
        scores = *s;
      }
      std::vector<bool> mask = ThresholdOutliers(scores);
      for (int64_t r = 0; r < features.rows(); ++r) {
        bool is_true =
            truth[static_cast<size_t>(prepared->ranges[w].begin + r)];
        bool flagged = mask[static_cast<size_t>(r)];
        if (flagged && is_true) ++tp;
        if (flagged && !is_true) ++fp;
        if (!flagged && is_true) ++fn;
      }
    }
    double precision =
        tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    double recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
    std::printf("%-8s precision %.3f recall %.3f (tp=%lld fp=%lld "
                "fn=%lld)\n",
                detector_name, precision, recall,
                static_cast<long long>(tp), static_cast<long long>(fp),
                static_cast<long long>(fn));
  }
  std::printf(
      "\nPaper shape check: both detectors localise the abrupt flood\n"
      "episode (ratio spike near 30%% of the stream) and the sustained\n"
      "haze episode (elevated ratios around 60-75%%), with similar\n"
      "outcomes (§5.3: 'they yielded similar outcomes').\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.3, 1));
  return 0;
}
