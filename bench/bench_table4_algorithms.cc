// Reproduces Table 4: test loss / test error of the ten stream-learning
// algorithms on the five representative datasets, each repeated with
// three random seeds (mean ± stddev). The paper's qualitative findings
// this bench reproduces: no algorithm wins everywhere; tree models lead
// classification with low anomaly; NN models lead regression with low
// missing values; ARF is N/A for regression.
//
// The 5 x 10 grid (x repeats) runs on the deterministic parallel sweep
// engine; --threads only changes wall-clock, never the numbers. Like
// bench_table9, the grid can be split across machines: `--shard i/n
// --log shard_i.log` (resumable with --resume) and `--merge log...`
// reprints the exact table of a single-process run.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "core/parallel_eval.h"
#include "core/recommendation.h"
#include "sweep/merge.h"
#include "sweep/shard_runner.h"

namespace oebench {
namespace {

const std::vector<std::string>& Learners() {
  static const std::vector<std::string> kLearners = {
      "Naive-NN", "EWC",        "LwF",    "iCaRL",    "SEA-NN",
      "Naive-DT", "Naive-GBDT", "SEA-DT", "SEA-GBDT", "ARF"};
  return kLearners;
}

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    names.push_back(info.short_name);
  }
  return names;
}

SweepConfig MakeConfig(const bench::BenchFlags& flags) {
  SweepConfig config;
  config.base_config.seed = flags.seed;
  if (flags.epochs > 0) config.base_config.epochs = flags.epochs;
  config.repeats = flags.repeats;
  config.threads = flags.threads;
  config.scale = flags.scale;
  return config;
}

void PrintColumns() {
  bench::PrintHeader("Table 4",
                     "Test loss / error of stream learning algorithms "
                     "(mean ± std over seeds)");
  std::printf("%-12s", "Dataset");
  for (const std::string& name : Learners()) {
    std::printf(" %13s", name.c_str());
  }
  std::printf(" %13s\n", "Best");
  std::fflush(stdout);
}

void PrintRows(const SweepOutcome& sweep) {
  for (const SweepRow& row : sweep.rows) {
    std::printf("%-12s", row.dataset.c_str());
    std::vector<RepeatedResult> results;
    for (const SweepCell& cell : row.cells) {
      results.push_back(cell.repeated);
      std::printf(" %13s", bench::FormatLoss(cell.repeated).c_str());
    }
    std::printf(" %13s\n", BestAlgorithm(results).c_str());
  }
  std::printf(
      "\nPaper shape check: classification rows should favour tree/ensemble\n"
      "models or iCaRL; regression rows with low missing values should\n"
      "favour NN-family models; Naive-DT should trail on POWER (paper:\n"
      "1.278 vs ~0.8 for NN).\n");
}

sweep::TaskManifest Manifest(const SweepConfig& config) {
  sweep::SweepGrid grid;
  grid.datasets = DatasetNames();
  grid.learners = Learners();
  grid.repeats = config.repeats;
  return sweep::TaskManifest::Build(std::move(grid));
}

int RunMerge(const bench::BenchFlags& flags) {
  // Roll up per-shard metrics files (if any) before the table merge, so
  // an unusable metrics input fails as early as an unusable shard log.
  if (int code = bench::MergeModeMetrics(flags); code != 0) return code;
  SweepConfig config = MakeConfig(flags);
  sweep::TaskManifest manifest = Manifest(config);
  Result<SweepOutcome> merged = sweep::MergeShardLogs(
      manifest, sweep::MakeLogHeader(manifest, config, sweep::Shard{}),
      flags.merge_logs);
  if (!merged.ok()) {
    std::fprintf(stderr, "merge failed: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  PrintColumns();
  PrintRows(*merged);
  return 0;
}

int RunShard(const bench::BenchFlags& flags) {
  SweepConfig config = MakeConfig(flags);
  sweep::TaskManifest manifest = Manifest(config);

  // Generate + preprocess only the datasets this shard's span touches.
  std::vector<std::string> owned = manifest.ShardDatasets(flags.shard);
  std::set<std::string> wanted(owned.begin(), owned.end());
  std::vector<StreamSpec> specs;
  std::vector<std::string> names;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    if (wanted.count(info.short_name) == 0) continue;
    specs.push_back(RepresentativeSpec(info.short_name, flags.scale));
    names.push_back(info.short_name);
  }
  // A dataset whose preparation fails is reported and dropped (no
  // process abort); the shard runner then returns a clean Status
  // naming the dataset it is missing.
  std::vector<PreparedStream> streams;
  for (Result<PreparedStream>& prepared :
       ParallelPrepare(specs, config.pipeline, config.threads, names)) {
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   prepared.status().ToString().c_str());
      continue;
    }
    streams.push_back(std::move(*prepared));
  }

  sweep::ShardRunOptions options;
  options.config = config;
  options.shard = flags.shard;
  options.log_path = flags.log_path;
  options.resume = flags.resume;
  Result<sweep::ShardRunStats> stats =
      sweep::RunPreparedShard(streams, DatasetNames(), Learners(), options);
  // Dump metrics even for a failed shard: the snapshot is often the
  // evidence of what went wrong.
  bench::MaybeWriteMetrics(flags);
  if (!stats.ok()) {
    std::fprintf(stderr, "shard failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[shard %d/%d] %lld task(s): %lld executed, %lld resumed, "
               "%lld n/a -> %s\n",
               flags.shard.index, flags.shard.count,
               static_cast<long long>(stats->shard_tasks),
               static_cast<long long>(stats->tasks_executed),
               static_cast<long long>(stats->tasks_resumed),
               static_cast<long long>(stats->na_logged),
               options.log_path.c_str());
  return 0;
}

int Run(const bench::BenchFlags& flags) {
  if (flags.merge) return RunMerge(flags);
  if (flags.shard.count > 1 || !flags.log_path.empty()) {
    return RunShard(flags);
  }

  PrintColumns();
  SweepConfig config = MakeConfig(flags);
  // Prepare the five streams in parallel too, keeping their Table 3
  // short names.
  std::vector<StreamSpec> specs;
  std::vector<std::string> names = DatasetNames();
  for (const std::string& name : names) {
    specs.push_back(RepresentativeSpec(name, flags.scale));
  }
  std::vector<PreparedStream> streams;
  for (Result<PreparedStream>& prepared :
       ParallelPrepare(specs, config.pipeline, config.threads, names)) {
    if (!prepared.ok()) {
      // Report and keep going with the datasets that did prepare —
      // a partial Table 4 beats an aborted process.
      std::fprintf(stderr, "prepare failed: %s\n",
                   prepared.status().ToString().c_str());
      continue;
    }
    streams.push_back(std::move(*prepared));
  }
  PrintRows(ParallelSweep(streams, Learners(), config));
  bench::MaybeWriteMetrics(flags);
  return 0;
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  return oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 3));
}
