// Reproduces Table 4: test loss / test error of the ten stream-learning
// algorithms on the five representative datasets, each repeated with
// three random seeds (mean ± stddev). The paper's qualitative findings
// this bench reproduces: no algorithm wins everywhere; tree models lead
// classification with low anomaly; NN models lead regression with low
// missing values; ARF is N/A for regression.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/recommendation.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Table 4",
                     "Test loss / error of stream learning algorithms "
                     "(mean ± std over seeds)");
  const std::vector<std::string> learners = {
      "Naive-NN", "EWC",      "LwF",        "iCaRL",  "SEA-NN",
      "Naive-DT", "Naive-GBDT", "SEA-DT", "SEA-GBDT", "ARF"};
  std::printf("%-12s", "Dataset");
  for (const std::string& name : learners) {
    std::printf(" %13s", name.c_str());
  }
  std::printf(" %13s\n", "Best");

  LearnerConfig config;
  config.seed = flags.seed;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("%-12s", info.short_name.c_str());
    std::fflush(stdout);
    std::vector<RepeatedResult> results;
    for (const std::string& name : learners) {
      RepeatedResult result =
          RunRepeated(name, config, stream, flags.repeats);
      results.push_back(result);
      std::printf(" %13s", bench::FormatLoss(result).c_str());
      std::fflush(stdout);
    }
    std::printf(" %13s\n", BestAlgorithm(results).c_str());
  }
  std::printf(
      "\nPaper shape check: classification rows should favour tree/ensemble\n"
      "models or iCaRL; regression rows with low missing values should\n"
      "favour NN-family models; Naive-DT should trail on POWER (paper:\n"
      "1.278 vs ~0.8 for NN).\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 3));
  return 0;
}
