// Reproduces Table 4: test loss / test error of the ten stream-learning
// algorithms on the five representative datasets, each repeated with
// three random seeds (mean ± stddev). The paper's qualitative findings
// this bench reproduces: no algorithm wins everywhere; tree models lead
// classification with low anomaly; NN models lead regression with low
// missing values; ARF is N/A for regression.
//
// The 5 x 10 grid (x repeats) runs on the deterministic parallel sweep
// engine; --threads only changes wall-clock, never the numbers.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/parallel_eval.h"
#include "core/recommendation.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Table 4",
                     "Test loss / error of stream learning algorithms "
                     "(mean ± std over seeds)");
  const std::vector<std::string> learners = {
      "Naive-NN", "EWC",      "LwF",        "iCaRL",  "SEA-NN",
      "Naive-DT", "Naive-GBDT", "SEA-DT", "SEA-GBDT", "ARF"};
  std::printf("%-12s", "Dataset");
  for (const std::string& name : learners) {
    std::printf(" %13s", name.c_str());
  }
  std::printf(" %13s\n", "Best");
  std::fflush(stdout);

  SweepConfig config;
  config.base_config.seed = flags.seed;
  config.repeats = flags.repeats;
  config.threads = flags.threads;

  // Prepare the five streams in parallel too, keeping their Table 3
  // short names.
  std::vector<StreamSpec> specs;
  std::vector<std::string> names;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    specs.push_back(RepresentativeSpec(info.short_name, flags.scale));
    names.push_back(info.short_name);
  }
  std::vector<PreparedStream> streams =
      ParallelPrepare(specs, config.pipeline, config.threads, names);

  SweepOutcome sweep = ParallelSweep(streams, learners, config);
  for (const SweepRow& row : sweep.rows) {
    std::printf("%-12s", row.dataset.c_str());
    std::vector<RepeatedResult> results;
    for (const SweepCell& cell : row.cells) {
      results.push_back(cell.repeated);
      std::printf(" %13s", bench::FormatLoss(cell.repeated).c_str());
    }
    std::printf(" %13s\n", BestAlgorithm(results).c_str());
  }
  std::printf(
      "\nPaper shape check: classification rows should favour tree/ensemble\n"
      "models or iCaRL; regression rows with low missing values should\n"
      "favour NN-family models; Naive-DT should trail on POWER (paper:\n"
      "1.278 vs ~0.8 for NN).\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 3));
  return 0;
}
