// Reproduces Figure 5: test-loss curve of a neural network on the
// high-missing AIR-like stream under three missing-feature policies —
// filling with oracle (whole-stream) knowledge, filling with only
// current-window knowledge, and discarding the chronically missing
// features. Shape to reproduce: discarding performs on par with filling
// ("more data does not necessarily lead to better model effectiveness").

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

EvalResult RunPolicy(const std::string& label, const PipelineOptions& options,
                     const bench::BenchFlags& flags) {
  PreparedStream stream = bench::MakePrepared("AIR", flags.scale, options);
  LearnerConfig config;
  config.seed = flags.seed;
  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner("Naive-NN", config, stream.task, stream.num_classes);
  OE_CHECK(learner.ok());
  EvalResult result = RunPrequential(learner->get(), stream);
  std::printf("%-18s mean loss %.4f  curve %s\n", label.c_str(),
              result.mean_loss,
              bench::Spark(result.per_window_loss).c_str());
  return result;
}

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 5",
                     "NN test loss on the AIR-like stream per "
                     "missing-value policy");
  PipelineOptions oracle;
  oracle.impute_scope = ImputeScope::kOracle;
  EvalResult r_oracle = RunPolicy("Filling (oracle)", oracle, flags);

  PipelineOptions normal;
  normal.impute_scope = ImputeScope::kPerWindow;
  EvalResult r_normal = RunPolicy("Filling (normal)", normal, flags);

  PipelineOptions discard;
  discard.discard_missing_above = 0.35;
  EvalResult r_discard = RunPolicy("Discard", discard, flags);

  double spread = std::max({r_oracle.mean_loss, r_normal.mean_loss,
                            r_discard.mean_loss}) -
                  std::min({r_oracle.mean_loss, r_normal.mean_loss,
                            r_discard.mean_loss});
  std::printf(
      "\nSpread across policies: %.4f\n"
      "Paper shape check: the three curves track each other closely —\n"
      "discarding always-missing features matches filling them.\n",
      spread);
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
