// Reproduces Appendix Table 8: the capability matrix of the drift
// detection methods — detector type, required input, applicable task,
// and stream/batch operation. Printed from the roster actually
// implemented in src/drift so the table cannot drift from the code.

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

struct RosterRow {
  const char* method;
  const char* type;
  const char* input;
  const char* task;
  bool stream;
  bool batch;
  const char* header;  // implementing header
};

void Run() {
  bench::PrintHeader("Table 8 (appendix)",
                     "Summary of implemented drift detection methods");
  const RosterRow rows[] = {
      {"DDM", "Concept drift", "Error rate", "Classification", true,
       false, "drift/ddm.h"},
      {"EDDM", "Concept drift", "Error rate", "Classification", true,
       false, "drift/eddm.h"},
      {"ADWIN accuracy", "Concept drift", "Error rate", "Classification",
       true, false, "drift/adwin.h"},
      {"FW-DDM", "Concept drift", "Error rate", "Classification", true,
       false, "drift/fw_ddm.h"},
      {"ECDD", "Concept drift", "Error rate", "Classification", true,
       false, "drift/ecdd.h"},
      {"LFR", "Concept drift", "(pred, label) pairs",
       "Binary classification", true, false, "drift/lfr.h"},
      {"MD3", "Concept drift", "Margin/decision score",
       "Binary classification", true, false, "drift/md3.h"},
      {"PERM", "Concept drift", "Test loss", "Cls / Regression", false,
       true, "drift/perm.h"},
      {"EIA", "Concept drift", "Error intersection", "Cls / Regression",
       false, true, "drift/eia.h"},
      {"KS statistic", "Data drift", "1-D data", "Cls / Regression",
       false, true, "drift/ks_test.h"},
      {"Wilcoxon", "Data drift", "1-D data", "Cls / Regression", false,
       true, "drift/wilcoxon.h"},
      {"ADWIN", "Data drift", "1-D data", "Cls / Regression", true,
       false, "drift/adwin.h"},
      {"HDDM-A", "Data drift", "1-D data", "Cls / Regression", true,
       false, "drift/hddm_a.h"},
      {"Page-Hinkley", "Data drift", "1-D data", "Cls / Regression",
       true, false, "drift/page_hinkley.h"},
      {"CDBD", "Data drift", "Confidence score", "Cls / Regression",
       false, true, "drift/cdbd.h"},
      {"HDDDM", "Data drift", "Multi-dim data", "Cls / Regression",
       false, true, "drift/hdddm.h"},
      {"kdq-Tree", "Data drift", "Multi-dim data", "Cls / Regression",
       false, true, "drift/kdq_tree.h"},
      {"PCA-CD", "Data drift", "Multi-dim data", "Cls / Regression",
       false, true, "drift/pca_cd.h"},
  };
  std::printf("%-15s %-14s %-22s %-22s %-7s %-6s %s\n", "Method",
              "Detector type", "Input", "Applicable task", "Stream",
              "Batch", "Implementation");
  for (const RosterRow& row : rows) {
    std::printf("%-15s %-14s %-22s %-22s %-7s %-6s %s\n", row.method,
                row.type, row.input, row.task, row.stream ? "yes" : "-",
                row.batch ? "yes" : "-", row.header);
  }
  std::printf(
      "\n18 methods; the paper's Table 8 lists 16 (we add Page-Hinkley\n"
      "and the Wilcoxon rank-sum test named in Appendix A.2).\n"
      "Each row is backed by unit tests in tests/drift_test.cc and\n"
      "tests/extension_test.cc and scored against ground truth in\n"
      "bench_ablation_detectors.\n");
}

}  // namespace
}  // namespace oebench

int main() {
  oebench::Run();
  return 0;
}
