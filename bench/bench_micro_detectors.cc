// Micro-benchmarks (google-benchmark) of the drift and outlier detectors:
// per-batch update cost as window size grows. These back the paper's
// efficiency discussion (§6.3) at the detector level and serve as an
// ablation for detector configuration choices.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench/bench_micro_util.h"
#include "common/random.h"
#include "drift/adwin.h"
#include "linalg/vector_ops.h"
#include "drift/hdddm.h"
#include "drift/kdq_tree.h"
#include "drift/ks_test.h"
#include "drift/pca_cd.h"
#include "outlier/ecod.h"
#include "outlier/isolation_forest.h"

namespace oebench {
namespace {

Matrix RandomBatch(Rng* rng, int64_t rows, int64_t cols) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng->Gaussian();
  return m;
}

void BM_KsWindowDetector(benchmark::State& state) {
  Rng rng(1);
  KsWindowDetector detector;
  std::vector<double> batch(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (double& v : batch) v = rng.Gaussian();
    benchmark::DoNotOptimize(detector.Update(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KsWindowDetector)->Arg(128)->Arg(512)->Arg(2048);

void BM_Hdddm(benchmark::State& state) {
  Rng rng(2);
  Hdddm detector;
  for (auto _ : state) {
    Matrix batch = RandomBatch(&rng, state.range(0), 8);
    benchmark::DoNotOptimize(detector.Update(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Hdddm)->Arg(128)->Arg(512);

void BM_KdqTree(benchmark::State& state) {
  Rng rng(3);
  KdqTreeDetector detector;
  for (auto _ : state) {
    Matrix batch = RandomBatch(&rng, state.range(0), 8);
    benchmark::DoNotOptimize(detector.Update(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdqTree)->Arg(128)->Arg(512);

void BM_PcaCd(benchmark::State& state) {
  Rng rng(4);
  PcaCd detector;
  for (auto _ : state) {
    Matrix batch = RandomBatch(&rng, state.range(0), 8);
    benchmark::DoNotOptimize(detector.Update(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PcaCd)->Arg(128)->Arg(512);

void BM_AdwinUpdate(benchmark::State& state) {
  Rng rng(5);
  Adwin adwin;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adwin.Update(rng.Gaussian()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdwinUpdate);

void BM_EcodFitScore(benchmark::State& state) {
  Rng rng(6);
  Matrix batch = RandomBatch(&rng, state.range(0), 8);
  for (auto _ : state) {
    Ecod detector;
    benchmark::DoNotOptimize(detector.FitScore(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EcodFitScore)->Arg(128)->Arg(512)->Arg(2048);

void BM_IsolationForestFitScore(benchmark::State& state) {
  Rng rng(7);
  Matrix batch = RandomBatch(&rng, state.range(0), 8);
  IsolationForest::Options options;
  options.num_trees = static_cast<int>(state.range(1));
  for (auto _ : state) {
    IsolationForest detector(options);
    benchmark::DoNotOptimize(detector.FitScore(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsolationForestFitScore)
    ->Args({512, 25})
    ->Args({512, 50})
    ->Args({512, 100});

// ---------------------------------------------------------------------
// Per-kernel splits: the vector_ops reductions the detector updates
// above spend most of their time in, timed in isolation so a kernel
// regression is attributable without bisecting a detector.

void BM_VectorMean(benchmark::State& state) {
  Rng rng(8);
  std::vector<double> v(static_cast<size_t>(state.range(0)));
  for (double& x : v) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mean(v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VectorMean)->Arg(512)->Arg(4096);

void BM_VectorVariance(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> v(static_cast<size_t>(state.range(0)));
  for (double& x : v) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Variance(v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VectorVariance)->Arg(512)->Arg(4096);

void BM_VectorQuantile(benchmark::State& state) {
  Rng rng(10);
  std::vector<double> v(static_cast<size_t>(state.range(0)));
  for (double& x : v) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Quantile(v, 0.95));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VectorQuantile)->Arg(512)->Arg(4096);

void BM_NanEuclidean(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> a(static_cast<size_t>(state.range(0)));
  std::vector<double> b(a.size());
  for (double& x : a) x = rng.Bernoulli(0.1) ? NAN : rng.Gaussian();
  for (double& x : b) x = rng.Bernoulli(0.1) ? NAN : rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(NanEuclideanDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NanEuclidean)->Arg(64)->Arg(512);

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  return oebench::bench::RunMicroSuite(argc, argv,
                                       "BENCH_micro_detectors.json");
}
