// Reproduces Figure 6: t-SNE visualisation of the seasonal (recurrent
// drift) air-quality stream. The paper plots one 2-D scatter per month
// and observes the cloud moving cyclically. Here we embed a subsample,
// report the centroid trajectory per window group, and verify the
// recurrent pattern: consecutive groups move, distant-in-phase groups
// return near the start.

#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/tsne.h"
#include "linalg/vector_ops.h"
#include "preprocess/imputer.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 6",
                     "t-SNE of the seasonal AIR-like stream (centroid "
                     "trajectory per period-eighth)");
  StreamSpec spec = RepresentativeSpec("AIR", flags.scale);
  spec.base_missing_rate = 0.0;  // keep the embedding about the drift
  spec.dropouts.clear();
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok());

  // Subsample 400 rows evenly, keep their phase group (8 groups per
  // seasonal period).
  Table features;
  for (int64_t c = 0; c < stream->table.num_columns(); ++c) {
    if (stream->table.column(c).name() == "target") continue;
    OE_CHECK(features.AddColumn(stream->table.column(c)).ok());
  }
  Result<Matrix> x_full = features.ToMatrix();
  OE_CHECK(x_full.ok());
  const int64_t n = x_full->rows();
  const int64_t sample_size = std::min<int64_t>(400, n);
  std::vector<int64_t> rows;
  std::vector<int> groups;
  const double period = spec.drift_period_fraction;
  for (int64_t i = 0; i < sample_size; ++i) {
    int64_t r = i * n / sample_size;
    rows.push_back(r);
    double frac = static_cast<double>(r) / static_cast<double>(n);
    double phase = std::fmod(frac / period, 1.0);
    groups.push_back(static_cast<int>(phase * 8.0));
  }
  Matrix x = x_full->SelectRows(rows);
  MeanImputer imputer;
  OE_CHECK(imputer.Fit(x).ok());
  OE_CHECK(imputer.Transform(&x).ok());

  Tsne::Options options;
  options.perplexity = 20.0;
  options.max_iterations = 250;
  Tsne tsne(options);
  Result<Matrix> embedded = tsne.Embed(x);
  OE_CHECK(embedded.ok()) << embedded.status().ToString();

  // Centroid per phase group.
  std::vector<std::vector<double>> centroid(8, {0.0, 0.0});
  std::vector<int> counts(8, 0);
  for (size_t i = 0; i < groups.size(); ++i) {
    int g = groups[i];
    centroid[static_cast<size_t>(g)][0] +=
        embedded->At(static_cast<int64_t>(i), 0);
    centroid[static_cast<size_t>(g)][1] +=
        embedded->At(static_cast<int64_t>(i), 1);
    ++counts[static_cast<size_t>(g)];
  }
  std::printf("%-8s %10s %10s %8s\n", "phase", "x", "y", "points");
  for (int g = 0; g < 8; ++g) {
    if (counts[static_cast<size_t>(g)] == 0) continue;
    centroid[static_cast<size_t>(g)][0] /= counts[static_cast<size_t>(g)];
    centroid[static_cast<size_t>(g)][1] /= counts[static_cast<size_t>(g)];
    std::printf("%-8d %10.2f %10.2f %8d\n", g,
                centroid[static_cast<size_t>(g)][0],
                centroid[static_cast<size_t>(g)][1],
                counts[static_cast<size_t>(g)]);
  }
  // Recurrence check: adjacent phases close, opposite phases far.
  double adjacent = std::sqrt(SquaredDistance(centroid[0], centroid[1]));
  double opposite = std::sqrt(SquaredDistance(centroid[0], centroid[4]));
  std::printf(
      "\ncentroid distance phase0->phase1: %.2f; phase0->phase4: %.2f\n"
      "Paper shape check: the cloud shifts with the seasonal phase\n"
      "(opposite-phase distance exceeds adjacent-phase distance: %s).\n",
      adjacent, opposite, opposite > adjacent ? "yes" : "no");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
