// Ablation B: the extension learners against the paper's set.
// (1) Regulariser family — EWC vs MAS vs SI vs plain Naive-NN — on the
//     five representative datasets.
// (2) Detect-and-reset (§2.2's proposed strategy) vs its naive base on
//     abrupt-drift vs stationary streams: does resetting at drift alarms
//     pay, and what does it cost when there is no drift?

#include <cstdio>

#include "bench/bench_util.h"
#include "core/drift_reset.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Ablation B1",
                     "Regularisation family (loss, mean over seeds)");
  const std::vector<std::string> learners = {"Naive-NN", "EWC", "MAS",
                                             "SI"};
  std::printf("%-12s", "Dataset");
  for (const std::string& name : learners) {
    std::printf(" %10s", name.c_str());
  }
  std::printf("\n");
  LearnerConfig config;
  config.seed = flags.seed;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("%-12s", info.short_name.c_str());
    for (const std::string& name : learners) {
      std::printf(" %10.4f",
                  RunRepeated(name, config, stream, flags.repeats)
                      .loss_mean);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected: the three regularisers track Naive-NN closely — the\n"
      "paper's conclusion that regularisation-based incremental learning\n"
      "brings little on open-environment streams extends to MAS and SI.\n");

  bench::PrintHeader("Ablation B2",
                     "Detect-and-reset vs naive base (abrupt vs "
                     "stationary streams)");
  std::printf("%-12s %-16s %12s %12s %8s\n", "regime", "learner",
              "mean loss", "post-drift", "resets");
  for (bool drifting : {true, false}) {
    StreamSpec spec = RepresentativeSpec("POWER", flags.scale);
    spec.drift_pattern =
        drifting ? DriftPattern::kAbrupt : DriftPattern::kNone;
    spec.drift_magnitude = drifting ? 3.0 : 0.0;
    Result<GeneratedStream> stream = GenerateStream(spec);
    OE_CHECK(stream.ok());
    Result<PreparedStream> prepared = PrepareStream(*stream);
    OE_CHECK(prepared.ok());
    for (const char* name : {"Naive-NN", "DriftReset-NN", "Naive-DT",
                             "DriftReset-DT"}) {
      Result<std::unique_ptr<StreamLearner>> learner =
          MakeLearner(name, config, prepared->task,
                      prepared->num_classes);
      OE_CHECK(learner.ok());
      EvalResult result = RunPrequential(learner->get(), *prepared);
      // Post-drift loss: mean over the second half of windows.
      double post = 0.0;
      size_t half = result.per_window_loss.size() / 2;
      for (size_t w = half; w < result.per_window_loss.size(); ++w) {
        post += result.per_window_loss[w];
      }
      post /= static_cast<double>(result.per_window_loss.size() - half);
      auto* reset_learner =
          dynamic_cast<DriftResetLearner*>(learner->get());
      std::printf("%-12s %-16s %12.4f %12.4f %8s\n",
                  drifting ? "abrupt" : "stationary", name,
                  result.mean_loss, post,
                  reset_learner != nullptr
                      ? std::to_string(reset_learner->resets()).c_str()
                      : "-");
      std::fflush(stdout);
    }
  }
  bench::PrintHeader("Ablation B3",
                     "ARF vs OzaBag: what does per-tree drift detection "
                     "buy?");
  std::printf("%-12s %-10s %12s %12s\n", "regime", "learner", "mean loss",
              "post-drift");
  for (bool drifting : {true, false}) {
    StreamSpec spec = RepresentativeSpec("INSECTS", flags.scale);
    spec.drift_pattern =
        drifting ? DriftPattern::kAbrupt : DriftPattern::kNone;
    spec.drift_magnitude = drifting ? 3.0 : 0.0;
    Result<GeneratedStream> stream = GenerateStream(spec);
    OE_CHECK(stream.ok());
    Result<PreparedStream> prepared = PrepareStream(*stream);
    OE_CHECK(prepared.ok());
    for (const char* name : {"ARF", "OzaBag"}) {
      Result<std::unique_ptr<StreamLearner>> learner = MakeLearner(
          name, config, prepared->task, prepared->num_classes);
      OE_CHECK(learner.ok());
      EvalResult result = RunPrequential(learner->get(), *prepared);
      double post = 0.0;
      size_t half = result.per_window_loss.size() / 2;
      for (size_t w = half; w < result.per_window_loss.size(); ++w) {
        post += result.per_window_loss[w];
      }
      post /= static_cast<double>(result.per_window_loss.size() - half);
      std::printf("%-12s %-10s %12.4f %12.4f\n",
                  drifting ? "abrupt" : "stationary", name,
                  result.mean_loss, post);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nReading (B3): both ensembles share Hoeffding-NB trees, Poisson\n"
      "bagging and sqrt(d) subspaces; ARF adds per-tree ADWIN +\n"
      "background trees. Measured: the two tie on stationary streams,\n"
      "and under abrupt drift the *bagging* baseline wins — the leaf\n"
      "statistics of an incremental NB tree track the new concept\n"
      "in-place, while ARF's tree replacement restarts cold and pays for\n"
      "it. This isolates mechanically what the paper observes end to\n"
      "end: ARF's extra machinery does not deliver an effectiveness\n"
      "boost on these streams (§6.3).\n");

  std::printf(
      "\nReading: detect-and-reset is NOT a free win — for trees that\n"
      "retrain per window the reset is a no-op, and for the NN the reset\n"
      "discards a useful warm start unless the drift is catastrophic\n"
      "(the §5.3 blow-up case, where the wrapper's non-finite-loss reset\n"
      "is the only way to recover). On stationary streams it must stay\n"
      "quiet (resets ~0) and pay nothing. This extends the paper's\n"
      "'no silver bullet' finding to the §2.2 strategy itself.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.06, 1));
  return 0;
}
