// Reproduces Figure 2: the dataset-selection clustering. Profiles every
// corpus dataset, embeds the profiles (per-facet PCA to 3D), k-means with
// k=5, and reports each cluster's composition plus the selected
// representatives — the paper's "datasets nearest each cluster center".

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "core/selection.h"
#include "stats/profile.h"
#include "streamgen/corpus.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 2",
                     "Clustering of dataset profiles (k = 5) and the "
                     "selected representatives");
  // The extraction pass fans one task per corpus dataset across
  // --threads workers; profiles come back in corpus order.
  Result<std::vector<DatasetProfile>> extracted =
      ExtractProfiles(BuildCorpusSpecs(flags.scale), flags.threads);
  OE_CHECK(extracted.ok()) << extracted.status().ToString();
  std::vector<DatasetProfile> profiles = std::move(*extracted);
  std::printf("profiled %zu datasets\n", profiles.size());

  Result<SelectionResult> selection =
      SelectRepresentatives(profiles, 5, flags.seed);
  OE_CHECK(selection.ok()) << selection.status().ToString();

  for (int cluster = 0; cluster < 5; ++cluster) {
    double drift = 0.0;
    double missing = 0.0;
    double anomaly = 0.0;
    int count = 0;
    std::printf("\nCluster %d:", cluster);
    for (size_t i = 0; i < profiles.size(); ++i) {
      if (selection->assignments[i] != cluster) continue;
      ++count;
      drift += profiles[i].DriftScore();
      missing += profiles[i].MissingScore();
      anomaly += profiles[i].AnomalyScore();
      std::printf(" %s", profiles[i].name.c_str());
    }
    if (count > 0) {
      std::printf(
          "\n  -> %d datasets | mean drift %.3f, missing %.3f, anomaly "
          "%.4f\n",
          count, drift / count, missing / count, anomaly / count);
    } else {
      std::printf(" (empty)\n");
    }
  }
  std::printf("\nSelected representatives (nearest to each centre):\n");
  for (size_t c = 0; c < selection->representatives.size(); ++c) {
    const DatasetProfile& p =
        profiles[static_cast<size_t>(selection->representatives[c])];
    std::printf("  cluster %zu -> %-28s (%s, drift %.3f, missing %.3f, "
                "anomaly %.4f)\n",
                c, p.name.c_str(), TaskTypeToString(p.task),
                p.DriftScore(), p.MissingScore(), p.AnomalyScore());
  }
  std::printf(
      "\nPaper shape check: clusters separate along the missing / drift /\n"
      "anomaly axes, and the five representatives cover both tasks.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.03, 1));
  return 0;
}
