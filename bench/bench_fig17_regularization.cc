// Reproduces Figure 17 (appendix B.2): effect of the regularisation
// factor — EWC over {1e2, 1e3, 1e4, 1e5} and LwF over {0.001, 0.01, 0.1,
// 1, 10}. Shape to reproduce: small factors behave like naive training,
// mid factors are best, oversized factors degrade the model.

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 17", "Loss vs regularisation factor");
  const double ewc_grid[] = {1e2, 1e3, 1e4, 1e5};
  const double lwf_grid[] = {0.001, 0.01, 0.1, 1.0, 10.0};

  std::printf("EWC:\n%-12s", "Dataset");
  for (double factor : ewc_grid) std::printf(" %10.0e", factor);
  std::printf("\n");
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("%-12s", info.short_name.c_str());
    for (double factor : ewc_grid) {
      LearnerConfig config;
      config.seed = flags.seed;
      config.ewc_lambda = factor;
      std::printf(" %10.4f",
                  RunRepeated("EWC", config, stream, flags.repeats)
                      .loss_mean);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nLwF:\n%-12s", "Dataset");
  for (double factor : lwf_grid) std::printf(" %10g", factor);
  std::printf("\n");
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("%-12s", info.short_name.c_str());
    for (double factor : lwf_grid) {
      LearnerConfig config;
      config.seed = flags.seed;
      config.lwf_lambda = factor;
      std::printf(" %10.4f",
                  RunRepeated("LwF", config, stream, flags.repeats)
                      .loss_mean);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: EWC best around 1e2-1e3; LwF best around\n"
      "0.01; disproportionately large factors degrade effectiveness.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.05, 1));
  return 0;
}
