// Reproduces Figure 7 and the §5.2 ablation: test loss of a decision tree
// and a neural network per window on a drifting stream, with the windows
// around true drift occurrences marked. Also reruns the paper's
// train-on-all vs train-on-recent experiment: a model trained only on the
// post-drift windows beats one trained on everything.

#include <cstdio>

#include "bench/bench_util.h"
#include "models/decision_tree.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 7",
                     "Per-window loss around drifts (abrupt POWER-like "
                     "stream)");
  StreamSpec spec = RepresentativeSpec("POWER", flags.scale);
  spec.drift_pattern = DriftPattern::kAbrupt;  // single known switch point
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  OE_CHECK(prepared.ok());

  LearnerConfig config;
  config.seed = flags.seed;
  EvalResult nn = RunPrequential(
      MakeLearner("Naive-NN", config, prepared->task,
                  prepared->num_classes)
          ->get(),
      *prepared);
  EvalResult dt = RunPrequential(
      MakeLearner("Naive-DT", config, prepared->task,
                  prepared->num_classes)
          ->get(),
      *prepared);

  // Which evaluated windows contain a true drift row?
  std::vector<bool> drift_marker(nn.per_window_loss.size(), false);
  for (int64_t row : stream->true_drift_rows) {
    for (size_t w = 1; w < prepared->ranges.size(); ++w) {
      if (row >= prepared->ranges[w].begin &&
          row < prepared->ranges[w].end) {
        drift_marker[w - 1] = true;
      }
    }
  }
  std::printf("%-8s %10s %10s %s\n", "window", "NN loss", "DT loss",
              "drift?");
  size_t drift_window = 0;
  for (size_t w = 0; w < nn.per_window_loss.size(); ++w) {
    if (drift_marker[w]) drift_window = w;
    std::printf("%-8zu %10.4f %10.4f %s\n", w + 1, nn.per_window_loss[w],
                dt.per_window_loss[w], drift_marker[w] ? "  <-- drift" : "");
  }
  std::printf("\nNN curve: %s\nDT curve: %s\n",
              bench::Spark(nn.per_window_loss).c_str(),
              bench::Spark(dt.per_window_loss).c_str());

  // §5.2 ablation: train a tree on all pre-drift windows vs the recent
  // few, test on the window right after the drift.
  if (drift_window >= 4 &&
      drift_window + 2 < prepared->windows.size()) {
    size_t test_w = drift_window + 2;  // clearly in the new concept
    size_t recent_from = test_w - 3;
    auto stack = [&](size_t from, size_t to, Matrix* x,
                     std::vector<double>* y) {
      for (size_t w = from; w < to; ++w) {
        *x = x->rows() == 0
                 ? prepared->windows[w].features
                 : Matrix::VStack(*x, prepared->windows[w].features);
        y->insert(y->end(), prepared->windows[w].targets.begin(),
                  prepared->windows[w].targets.end());
      }
    };
    Matrix all_x;
    std::vector<double> all_y;
    stack(0, test_w, &all_x, &all_y);
    Matrix recent_x;
    std::vector<double> recent_y;
    stack(recent_from, test_w, &recent_x, &recent_y);

    DecisionTreeConfig tree_config;
    tree_config.task = prepared->task;
    DecisionTree all_tree(tree_config);
    all_tree.Fit(all_x, all_y);
    DecisionTree recent_tree(tree_config);
    recent_tree.Fit(recent_x, recent_y);
    auto mse = [&](const DecisionTree& tree) {
      const WindowData& window = prepared->windows[test_w];
      double total = 0.0;
      for (int64_t r = 0; r < window.features.rows(); ++r) {
        double diff = tree.PredictValue(window.features.Row(r)) -
                      window.targets[static_cast<size_t>(r)];
        total += diff * diff;
      }
      return total / static_cast<double>(window.features.rows());
    };
    std::printf(
        "\nTrain-on-all-history loss %.4f vs train-on-recent loss %.4f\n"
        "Paper shape check (§5.2: 0.347 vs 0.299): recent-only wins "
        "after a drift: %s\n",
        mse(all_tree), mse(recent_tree),
        mse(recent_tree) < mse(all_tree) ? "yes" : "no");
  }
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
