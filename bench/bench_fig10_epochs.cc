// Reproduces Figure 10: test error / loss of the NN-family learners as
// local epochs sweep {1, 5, 10, 20}. Shape to reproduce: more epochs
// generally reduce loss (Finding 2), with diminishing or reversing
// returns on some datasets (the paper's POWER at 20 epochs).

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 10", "Loss vs number of local epochs");
  const std::vector<std::string> learners = {"Naive-NN", "EWC", "LwF",
                                             "iCaRL", "SEA-NN"};
  const int epoch_grid[] = {1, 5, 10, 20};
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("\n%-12s %7s", info.short_name.c_str(), "epochs");
    for (const std::string& name : learners) {
      std::printf(" %9s", name.c_str());
    }
    std::printf("\n");
    std::vector<double> naive_by_epoch;
    for (int epochs : epoch_grid) {
      LearnerConfig config;
      config.seed = flags.seed;
      config.epochs = epochs;
      std::printf("%-12s %7d", "", epochs);
      for (const std::string& name : learners) {
        RepeatedResult result =
            RunRepeated(name, config, stream, flags.repeats);
        if (name == "Naive-NN") naive_by_epoch.push_back(result.loss_mean);
        std::printf(" %9.4f", result.loss_mean);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("%-12s Naive-NN trend 1->20 epochs: %s\n", "",
                naive_by_epoch.back() < naive_by_epoch.front()
                    ? "improves (paper Finding 2)"
                    : "flat/worse (POWER-like exception)");
  }
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.05, 1));
  return 0;
}
