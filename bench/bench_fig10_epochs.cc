// Reproduces Figure 10: test error / loss of the NN-family learners as
// local epochs sweep {1, 5, 10, 20}. Shape to reproduce: more epochs
// generally reduce loss (Finding 2), with diminishing or reversing
// returns on some datasets (the paper's POWER at 20 epochs).

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 10", "Loss vs number of local epochs");
  const std::vector<std::string> learners = {"Naive-NN", "EWC", "LwF",
                                             "iCaRL", "SEA-NN"};
  const std::vector<int> epoch_grid = {1, 5, 10, 20};
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    std::shared_ptr<const PreparedStream> stream = bench::MakePreparedShared(
        info.short_name, flags.scale, {}, 0, flags.reuse);
    // Whole grid per learner up front: with --reuse=warmstart each
    // learner's window-0 training runs once at max(grid) epochs and
    // every grid cell forks from its snapshot — same numbers, fewer
    // training steps (reuse.warmstart_window0_epochs counts them).
    // Without it this is exactly the old RunRepeated-per-cell loop.
    std::vector<std::vector<RepeatedResult>> by_learner;
    for (const std::string& name : learners) {
      LearnerConfig config;
      config.seed = flags.seed;
      by_learner.push_back(sweep::RunEpochGridRepeated(
          name, config, epoch_grid, *stream, flags.repeats,
          flags.reuse.warmstart));
    }
    std::printf("\n%-12s %7s", info.short_name.c_str(), "epochs");
    for (const std::string& name : learners) {
      std::printf(" %9s", name.c_str());
    }
    std::printf("\n");
    std::vector<double> naive_by_epoch;
    for (size_t e = 0; e < epoch_grid.size(); ++e) {
      std::printf("%-12s %7d", "", epoch_grid[e]);
      for (size_t l = 0; l < learners.size(); ++l) {
        const RepeatedResult& result = by_learner[l][e];
        if (learners[l] == "Naive-NN") {
          naive_by_epoch.push_back(result.loss_mean);
        }
        std::printf(" %9.4f", result.loss_mean);
      }
      std::printf("\n");
    }
    std::printf("%-12s Naive-NN trend 1->20 epochs: %s\n", "",
                naive_by_epoch.back() < naive_by_epoch.front()
                    ? "improves (paper Finding 2)"
                    : "flat/worse (POWER-like exception)");
  }
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.05, 1));
  return 0;
}
