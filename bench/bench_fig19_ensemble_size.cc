// Reproduces Figure 19 (appendix B.4): GBDT and SEA with ensemble sizes
// {5, 10, 20, 40}. Shape to reproduce: naive GBDT generally improves with
// more trees, while SEA's trend depends on the dataset (larger is worse
// on INSECTS, better on AIR) — another instance of Finding 7.

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 19", "Loss vs ensemble size");
  const int size_grid[] = {5, 10, 20, 40};
  const std::vector<std::string> learners = {"Naive-GBDT", "SEA-DT",
                                             "SEA-GBDT", "SEA-NN"};
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("\n%-12s %6s", info.short_name.c_str(), "size");
    for (const std::string& name : learners) {
      std::printf(" %11s", name.c_str());
    }
    std::printf("\n");
    for (int size : size_grid) {
      LearnerConfig config;
      config.seed = flags.seed;
      config.ensemble_size = size;
      std::printf("%-12s %6d", "", size);
      for (const std::string& name : learners) {
        RepeatedResult result =
            RunRepeated(name, config, stream, flags.repeats);
        std::printf(" %11.4f", result.loss_mean);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape check: Naive-GBDT usually improves with more trees;\n"
      "SEA variants show dataset-dependent trends.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.04, 1));
  return 0;
}
