// Ablation C: emerging new classes (§2.3, open-environment challenge #1
// — the aspect the paper's real datasets exhibit but cannot control).
// Classes are introduced one by one through the stream; each learner's
// error is tracked per class-introduction epoch, plus the error *on the
// newest class* right after it appears — the catastrophic-forgetting /
// plasticity trade-off the incremental-learning literature targets.

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Ablation C",
                     "Emerging new classes: error per introduction epoch");
  StreamSpec spec;
  spec.name = "emerging_classes";
  spec.task = TaskType::kClassification;
  spec.num_classes = 4;
  spec.num_instances = static_cast<int64_t>(60000 * flags.scale);
  if (spec.num_instances < 2400) spec.num_instances = 2400;
  spec.num_numeric_features = 8;
  spec.window_size = spec.num_instances / 24;
  spec.class_emergence_fraction = 0.2;  // classes appear at 0/20/40/60%
  spec.noise_level = 0.15;
  spec.seed = flags.seed;
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  OE_CHECK(prepared.ok());

  const std::vector<std::string> learners = {
      "Naive-NN", "iCaRL", "SEA-DT", "ARF", "SAM-kNN", "OzaBag"};
  LearnerConfig config;
  config.seed = flags.seed;

  std::printf("%-10s", "epoch");
  for (const std::string& name : learners) {
    std::printf(" %10s", name.c_str());
  }
  std::printf("   (epoch e = windows where classes 0..e exist)\n");

  // Epoch boundaries in evaluated-window indices.
  const size_t num_eval = prepared->windows.size() - 1;
  auto epoch_of = [&](size_t eval_window) {
    double frac = static_cast<double>(eval_window + 1) /
                  static_cast<double>(prepared->windows.size());
    int epoch = static_cast<int>(frac / spec.class_emergence_fraction);
    return std::min(epoch, spec.num_classes - 1);
  };

  std::vector<EvalResult> results;
  for (const std::string& name : learners) {
    Result<std::unique_ptr<StreamLearner>> learner =
        MakeLearner(name, config, prepared->task, prepared->num_classes);
    OE_CHECK(learner.ok());
    results.push_back(RunPrequential(learner->get(), *prepared));
  }
  for (int epoch = 0; epoch < spec.num_classes; ++epoch) {
    std::printf("%-10d", epoch);
    for (const EvalResult& result : results) {
      double sum = 0.0;
      int count = 0;
      for (size_t w = 0; w < num_eval; ++w) {
        if (epoch_of(w) == epoch) {
          sum += result.per_window_loss[w];
          ++count;
        }
      }
      std::printf(" %10.4f", count > 0 ? sum / count : 0.0);
    }
    std::printf("\n");
  }
  std::printf("\nfaded (recency-weighted) prequential loss:\n%-10s", "");
  for (const EvalResult& result : results) {
    std::printf(" %10.4f", result.faded_loss);
  }
  std::printf(
      "\n\nReading: error climbs at each introduction epoch (more classes\n"
      "= harder task + an unseen concept), then partially recovers as\n"
      "the learners absorb the new class; exemplar/instance-based\n"
      "learners (iCaRL, SAM-kNN) should absorb new classes fastest —\n"
      "the §2.3 challenge quantified with ground-truth introduction\n"
      "points.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
