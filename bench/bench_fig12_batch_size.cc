// Reproduces Figure 12: loss vs SGD batch size {16, 32, 64, 128} at a
// fixed 10 epochs. Shape to reproduce: smaller batches (more updates)
// help on most datasets (Finding 2), with POWER as the paper's
// counterexample.

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 12", "Loss vs batch size (NN methods)");
  const std::vector<std::string> learners = {"Naive-NN", "iCaRL",
                                             "SEA-NN"};
  const int batch_grid[] = {16, 32, 64, 128};
  int datasets_where_smaller_wins = 0;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    // Same spec + pipeline as fig10/fig11's factor=1 row: under
    // --reuse=prepare a combined bench session prepares it only once.
    std::shared_ptr<const PreparedStream> stream = bench::MakePreparedShared(
        info.short_name, flags.scale, {}, 0, flags.reuse);
    std::printf("\n%-12s %6s", info.short_name.c_str(), "batch");
    for (const std::string& name : learners) {
      std::printf(" %10s", name.c_str());
    }
    std::printf("\n");
    double naive_first = 0.0;
    double naive_last = 0.0;
    for (int batch : batch_grid) {
      LearnerConfig config;
      config.seed = flags.seed;
      config.batch_size = batch;
      std::printf("%-12s %6d", "", batch);
      for (const std::string& name : learners) {
        RepeatedResult result =
            RunRepeated(name, config, *stream, flags.repeats);
        if (name == "Naive-NN") {
          if (batch == batch_grid[0]) naive_first = result.loss_mean;
          naive_last = result.loss_mean;
        }
        std::printf(" %10.4f", result.loss_mean);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    if (naive_first < naive_last) ++datasets_where_smaller_wins;
  }
  std::printf(
      "\nSmaller batch beats larger batch on %d of 5 datasets.\n"
      "Paper shape check: 4 of 5 (all but POWER).\n",
      datasets_where_smaller_wins);
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.05, 1));
  return 0;
}
