// Micro-benchmarks (google-benchmark) of the model substrates: per-window
// training cost of the MLP, CART, GBDT and Hoeffding tree. These back the
// throughput ordering of Table 5 at the model level.

#include <benchmark/benchmark.h>

#include "bench/bench_micro_util.h"
#include "common/random.h"
#include "models/decision_tree.h"
#include "models/gbdt.h"
#include "models/hoeffding_tree.h"
#include "models/mlp.h"

namespace oebench {
namespace {

void MakeData(Rng* rng, int64_t rows, int64_t cols, Matrix* x,
              std::vector<double>* y, bool classification) {
  *x = Matrix(rows, cols);
  for (double& v : x->data()) v = rng->Gaussian();
  y->resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    double score = x->At(r, 0) - x->At(r, 1);
    (*y)[static_cast<size_t>(r)] =
        classification ? (score > 0 ? 1.0 : 0.0) : score;
  }
}

void BM_MlpTrainEpoch(benchmark::State& state) {
  Rng rng(1);
  Matrix x;
  std::vector<double> y;
  MakeData(&rng, state.range(0), 10, &x, &y, false);
  MlpConfig config;
  config.task = TaskType::kRegression;
  Mlp mlp(config, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.TrainEpoch(x, y, &rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpTrainEpoch)->Arg(256)->Arg(1024);

void BM_DecisionTreeFit(benchmark::State& state) {
  Rng rng(2);
  Matrix x;
  std::vector<double> y;
  MakeData(&rng, state.range(0), 10, &x, &y, false);
  DecisionTreeConfig config;
  config.task = TaskType::kRegression;
  for (auto _ : state) {
    DecisionTree tree(config);
    tree.Fit(x, y);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(256)->Arg(1024);

void BM_GbdtFit(benchmark::State& state) {
  Rng rng(3);
  Matrix x;
  std::vector<double> y;
  MakeData(&rng, state.range(0), 10, &x, &y, false);
  GbdtConfig config;
  config.task = TaskType::kRegression;
  config.num_rounds = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Gbdt model(config);
    model.Fit(x, y);
    benchmark::DoNotOptimize(model.tree_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbdtFit)->Args({512, 5})->Args({512, 20});

// Kernel-level split of the MLP cost: forward pass alone, separated
// from the backward/update work that BM_MlpTrainEpoch lumps in. Rides
// on the blocked GemvAccum kernel (see src/linalg/simd.h).
void BM_MlpForward(benchmark::State& state) {
  Rng rng(5);
  Matrix x;
  std::vector<double> y;
  MakeData(&rng, 256, 10, &x, &y, false);
  MlpConfig config;
  config.task = TaskType::kRegression;
  Mlp mlp(config, 3);
  mlp.TrainEpoch(x, y, &rng);  // initialise weights once
  for (auto _ : state) {
    for (int64_t r = 0; r < x.rows(); ++r) {
      benchmark::DoNotOptimize(mlp.Forward(x.Row(r), 10));
    }
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_MlpForward);

void BM_HoeffdingTreeLearn(benchmark::State& state) {
  Rng rng(4);
  HoeffdingTreeConfig config;
  config.num_classes = 2;
  HoeffdingTree tree(config, 5);
  double row[10];
  for (auto _ : state) {
    for (double& v : row) v = rng.Gaussian();
    int label = row[0] > 0 ? 1 : 0;
    tree.Learn(row, 10, label);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HoeffdingTreeLearn);

// Prediction-path split: routes to a leaf and evaluates the per-class
// Gaussian naive-Bayes product over the SoA sufficient statistics,
// with none of BM_HoeffdingTreeLearn's accumulation or split attempts.
void BM_HoeffdingTreePredict(benchmark::State& state) {
  Rng rng(6);
  HoeffdingTreeConfig config;
  config.num_classes = 2;
  HoeffdingTree tree(config, 5);
  double row[10];
  for (int i = 0; i < 2000; ++i) {
    for (double& v : row) v = rng.Gaussian();
    tree.Learn(row, 10, row[0] > 0 ? 1 : 0);
  }
  for (auto _ : state) {
    for (double& v : row) v = rng.Gaussian();
    benchmark::DoNotOptimize(tree.PredictProba(row, 10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HoeffdingTreePredict);

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  return oebench::bench::RunMicroSuite(argc, argv,
                                       "BENCH_micro_models.json");
}
