// Reproduces Table 3: the five selected representative datasets with
// their measured open-environment statistics (missing value ratio, drift
// ratio, anomaly ratio), extracted by the same pipeline used for
// selection.

#include <cstdio>

#include "bench/bench_util.h"
#include "stats/profile.h"
#include "streamgen/representative.h"

namespace oebench {
namespace {

const char* Bucket(double v, double lo, double mid, double hi) {
  if (v < lo) return "Low";
  if (v < mid) return "Medium low";
  if (v < hi) return "Medium high";
  return "High";
}

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Table 3",
                     "Five selected representative datasets");
  std::printf("%-12s %-14s %9s %9s %8s %-14s %-12s %-12s %-12s\n",
              "Dataset", "Corpus name", "Instances", "Features", "Windows",
              "Task", "Missing", "Drift", "Anomaly");
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    StreamSpec spec = RepresentativeSpec(info.short_name, flags.scale);
    Result<GeneratedStream> stream = GenerateStream(spec);
    OE_CHECK(stream.ok());
    Result<DatasetProfile> profile = ProfileDataset(*stream);
    OE_CHECK(profile.ok()) << profile.status().ToString();
    std::printf("%-12s %-14.14s %9lld %9zu %8.0f %-14s %-12s %-12s %-12s\n",
                info.short_name.c_str(), info.corpus_name.c_str(),
                static_cast<long long>(spec.num_instances),
                static_cast<size_t>(profile->num_features),
                profile->num_windows, TaskTypeToString(profile->task),
                Bucket(profile->MissingScore(), 0.01, 0.05, 0.15),
                Bucket(profile->DriftScore(), 0.05, 0.15, 0.30),
                Bucket(profile->AnomalyScore(), 0.002, 0.006, 0.012));
  }
  std::printf(
      "\nPaper's labels: ROOM MedHigh/High/Low drift-anomaly-missing is\n"
      "(Medium high, High, Low); ELECTRICITY (Medium high, Medium high,\n"
      "Low); INSECTS (Medium low, Medium high, Low); AIR (Low, Medium\n"
      "low, High); POWER (High, Medium low, Low).\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
