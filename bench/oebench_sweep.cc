// Sharded corpus-sweep driver. One process = one shard of the canonical
// (dataset x learner x repeat) task manifest; every finished task is
// appended to a durable result log, so a killed shard resumes from
// where it stopped (--resume) and n shard logs merge back into the
// exact outcome an unsharded run computes (--merge). Because every
// task's seed derives from its identity — never from scheduling — the
// merged table is byte-identical to the single-process one.
//
// Typical uses:
//   oebench_sweep                          # unsharded run, prints table
//   oebench_sweep --shard 0/2 --log a.log  # one worker (run per machine)
//   oebench_sweep --shard 1/2 --log b.log
//   oebench_sweep --merge a.log b.log      # reassemble the full table
//   oebench_sweep --spawn 4                # 4 local workers + merge
//   oebench_sweep --selfcheck              # verify n-shard == unsharded
//   oebench_sweep --dry-run --shard 0/4    # show the plan, run nothing
//   oebench_sweep --chaos-schedule=throw-at-task=3   # inject a fault
//   oebench_sweep --shard 0/2 --log a.log --resume --retry-failed
//                                          # re-run only the failed tasks
//   oebench_sweep --shard 0/2 --log a.log --metrics-out=a.metrics.json
//   oebench_sweep --merge a.log b.log --metrics-in=a.metrics.json
//       --metrics-in=b.metrics.json --metrics-out=rollup.json
//
// Invocations with an explicit --log act as workers: they print shard
// statistics to stderr and no table. The no-flag invocation (count 1,
// default log) merges its own log and prints the table.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/io_env.h"
#include "core/chaos.h"
#include "core/parallel_eval.h"
#include "streamgen/corpus.h"
#include "sweep/manifest.h"
#include "sweep/merge.h"
#include "sweep/result_log.h"
#include "sweep/shard_runner.h"

namespace oebench {
namespace {

std::vector<std::string> SweepLearners() {
  return {"Naive-NN", "iCaRL",  "Naive-DT",
          "Naive-GBDT", "SEA-DT", "SEA-GBDT"};
}

std::vector<CorpusEntry> SweepEntries(int limit) {
  std::vector<CorpusEntry> entries = Corpus();
  if (limit > 0 && static_cast<size_t>(limit) < entries.size()) {
    entries.resize(limit);
  }
  return entries;
}

SweepConfig MakeConfig(const bench::BenchFlags& flags) {
  SweepConfig config;
  config.base_config.seed = flags.seed;
  config.base_config.epochs = flags.epochs > 0 ? flags.epochs : 5;
  config.repeats = flags.repeats;
  config.threads = flags.threads;
  config.scale = flags.scale;
  config.reuse = flags.reuse;
  return config;
}

std::string DefaultLogPath(const sweep::Shard& shard) {
  return StrFormat("oebench_sweep_%dof%d.log", shard.index, shard.count);
}

std::string DefaultMetricsPath(const sweep::Shard& shard) {
  return StrFormat("oebench_sweep_%dof%d.metrics.json", shard.index,
                   shard.count);
}

int MergeAndPrint(const std::vector<CorpusEntry>& entries,
                  const std::vector<std::string>& learners,
                  const SweepConfig& config,
                  const std::vector<std::string>& logs,
                  bool allow_quarantined) {
  sweep::TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);
  sweep::LogHeader expected =
      sweep::MakeLogHeader(manifest, config, sweep::Shard{});
  Result<sweep::MergeReport> merged =
      sweep::MergeShardLogsReport(manifest, expected, logs);
  if (!merged.ok()) {
    // Unreadable/mismatched/incomplete logs are a usage problem (wrong
    // paths or wrong sweep flags), not a sweep failure: exit 2 like
    // every other bad invocation.
    std::fprintf(stderr, "merge failed: %s\n",
                 merged.status().ToString().c_str());
    std::fprintf(stderr,
                 "(check the log paths and that --scale/--repeats/--seed/"
                 "--epochs/--datasets match the shard runs)\n");
    return 2;
  }
  const SweepOutcome& outcome = merged->outcome;
  std::printf("%s", sweep::FormatOutcomeTable(outcome).c_str());
  std::printf("\n%lld prequential runs, %lld N/A pairs, %lld datasets\n",
              static_cast<long long>(outcome.tasks_run),
              static_cast<long long>(outcome.pairs_skipped),
              static_cast<long long>(outcome.rows.size()));
  if (outcome.tasks_failed > 0) {
    // Quarantined cells: the table above shows FAILED markers; the
    // report explains which tasks are missing and why. The merge
    // itself succeeded — the data is simply incomplete — so this is a
    // run failure (1), not a usage error (2), unless the caller
    // explicitly accepts partial tables.
    std::fprintf(stderr, "%s",
                 sweep::FormatQuarantineReport(*merged).c_str());
    if (!allow_quarantined) {
      std::fprintf(stderr,
                   "merge incomplete: re-run the failed shard(s) with "
                   "--resume --retry-failed, or pass --allow-quarantined "
                   "to accept the partial table\n");
      return 1;
    }
  }
  return 0;
}

/// --dry-run: show what a run *would* do — the manifest, every shard's
/// span, the planned task count — and execute nothing. Exit 0; an
/// invalid grid never gets here (ParseFlags exits 2 first).
int DryRun(const bench::BenchFlags& flags) {
  std::vector<CorpusEntry> entries = SweepEntries(flags.datasets);
  std::vector<std::string> learners = SweepLearners();
  SweepConfig config = MakeConfig(flags);
  sweep::TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);
  const int shard_count =
      flags.spawn > 0 ? flags.spawn : flags.shard.count;
  std::printf("dry run: %zu dataset(s) x %zu learner(s) x %d repeat(s) "
              "= %zu task(s)\n",
              entries.size(), learners.size(), config.repeats,
              manifest.tasks().size());
  std::printf("manifest fingerprint: %016llx\n",
              static_cast<unsigned long long>(manifest.Fingerprint()));
  std::printf("scale=%.17g seed=%llu epochs=%d threads=%d\n", config.scale,
              static_cast<unsigned long long>(config.base_config.seed),
              config.base_config.epochs, config.threads);
  for (int i = 0; i < shard_count; ++i) {
    sweep::Shard shard{i, shard_count};
    std::vector<TaskIdentity> span = manifest.ShardTasks(shard);
    std::vector<std::string> datasets = manifest.ShardDatasets(shard);
    std::string names;
    for (size_t d = 0; d < datasets.size(); ++d) {
      if (d > 0) names += ", ";
      names += datasets[d];
      if (d == 4 && datasets.size() > 5) {
        names += StrFormat(", ... (%zu total)", datasets.size());
        break;
      }
    }
    std::printf("shard %d/%d: %zu task(s) over %zu dataset(s): %s\n", i,
                shard_count, span.size(), datasets.size(), names.c_str());
  }
  std::printf("planned: %zu task(s); nothing executed (dry run)\n",
              manifest.tasks().size());
  return 0;
}

int RunShard(const bench::BenchFlags& flags) {
  std::vector<CorpusEntry> entries = SweepEntries(flags.datasets);
  std::vector<std::string> learners = SweepLearners();
  SweepConfig config = MakeConfig(flags);

  sweep::ShardRunOptions options;
  options.config = config;
  options.shard = flags.shard;
  options.log_path =
      flags.log_path.empty() ? DefaultLogPath(flags.shard) : flags.log_path;
  options.resume = flags.resume;
  options.retry_failed = flags.retry_failed;
  options.max_task_failures = flags.max_task_failures;
  options.config.watchdog_limit_ms = flags.watchdog_ms;

  // --fault-schedule routes the result log through a fault-injecting
  // environment — the crash-recovery harness's hook into a real worker
  // process. ParseFlags already validated the spec.
  std::unique_ptr<FaultInjectingEnv> fault_env;
  if (!flags.fault_schedule.empty()) {
    Result<FaultSchedule> schedule =
        FaultSchedule::Parse(flags.fault_schedule);
    OE_CHECK(schedule.ok()) << schedule.status().ToString();
    fault_env = std::make_unique<FaultInjectingEnv>(*schedule);
    options.env = fault_env.get();
    std::fprintf(stderr, "[shard %d/%d] fault schedule: %s\n",
                 flags.shard.index, flags.shard.count,
                 schedule->ToString().c_str());
  }

  // --chaos-schedule injects compute faults into task execution — the
  // other half of the chaos harness (I/O faults above, CPU faults
  // here). ParseFlags already validated the spec.
  std::unique_ptr<ChaosInjector> chaos;
  if (!flags.chaos_schedule.empty()) {
    Result<ChaosSchedule> schedule =
        ChaosSchedule::Parse(flags.chaos_schedule);
    OE_CHECK(schedule.ok()) << schedule.status().ToString();
    chaos = std::make_unique<ChaosInjector>(*schedule);
    options.config.chaos = chaos.get();
    std::fprintf(stderr, "[shard %d/%d] chaos schedule: %s\n",
                 flags.shard.index, flags.shard.count,
                 schedule->ToString().c_str());
  }

  Result<sweep::ShardRunStats> stats =
      sweep::RunCorpusShard(entries, learners, options);
  if (chaos != nullptr) {
    std::fprintf(stderr,
                 "[shard %d/%d] chaos: %lld task start(s) seen, %lld "
                 "fault(s) injected\n",
                 flags.shard.index, flags.shard.count,
                 static_cast<long long>(chaos->tasks_started()),
                 static_cast<long long>(chaos->faults_injected()));
  }
  if (fault_env != nullptr) {
    std::fprintf(stderr,
                 "[shard %d/%d] fault env: %lld append(s), %llu byte(s), "
                 "%lld fault(s) injected, crashed=%d\n",
                 flags.shard.index, flags.shard.count,
                 static_cast<long long>(fault_env->appends()),
                 static_cast<unsigned long long>(fault_env->bytes_written()),
                 static_cast<long long>(fault_env->faults_injected()),
                 fault_env->crashed() ? 1 : 0);
  }
  // The metrics snapshot covers the sweep whether it succeeded or not
  // (a failed shard's instrumentation is exactly what you want to
  // read), and goes through the real I/O env — never the fault env,
  // whose byte budgets belong to the result log.
  bench::MaybeWriteMetrics(flags);
  if (!stats.ok()) {
    std::fprintf(stderr, "shard failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[shard %d/%d] %lld task(s): %lld executed, %lld failed, "
               "%lld resumed, %lld failure(s) resumed, %lld n/a, "
               "%lld append retry(ies); %lld stream(s) prepared "
               "(%lld cache hit(s)) -> %s\n",
               flags.shard.index, flags.shard.count,
               static_cast<long long>(stats->shard_tasks),
               static_cast<long long>(stats->tasks_executed),
               static_cast<long long>(stats->tasks_failed),
               static_cast<long long>(stats->tasks_resumed),
               static_cast<long long>(stats->failures_resumed),
               static_cast<long long>(stats->na_logged),
               static_cast<long long>(stats->append_retries),
               static_cast<long long>(stats->streams_prepared),
               static_cast<long long>(stats->prepare_cache_hits),
               options.log_path.c_str());

  // Worker invocations (explicit --log or a real shard) stop here; the
  // plain single-process run also prints the merged table.
  if (flags.shard.count == 1 && flags.log_path.empty()) {
    return MergeAndPrint(entries, learners, config, {options.log_path},
                         flags.allow_quarantined);
  }
  return 0;
}

int SpawnAndMerge(const bench::BenchFlags& flags, const char* argv0) {
  const int n = flags.spawn;
  std::vector<CorpusEntry> entries = SweepEntries(flags.datasets);
  std::vector<std::string> learners = SweepLearners();
  SweepConfig config = MakeConfig(flags);
  int child_threads = std::max(1, flags.threads / n);

  std::string base = StrFormat(
      "\"%s\" --scale=%.17g --repeats=%d --seed=%llu --threads=%d "
      "--epochs=%d",
      argv0, config.scale, config.repeats,
      static_cast<unsigned long long>(config.base_config.seed),
      child_threads, config.base_config.epochs);
  if (flags.datasets > 0) {
    base += StrFormat(" --datasets=%d", flags.datasets);
  }
  if (!flags.chaos_schedule.empty()) {
    base += " --chaos-schedule=" + flags.chaos_schedule;
  }
  if (flags.watchdog_ms > 0) {
    base += StrFormat(" --watchdog-ms=%d", flags.watchdog_ms);
  }
  if (flags.max_task_failures >= 0) {
    base += StrFormat(" --max-task-failures=%lld",
                      static_cast<long long>(flags.max_task_failures));
  }
  if (flags.reuse.any()) {
    base += " --reuse=" + sweep::FormatReuseSpec(flags.reuse);
  }
  if (flags.reuse.cache_bytes != ReuseOptions{}.cache_bytes) {
    base += StrFormat(" --reuse-cache-mb=%lld",
                      static_cast<long long>(flags.reuse.cache_bytes >> 20));
  }

  std::vector<std::string> logs(n);
  std::vector<std::string> metrics_files;
  std::vector<int> exit_codes(n, 0);
  std::vector<std::thread> waiters;
  for (int i = 0; i < n; ++i) {
    logs[i] = DefaultLogPath(sweep::Shard{i, n});
    std::string command = base + StrFormat(" --shard=%d/%d --log=\"%s\"", i,
                                           n, logs[i].c_str());
    if (flags.resume) command += " --resume";
    if (flags.retry_failed) command += " --retry-failed";
    if (!flags.metrics_out.empty()) {
      // Each worker dumps its own snapshot; the parent rolls them up
      // into --metrics-out after the merge.
      metrics_files.push_back(DefaultMetricsPath(sweep::Shard{i, n}));
      command += StrFormat(" --metrics-out=\"%s\"",
                           metrics_files.back().c_str());
      if (flags.deterministic_metrics) command += " --deterministic-metrics";
    }
    waiters.emplace_back([&exit_codes, i, command] {
      exit_codes[i] = std::system(command.c_str());
    });
  }
  for (std::thread& waiter : waiters) waiter.join();
  for (int i = 0; i < n; ++i) {
    if (exit_codes[i] != 0) {
      std::fprintf(stderr,
                   "shard %d/%d exited with status %d; fix and re-run with "
                   "--resume, or merge manually\n",
                   i, n, exit_codes[i]);
      return 1;
    }
  }
  if (!metrics_files.empty()) {
    Result<MetricsSnapshot> rollup =
        bench::RollupMetricsFiles(metrics_files);
    if (!rollup.ok()) {
      std::fprintf(stderr, "metrics rollup failed: %s\n",
                   rollup.status().ToString().c_str());
      return 1;
    }
    Status written = bench::WriteMetricsFile(
        flags.metrics_out, *rollup, flags.deterministic_metrics);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write metrics to %s: %s\n",
                   flags.metrics_out.c_str(), written.ToString().c_str());
      return 1;
    }
  }
  return MergeAndPrint(entries, learners, config, logs,
                       flags.allow_quarantined);
}

/// Enforces the subsystem's core guarantee end to end: for n = 1, 2, 3,
/// running every shard through the durable log and merging yields a
/// dump byte-identical to the in-memory unsharded sweep, and a finished
/// shard resumed again re-executes nothing.
int SelfCheck(const bench::BenchFlags& flags) {
  std::vector<CorpusEntry> entries = SweepEntries(flags.datasets);
  std::vector<std::string> learners = SweepLearners();
  SweepConfig config = MakeConfig(flags);
  sweep::TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);

  std::fprintf(stderr, "[selfcheck] baseline: unsharded sweep of %zu tasks\n",
               manifest.tasks().size());
  MetricsRegistry::Global()->Reset();
  // The baseline always runs reuse-off; the sharded runs below take the
  // invocation's --reuse, so `--selfcheck --reuse=...` doubles as an
  // end-to-end parity check of the reuse machinery against the plain
  // path (DumpOutcome below is a byte-exact oracle).
  SweepConfig baseline_config = config;
  baseline_config.reuse = ReuseOptions{};
  SweepOutcome baseline =
      ParallelSweepEntries(entries, learners, baseline_config);
  const std::string expected_dump = sweep::DumpOutcome(baseline);
  if (flags.reuse.any()) {
    std::fprintf(stderr, "[selfcheck] shard runs use --reuse=%s\n",
                 sweep::FormatReuseSpec(flags.reuse).c_str());
  }

  bool ok = true;
  if (!flags.metrics_out.empty()) {
    // Metrics smoke: the baseline sweep's snapshot must survive a JSON
    // round trip, and its work counters must account for every
    // manifest task — executed tasks plus the repeats of each N/A
    // pair.
    const MetricsSnapshot snapshot = MetricsRegistry::Global()->Snapshot();
    Status written = bench::WriteMetricsFile(flags.metrics_out, snapshot,
                                             flags.deterministic_metrics);
    bool metrics_ok = written.ok();
    if (!metrics_ok) {
      std::fprintf(stderr, "[selfcheck] cannot write metrics: %s\n",
                   written.ToString().c_str());
    } else {
      Result<std::string> text = IoEnv::Default()->ReadFile(flags.metrics_out);
      MetricsSnapshot parsed;
      Status status = text.ok() ? ParseMetricsJson(*text, &parsed)
                                : text.status();
      if (!status.ok()) {
        metrics_ok = false;
        std::fprintf(stderr, "[selfcheck] metrics JSON unparseable: %s\n",
                     status.ToString().c_str());
      } else {
        const int64_t executed = parsed.counters["sweep.tasks_executed"];
        const int64_t skipped = parsed.counters["sweep.pairs_skipped"] *
                                static_cast<int64_t>(config.repeats);
        const int64_t manifest_tasks =
            static_cast<int64_t>(manifest.tasks().size());
        metrics_ok = executed + skipped == manifest_tasks;
        std::fprintf(stderr,
                     "[selfcheck] metrics: %lld executed + %lld n/a vs "
                     "%lld manifest task(s): %s\n",
                     static_cast<long long>(executed),
                     static_cast<long long>(skipped),
                     static_cast<long long>(manifest_tasks),
                     metrics_ok ? "accounted" : "MISMATCH");
      }
    }
    ok = ok && metrics_ok;
  }
  std::vector<std::string> all_logs;
  for (int n = 1; n <= 3; ++n) {
    std::vector<std::string> logs;
    for (int i = 0; i < n; ++i) {
      sweep::ShardRunOptions options;
      options.config = config;
      options.shard = sweep::Shard{i, n};
      options.log_path = StrFormat("oebench_selfcheck_%dof%d.log", i, n);
      std::remove(options.log_path.c_str());
      Result<sweep::ShardRunStats> stats =
          sweep::RunCorpusShard(entries, learners, options);
      if (!stats.ok()) {
        std::fprintf(stderr, "[selfcheck] shard %d/%d failed: %s\n", i, n,
                     stats.status().ToString().c_str());
        return 1;
      }
      logs.push_back(options.log_path);
      all_logs.push_back(options.log_path);
    }
    Result<SweepOutcome> merged = sweep::MergeShardLogs(
        manifest, sweep::MakeLogHeader(manifest, config, sweep::Shard{}),
        logs);
    if (!merged.ok()) {
      std::fprintf(stderr, "[selfcheck] merge of %d shard(s) failed: %s\n",
                   n, merged.status().ToString().c_str());
      ok = false;
      continue;
    }
    bool identical = sweep::DumpOutcome(*merged) == expected_dump;
    std::fprintf(stderr, "[selfcheck] %d shard(s) + merge: %s\n", n,
                 identical ? "bit-identical" : "MISMATCH");
    ok = ok && identical;

    if (n == 2) {
      // Resume a finished shard: everything must come from the log.
      sweep::ShardRunOptions options;
      options.config = config;
      options.shard = sweep::Shard{0, 2};
      options.log_path = logs[0];
      options.resume = true;
      Result<sweep::ShardRunStats> again =
          sweep::RunCorpusShard(entries, learners, options);
      bool clean = again.ok() && again->tasks_executed == 0 &&
                   again->na_logged == 0 &&
                   again->tasks_resumed == again->shard_tasks;
      std::fprintf(stderr, "[selfcheck] resume of finished shard: %s\n",
                   clean ? "no re-execution" : "RE-EXECUTED TASKS");
      ok = ok && clean;
    }
  }
  if (ok) {
    for (const std::string& log : all_logs) std::remove(log.c_str());
  }
  std::printf("selfcheck %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::bench::BenchFlags flags =
      oebench::bench::ParseFlags(argc, argv, /*default_scale=*/0.03,
                                 /*default_repeats=*/1);
  if (flags.dry_run) return oebench::DryRun(flags);
  if (flags.merge) {
    // --metrics-in files roll up into one --metrics-out snapshot:
    // counters sum, gauges keep the max, histograms add bucket-wise.
    // An unreadable or unparseable shard metrics file is a usage
    // error, like an unreadable shard log.
    if (int code = oebench::bench::MergeModeMetrics(flags); code != 0) {
      return code;
    }
    return oebench::MergeAndPrint(oebench::SweepEntries(flags.datasets),
                                  oebench::SweepLearners(),
                                  oebench::MakeConfig(flags),
                                  flags.merge_logs,
                                  flags.allow_quarantined);
  }
  if (flags.selfcheck) return oebench::SelfCheck(flags);
  if (flags.spawn > 0) return oebench::SpawnAndMerge(flags, argv[0]);
  return oebench::RunShard(flags);
}
