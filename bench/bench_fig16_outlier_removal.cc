// Reproduces Figure 16: loss with vs without removing detected outliers
// (ECOD / Isolation Forest) before testing and training, on ROOM and AIR.
// Shape to reproduce: removal helps on AIR but not reliably on ROOM —
// "removing the detected outliers does not necessarily improve
// effectiveness" (Finding 6).

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 16",
                     "Loss with and without per-window outlier removal");
  std::printf("%-6s %-9s %12s %12s %12s\n", "data", "learner", "none",
              "ecod", "iforest");
  for (const char* dataset : {"ROOM", "AIR"}) {
    for (const char* learner : {"Naive-NN", "Naive-DT"}) {
      std::printf("%-6s %-9s", dataset, learner);
      for (const char* removal : {"", "ecod", "iforest"}) {
        PipelineOptions options;
        options.outlier_removal = removal;
        PreparedStream stream =
            bench::MakePrepared(dataset, flags.scale, options);
        LearnerConfig config;
        config.seed = flags.seed;
        RepeatedResult result =
            RunRepeated(learner, config, stream, flags.repeats);
        std::printf(" %12.4f", result.loss_mean);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape check: on AIR removal tends to help; on ROOM the\n"
      "effect is mixed or harmful — no free lunch from outlier removal.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 2));
  return 0;
}
