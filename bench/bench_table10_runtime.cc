// Reproduces Table 10 (appendix): running time of each algorithm as the
// number of NN epochs grows over {1, 5, 10, 20}, plus the tree baselines
// that need no epochs. Shape to reproduce: NN time grows linearly with
// epochs; EWC costs ~2x Naive-NN; trees are fastest.

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Table 10", "Running time in seconds vs #epochs");
  const std::vector<std::string> nn_learners = {"Naive-NN", "EWC", "LwF",
                                                "iCaRL", "SEA-NN"};
  const std::vector<std::string> tree_learners = {"Naive-DT", "Naive-GBDT",
                                                  "SEA-DT", "SEA-GBDT"};
  const int epoch_grid[] = {1, 5, 10, 20};

  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("\n%-12s %6s", info.short_name.c_str(), "epochs");
    for (const std::string& name : nn_learners) {
      std::printf(" %9s", name.c_str());
    }
    std::printf("\n");
    for (int epochs : epoch_grid) {
      LearnerConfig config;
      config.seed = flags.seed;
      config.epochs = epochs;
      std::printf("%-12s %6d", "", epochs);
      for (const std::string& name : nn_learners) {
        Result<std::unique_ptr<StreamLearner>> learner = MakeLearner(
            name, config, stream.task, stream.num_classes);
        OE_CHECK(learner.ok());
        // Runtime comes from the metrics layer: the evaluator's
        // train/test phase histograms, read back per cell.
        bench::BeginCell();
        RunPrequential(learner->get(), stream);
        std::printf(" %9.2f", bench::CollectCell().RuntimeSeconds());
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("%-12s %6s", "", "trees");
    for (const std::string& name : tree_learners) {
      LearnerConfig config;
      config.seed = flags.seed;
      Result<std::unique_ptr<StreamLearner>> learner =
          MakeLearner(name, config, stream.task, stream.num_classes);
      OE_CHECK(learner.ok());
      bench::BeginCell();
      RunPrequential(learner->get(), stream);
      std::printf(" %s=%.2fs", name.c_str(),
                  bench::CollectCell().RuntimeSeconds());
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: each NN column grows ~linearly in epochs; EWC\n"
      "~2x Naive-NN at the same epochs; trees below the 1-epoch NN time.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.06, 1));
  return 0;
}
