// oebench_serve — the online serving daemon driver: hosts N live
// streams (thousands per process) on the serve engine, replays the
// streamgen corpus through the seeded load generator, and reports
// p50/p95/p99 per-record/per-window latency, throughput, drops and
// queue depth as a JSON metrics snapshot on shutdown.
//
// --selfcheck proves the acceptance property: for a deterministic
// schedule, every session's prequential outputs are bit-identical to
// batch RunPrequential — across --workers=1 vs 4, fault-free and with
// chaos-injected slow activations.
//
// Exit codes: 0 success, 1 runtime/selfcheck failure, 2 bad flags.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/session.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"

namespace oebench {
namespace {

struct ServeFlags {
  int streams = 64;
  int workers = 4;
  double rate = 20000.0;
  int64_t burst = 1;
  /// Serve only the first N windows of every stream (0 = all).
  int duration_windows = 3;
  int ring_capacity = 1024;
  int producers = 2;
  int64_t quantum = 64;
  int64_t max_inflight = 0;
  serve::AdmissionPolicy admission = serve::AdmissionPolicy::kBlock;
  bool paced = false;
  double scale = 0.05;
  uint64_t seed = 1;
  int epochs = 0;  // 0 = learner default
  /// "mix" round-robins Naive-DT / Naive-GBDT; otherwise a fixed name.
  std::string learner = "mix";
  int64_t slow_every = 0;
  int64_t slow_ms = 0;
  std::string metrics_out;
  bool deterministic_metrics = false;
  bool selfcheck = false;
};

[[noreturn]] void UsageAndExit(const char* argv0, const std::string& error) {
  std::fprintf(stderr, "%s: %s\n\n", argv0, error.c_str());
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --streams=N          concurrent live streams (>= 1, default 64)\n"
      "  --workers=N          pipeline worker threads (>= 1, default 4)\n"
      "  --rate=F             mean records/sec per stream on the virtual\n"
      "                       schedule (> 0, default 20000)\n"
      "  --burst=N            records per arrival event (>= 1)\n"
      "  --duration-windows=N serve only the first N windows per stream\n"
      "                       (>= 0; 0 = whole stream, default 3)\n"
      "  --ring-capacity=N    per-stream ring slots (>= 2, rounded up to\n"
      "                       a power of two, default 1024)\n"
      "  --producers=N        load-generator threads (>= 1, default 2)\n"
      "  --quantum=N          records a session drains per activation\n"
      "                       (>= 1, default 64)\n"
      "  --max-inflight=N     global cap on queued records (>= 0;\n"
      "                       0 = unlimited)\n"
      "  --admission=POLICY   block (retry until accepted, default) or\n"
      "                       drop (count kOverloaded and move on)\n"
      "  --paced              pace offers to the virtual-time schedule\n"
      "                       (default: replay at full speed)\n"
      "  --scale=F            fraction of published instance counts\n"
      "  --seed=N             schedule + learner base seed\n"
      "  --epochs=N           training epochs (0 = learner default)\n"
      "  --learner=NAME       mix (Naive-DT/Naive-GBDT round-robin,\n"
      "                       default) or one fixed learner name\n"
      "  --chaos-slow=N:MS    sleep MS milliseconds on every N-th\n"
      "                       activation (scheduling chaos)\n"
      "  --metrics-out=PATH   dump the JSON metrics snapshot here\n"
      "  --deterministic-metrics\n"
      "                       emit only deterministic counter sections\n"
      "  --selfcheck          verify serve == batch bit-identity across\n"
      "                       workers 1/4, fault-free and chaos-slow\n"
      "Flags take --flag=value or --flag value.\n",
      argv0);
  std::exit(2);
}

ServeFlags ParseServeFlags(int argc, char** argv) {
  ServeFlags flags;
  auto fail = [&](const std::string& msg) { UsageAndExit(argv[0], msg); };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) fail("unexpected argument '" + arg + "'");
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto need_value = [&]() -> std::string {
      if (has_value) return value;
      if (i + 1 >= argc) fail("--" + name + " needs a value");
      return argv[++i];
    };
    auto int_value = [&](int64_t min_value) -> int64_t {
      std::string text = need_value();
      int64_t parsed = 0;
      if (!ParseInt64(text, &parsed) || parsed < min_value ||
          parsed > 1000000000) {
        fail("--" + name + " needs an integer >= " +
             StrFormat("%lld", static_cast<long long>(min_value)) +
             ", got '" + text + "'");
      }
      return parsed;
    };
    auto no_value = [&] {
      if (has_value) fail("--" + name + " takes no value");
    };
    if (name == "streams") {
      flags.streams = static_cast<int>(int_value(1));
    } else if (name == "workers") {
      flags.workers = static_cast<int>(int_value(1));
    } else if (name == "rate") {
      std::string text = need_value();
      double parsed = 0.0;
      if (!ParseDouble(text, &parsed) || !(parsed > 0.0)) {
        fail("--rate needs a number > 0, got '" + text + "'");
      }
      flags.rate = parsed;
    } else if (name == "burst") {
      flags.burst = int_value(1);
    } else if (name == "duration-windows") {
      flags.duration_windows = static_cast<int>(int_value(0));
    } else if (name == "ring-capacity") {
      flags.ring_capacity = static_cast<int>(int_value(2));
    } else if (name == "producers") {
      flags.producers = static_cast<int>(int_value(1));
    } else if (name == "quantum") {
      flags.quantum = int_value(1);
    } else if (name == "max-inflight") {
      flags.max_inflight = int_value(0);
    } else if (name == "admission") {
      std::string text = need_value();
      if (text == "block") {
        flags.admission = serve::AdmissionPolicy::kBlock;
      } else if (text == "drop") {
        flags.admission = serve::AdmissionPolicy::kDrop;
      } else {
        fail("--admission must be block or drop, got '" + text + "'");
      }
    } else if (name == "paced") {
      no_value();
      flags.paced = true;
    } else if (name == "scale") {
      std::string text = need_value();
      double parsed = 0.0;
      if (!ParseDouble(text, &parsed) || !(parsed >= 0.0)) {
        fail("--scale needs a number >= 0, got '" + text + "'");
      }
      flags.scale = parsed;
    } else if (name == "seed") {
      std::string text = need_value();
      if (!ParseUint64(text, &flags.seed)) {
        fail("--seed needs an unsigned integer, got '" + text + "'");
      }
    } else if (name == "epochs") {
      flags.epochs = static_cast<int>(int_value(0));
    } else if (name == "learner") {
      std::string text = need_value();
      if (text != "mix") {
        // Validate against the known learner names up front (strict CLI
        // contract); task compatibility is checked at session init.
        std::vector<std::string> known =
            AllLearnerNames(TaskType::kClassification);
        std::vector<std::string> extended =
            ExtendedLearnerNames(TaskType::kClassification);
        known.insert(known.end(), extended.begin(), extended.end());
        if (std::find(known.begin(), known.end(), text) == known.end()) {
          fail("--learner: unknown learner '" + text + "'");
        }
      }
      flags.learner = text;
    } else if (name == "chaos-slow") {
      std::string text = need_value();
      size_t colon = text.find(':');
      int64_t every = 0;
      int64_t ms = 0;
      if (colon == std::string::npos ||
          !ParseInt64(text.substr(0, colon), &every) ||
          !ParseInt64(text.substr(colon + 1), &ms) || every < 1 || ms < 1) {
        fail("--chaos-slow needs N:MS with N >= 1, MS >= 1, got '" + text +
             "'");
      }
      flags.slow_every = every;
      flags.slow_ms = ms;
    } else if (name == "metrics-out") {
      flags.metrics_out = need_value();
    } else if (name == "deterministic-metrics") {
      no_value();
      flags.deterministic_metrics = true;
    } else if (name == "selfcheck") {
      no_value();
      flags.selfcheck = true;
    } else {
      fail("unknown flag --" + name);
    }
  }
  if (flags.deterministic_metrics && flags.metrics_out.empty()) {
    fail("--deterministic-metrics only applies to --metrics-out");
  }
  return flags;
}

/// The learner serving stream index `i` under the round-robin mix.
std::string LearnerForStream(const ServeFlags& flags, size_t i) {
  if (flags.learner != "mix") return flags.learner;
  static const char* kMix[] = {"Naive-DT", "Naive-GBDT"};
  return kMix[i % 2];
}

LearnerConfig ConfigForStream(const ServeFlags& flags, size_t i) {
  LearnerConfig config;
  config.seed = flags.seed + static_cast<uint64_t>(i);
  if (flags.epochs > 0) config.epochs = flags.epochs;
  return config;
}

/// Generates the raw streams for the run — corpus entries cycled, each
/// stream salted with its index so no two streams are identical.
Result<std::vector<std::shared_ptr<const GeneratedStream>>> GenerateStreams(
    const ServeFlags& flags) {
  const std::vector<CorpusEntry>& corpus = Corpus();
  std::vector<std::shared_ptr<const GeneratedStream>> streams;
  streams.reserve(static_cast<size_t>(flags.streams));
  for (int i = 0; i < flags.streams; ++i) {
    const CorpusEntry& entry =
        corpus[static_cast<size_t>(i) % corpus.size()];
    StreamSpec spec = SpecFromEntry(entry, flags.scale,
                                    /*seed_salt=*/static_cast<uint64_t>(i));
    OE_ASSIGN_OR_RETURN(GeneratedStream stream, GenerateStream(spec));
    streams.push_back(
        std::make_shared<const GeneratedStream>(std::move(stream)));
  }
  return streams;
}

serve::SessionOptions SessionOptionsForStream(const ServeFlags& flags,
                                              size_t i) {
  serve::SessionOptions options;
  options.ring_capacity = static_cast<size_t>(flags.ring_capacity);
  options.max_windows = static_cast<size_t>(flags.duration_windows);
  options.learner = LearnerForStream(flags, i);
  options.learner_config = ConfigForStream(flags, i);
  return options;
}

/// Builds and Init()s every session, in parallel (init cost is the
/// stream-global pipeline prefix: one-hot, windows, oracle impute).
Result<std::vector<std::unique_ptr<serve::StreamSession>>> InitSessions(
    const ServeFlags& flags,
    const std::vector<std::shared_ptr<const GeneratedStream>>& streams) {
  std::vector<std::unique_ptr<serve::StreamSession>> sessions(
      streams.size());
  std::vector<Status> statuses(streams.size(), Status::OK());
  {
    ThreadPool pool(std::min(ThreadPool::HardwareThreads(),
                             static_cast<int>(streams.size())));
    std::vector<std::future<void>> futures;
    futures.reserve(streams.size());
    for (size_t i = 0; i < streams.size(); ++i) {
      futures.push_back(pool.Submit([&, i] {
        auto session = std::make_unique<serve::StreamSession>(
            static_cast<int64_t>(i), streams[i],
            SessionOptionsForStream(flags, i));
        statuses[i] = session->Init();
        sessions[i] = std::move(session);
      }));
    }
    for (std::future<void>& f : futures) f.get();
  }
  for (size_t i = 0; i < streams.size(); ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(),
                    "session " + StrFormat("%zu", i) + " (" +
                        streams[i]->spec.name +
                        "): " + statuses[i].message());
    }
  }
  return sessions;
}

serve::ServerOptions EngineOptions(const ServeFlags& flags) {
  serve::ServerOptions options;
  options.workers = flags.workers;
  options.quantum = flags.quantum;
  options.max_inflight = flags.max_inflight;
  options.slow_every = flags.slow_every;
  options.slow_ms = flags.slow_ms;
  return options;
}

serve::LoadGenOptions LoadOptions(const ServeFlags& flags) {
  serve::LoadGenOptions options;
  options.rate = flags.rate;
  options.burst = flags.burst;
  options.seed = flags.seed;
  options.producers = flags.producers;
  options.paced = flags.paced;
  options.admission = flags.admission;
  return options;
}

/// Bit-exact dump of one prequential outcome — the serve-vs-batch
/// comparison key. Wall-clock fields are deliberately excluded.
std::string DumpResult(const EvalResult& result) {
  std::string out = result.learner + "|" + result.dataset + "|" +
                    StrFormat("%lld", static_cast<long long>(
                                          result.items_processed)) +
                    "|" +
                    StrFormat("%lld", static_cast<long long>(
                                          result.peak_memory_bytes)) +
                    "|" + sweep::EncodeDouble(result.mean_loss) + "|" +
                    sweep::EncodeDouble(result.faded_loss) + "|";
  for (size_t i = 0; i < result.per_window_loss.size(); ++i) {
    if (i > 0) out += ",";
    out += sweep::EncodeDouble(result.per_window_loss[i]);
  }
  return out;
}

/// One full serve pass over pre-generated streams; returns per-session
/// result dumps in stream order.
Result<std::vector<std::string>> RunServe(
    const ServeFlags& flags,
    const std::vector<std::shared_ptr<const GeneratedStream>>& streams,
    serve::LoadStats* stats_out) {
  OE_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<serve::StreamSession>> sessions,
      InitSessions(flags, streams));
  serve::ServeEngine engine(EngineOptions(flags));
  for (std::unique_ptr<serve::StreamSession>& session : sessions) {
    engine.AddSession(std::move(session));
  }
  serve::LoadStats stats = RunLoadGenerator(&engine, LoadOptions(flags));
  engine.WaitAllFinished();
  OE_RETURN_NOT_OK(engine.first_error());
  if (stats_out != nullptr) *stats_out = stats;
  std::vector<std::string> dumps;
  dumps.reserve(engine.num_sessions());
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    dumps.push_back(DumpResult(engine.session(i)->result()));
  }
  return dumps;
}

/// Batch reference: PrepareStream + RunPrequential, truncated to the
/// same --duration-windows prefix the sessions serve.
Result<std::vector<std::string>> RunBatchReference(
    const ServeFlags& flags,
    const std::vector<std::shared_ptr<const GeneratedStream>>& streams) {
  std::vector<std::string> dumps;
  dumps.reserve(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    serve::SessionOptions options = SessionOptionsForStream(flags, i);
    OE_ASSIGN_OR_RETURN(PreparedStream prepared,
                        PrepareStream(*streams[i], options.pipeline));
    if (options.max_windows > 0 &&
        prepared.windows.size() > options.max_windows) {
      prepared.windows.resize(options.max_windows);
      prepared.ranges.resize(options.max_windows);
    }
    OE_ASSIGN_OR_RETURN(
        std::unique_ptr<StreamLearner> learner,
        MakeLearner(options.learner, options.learner_config, prepared.task,
                    prepared.num_classes));
    EvalResult result = RunPrequential(learner.get(), prepared);
    dumps.push_back(DumpResult(result));
  }
  return dumps;
}

int CompareDumps(const std::string& label,
                 const std::vector<std::string>& expected,
                 const std::vector<std::string>& actual) {
  if (expected.size() != actual.size()) {
    std::fprintf(stderr, "SELFCHECK FAIL [%s]: %zu vs %zu sessions\n",
                 label.c_str(), expected.size(), actual.size());
    return 1;
  }
  int mismatches = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] != actual[i]) {
      ++mismatches;
      std::fprintf(stderr,
                   "SELFCHECK FAIL [%s] session %zu:\n  batch: %s\n  "
                   "serve: %s\n",
                   label.c_str(), i, expected[i].c_str(),
                   actual[i].c_str());
    }
  }
  if (mismatches == 0) {
    std::printf("selfcheck [%s]: %zu sessions bit-identical to batch\n",
                label.c_str(), expected.size());
  }
  return mismatches == 0 ? 0 : 1;
}

/// --selfcheck: the ISSUE acceptance property, as a CLI mode so the
/// smoke ctest (and any user) can verify a build end-to-end.
int RunSelfCheck(ServeFlags flags) {
  // Bit-identity needs every record delivered: force the block policy.
  flags.admission = serve::AdmissionPolicy::kBlock;
  Result<std::vector<std::shared_ptr<const GeneratedStream>>> streams =
      GenerateStreams(flags);
  if (!streams.ok()) {
    std::fprintf(stderr, "stream generation failed: %s\n",
                 streams.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<std::string>> batch =
      RunBatchReference(flags, *streams);
  if (!batch.ok()) {
    std::fprintf(stderr, "batch reference failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  struct Variant {
    const char* label;
    int workers;
    int64_t slow_every;
    int64_t slow_ms;
  };
  const Variant variants[] = {
      {"workers=1", 1, 0, 0},
      {"workers=4", 4, 0, 0},
      {"workers=4+chaos-slow", 4, 3, 2},
  };
  int rc = 0;
  for (const Variant& variant : variants) {
    ServeFlags run = flags;
    run.workers = variant.workers;
    run.slow_every = variant.slow_every;
    run.slow_ms = variant.slow_ms;
    Result<std::vector<std::string>> serve =
        RunServe(run, *streams, nullptr);
    if (!serve.ok()) {
      std::fprintf(stderr, "serve run [%s] failed: %s\n", variant.label,
                   serve.status().ToString().c_str());
      return 1;
    }
    rc |= CompareDumps(variant.label, *batch, *serve);
  }
  if (rc == 0) std::printf("SELFCHECK PASSED\n");
  return rc;
}

/// Publishes the shutdown report: latency quantiles as gauges, a
/// human-readable summary on stdout, optional JSON snapshot.
int Report(const ServeFlags& flags, const serve::LoadStats& stats,
           double wall_seconds) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  const MetricsSnapshot snap = metrics->Snapshot();
  auto counter = [&](const char* name) -> int64_t {
    auto it = snap.counters.find(name);
    if (it != snap.counters.end()) return it->second;
    auto vit = snap.volatile_counters.find(name);
    return vit != snap.volatile_counters.end() ? vit->second : 0;
  };
  auto histogram = [&](const char* name) -> HistogramSnapshot {
    auto it = snap.histograms.find(name);
    return it != snap.histograms.end() ? it->second : HistogramSnapshot();
  };
  const HistogramSnapshot record_latency =
      histogram("serve.record_latency_seconds");
  const HistogramSnapshot window_latency =
      histogram("serve.window_latency_seconds");
  const double record_p50 = serve::QuantileFromHistogram(record_latency, 0.50);
  const double record_p95 = serve::QuantileFromHistogram(record_latency, 0.95);
  const double record_p99 = serve::QuantileFromHistogram(record_latency, 0.99);
  const double window_p50 = serve::QuantileFromHistogram(window_latency, 0.50);
  const double window_p95 = serve::QuantileFromHistogram(window_latency, 0.95);
  const double window_p99 = serve::QuantileFromHistogram(window_latency, 0.99);
  metrics->GetGauge("serve.record_latency_p50")->Set(record_p50);
  metrics->GetGauge("serve.record_latency_p95")->Set(record_p95);
  metrics->GetGauge("serve.record_latency_p99")->Set(record_p99);
  metrics->GetGauge("serve.window_latency_p50")->Set(window_p50);
  metrics->GetGauge("serve.window_latency_p95")->Set(window_p95);
  metrics->GetGauge("serve.window_latency_p99")->Set(window_p99);
  const int64_t records = counter("serve.records");
  const int64_t items = counter("serve.items");
  const double record_rate =
      wall_seconds > 0.0 ? static_cast<double>(records) / wall_seconds : 0.0;
  metrics->GetGauge("serve.records_per_second")->Set(record_rate);

  bench::PrintHeader(
      "oebench_serve",
      StrFormat("%d streams x %d workers, %s admission",
                flags.streams, flags.workers,
                flags.admission == serve::AdmissionPolicy::kBlock
                    ? "block"
                    : "drop"));
  std::printf("offered    %lld records (accepted %lld, dropped %lld)\n",
              static_cast<long long>(stats.offered),
              static_cast<long long>(stats.accepted),
              static_cast<long long>(stats.dropped));
  std::printf("consumed   %lld records -> %lld trained items, "
              "%lld windows (%lld lost)\n",
              static_cast<long long>(records),
              static_cast<long long>(items),
              static_cast<long long>(counter("serve.windows")),
              static_cast<long long>(counter("serve.windows_lost")));
  std::printf("throughput %.0f records/s over %.3f s wall\n", record_rate,
              wall_seconds);
  std::printf("latency    record p50 %.1f us, p95 %.1f us, p99 %.1f us\n",
              record_p50 * 1e6, record_p95 * 1e6, record_p99 * 1e6);
  std::printf("           window p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
              window_p50 * 1e3, window_p95 * 1e3, window_p99 * 1e3);
  std::printf("overload   drops_overloaded %lld, drops_inflight %lld, "
              "queue_depth_peak %.0f\n",
              static_cast<long long>(counter("serve.drops_overloaded")),
              static_cast<long long>(counter("serve.drops_inflight")),
              [&] {
                auto it = snap.gauges.find("serve.queue_depth_peak");
                return it != snap.gauges.end() ? it->second : 0.0;
              }());

  if (!flags.metrics_out.empty()) {
    Status written = bench::WriteMetricsFile(
        flags.metrics_out, metrics->Snapshot(), flags.deterministic_metrics);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write metrics to %s: %s\n",
                   flags.metrics_out.c_str(),
                   written.ToString().c_str());
      return 1;
    }
  }
  // Shutdown-report invariant: a run that consumed records must have
  // measured nonzero latency quantiles for them.
  if (records > 0 && !(record_p50 > 0.0 && record_p99 > 0.0)) {
    std::fprintf(stderr,
                 "report invariant violated: %lld records consumed but "
                 "p50=%g p99=%g\n",
                 static_cast<long long>(records), record_p50, record_p99);
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  ServeFlags flags = ParseServeFlags(argc, argv);
  if (flags.selfcheck) return RunSelfCheck(flags);

  Result<std::vector<std::shared_ptr<const GeneratedStream>>> streams =
      GenerateStreams(flags);
  if (!streams.ok()) {
    std::fprintf(stderr, "stream generation failed: %s\n",
                 streams.status().ToString().c_str());
    return 1;
  }
  serve::LoadStats stats;
  const auto wall_start = std::chrono::steady_clock::now();
  Result<std::vector<std::string>> dumps =
      RunServe(flags, *streams, &stats);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (!dumps.ok()) {
    std::fprintf(stderr, "serve run failed: %s\n",
                 dumps.status().ToString().c_str());
    return 1;
  }
  return Report(flags, stats, wall_seconds);
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) { return oebench::Main(argc, argv); }
