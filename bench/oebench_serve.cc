// oebench_serve — the online serving daemon driver: hosts N live
// streams (thousands per process) on the serve engine, replays the
// streamgen corpus through the seeded load generator, and reports
// p50/p95/p99 per-record/per-window latency, throughput, drops and
// queue depth as a JSON metrics snapshot on shutdown.
//
// --selfcheck proves the acceptance property: for a deterministic
// schedule, every session's prequential outputs are bit-identical to
// batch RunPrequential — across --workers=1 vs 4, fault-free and with
// chaos-injected slow activations — and, under injected session faults
// (--chaos-schedule kinds), exactly the injected streams are
// quarantined while every other session stays byte-identical to batch.
//
// Exit codes: 0 clean, 1 runtime/selfcheck failure or quarantined
// sessions (unless --allow-quarantined), 2 bad flags.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#endif

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/chaos.h"
#include "core/evaluator.h"
#include "serve/admission.h"
#include "serve/failure.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/state_pool.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"

namespace oebench {
namespace {

struct ServeFlags {
  int streams = 64;
  int workers = 4;
  double rate = 20000.0;
  int64_t burst = 1;
  /// Serve only the first N windows of every stream (0 = all).
  int duration_windows = 3;
  int ring_capacity = 1024;
  int producers = 2;
  int64_t quantum = 64;
  int64_t max_inflight = 0;
  serve::AdmissionPolicy admission = serve::AdmissionPolicy::kBlock;
  /// Record-batch admission: producers coalesce up to N consecutive rows
  /// of a stream into one ring operation (1 = per-record offers).
  int64_t batch_records = 1;
  /// Share immutable StreamContexts across sessions replaying the same
  /// spec (the thousands-of-streams memory lever).
  bool state_pool = false;
  /// > 0: only K distinct stream specs; stream i replays the spec of
  /// stream i % K (what makes the state pool hit). 0 = every stream
  /// unique (the pre-pool behaviour).
  int distinct_streams = 0;
  bool paced = false;
  /// Paced-replay timer-wheel tick in milliseconds.
  double pace_tick_ms = 1.0;
  double scale = 0.05;
  uint64_t seed = 1;
  int epochs = 0;  // 0 = learner default
  /// "mix" round-robins Naive-DT / Naive-GBDT; otherwise a fixed name.
  std::string learner = "mix";
  int64_t slow_every = 0;
  int64_t slow_ms = 0;
  /// Serve-side fault injection (throw-at-activation / nan-at-record /
  /// transient); sweep-only clauses are a usage error here.
  ChaosSchedule chaos;
  bool has_chaos = false;
  /// Activation attempts per transient chaos fault (1 = no retry).
  int session_attempts = 2;
  /// Failure breaker: abandon the run once more than N sessions are
  /// quarantined (-1 = unlimited).
  int64_t max_session_failures = -1;
  /// Exit 0 even when sessions were quarantined (report still printed).
  bool allow_quarantined = false;
  /// Evict (quarantine kDeadline) sessions with no progress for this
  /// long during shutdown (0 = off).
  int session_deadline_ms = 0;
  /// Report activations running longer than this (0 = off).
  int watchdog_ms = 0;
  /// > 0: adaptive admission on, shedding while record p99 exceeds this
  /// (milliseconds). Queue-depth proxy under --deterministic-metrics.
  double adaptive_p99_ms = 0.0;
  /// Sinusoidal offered-rate drift: amplitude and virtual-second period.
  double rate_drift_amplitude = 0.0;
  double rate_drift_period = 0.0;
  std::string metrics_out;
  bool deterministic_metrics = false;
  bool selfcheck = false;
};

[[noreturn]] void UsageAndExit(const char* argv0, const std::string& error) {
  std::fprintf(stderr, "%s: %s\n\n", argv0, error.c_str());
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --streams=N          concurrent live streams (>= 1, default 64)\n"
      "  --workers=N          pipeline worker threads (>= 1, default 4)\n"
      "  --rate=F             mean records/sec per stream on the virtual\n"
      "                       schedule (> 0, default 20000)\n"
      "  --burst=N            records per arrival event (>= 1)\n"
      "  --duration-windows=N serve only the first N windows per stream\n"
      "                       (>= 0; 0 = whole stream, default 3)\n"
      "  --ring-capacity=N    per-stream ring slots (>= 2, rounded up to\n"
      "                       a power of two, default 1024)\n"
      "  --producers=N        load-generator threads (>= 1, default 2)\n"
      "  --quantum=N          records a session drains per activation\n"
      "                       (>= 1, default 64)\n"
      "  --max-inflight=N     global cap on queued records (>= 0;\n"
      "                       0 = unlimited)\n"
      "  --admission=POLICY   block (retry until accepted, default),\n"
      "                       drop (count kOverloaded and move on), or\n"
      "                       adaptive:P99_MS (block, degrading to shed\n"
      "                       while record p99 exceeds P99_MS)\n"
      "  --batch-records=N    coalesce up to N consecutive rows of one\n"
      "                       stream into a single batched ring offer\n"
      "                       (>= 1, default 1 = per-record admission)\n"
      "  --state-pool         share immutable stream state (pipeline\n"
      "                       prefix) across sessions replaying the same\n"
      "                       spec; see serve.state_pool.* metrics\n"
      "  --distinct-streams=K serve only K distinct stream specs: stream\n"
      "                       i replays the spec of stream i %% K (>= 0;\n"
      "                       0 = every stream unique, default). The\n"
      "                       multi-tenant shape that makes --state-pool\n"
      "                       deduplicate\n"
      "  --paced              pace offers to the virtual-time schedule\n"
      "                       (default: replay at full speed)\n"
      "  --pace-tick-ms=F     paced-replay timer-wheel tick width in\n"
      "                       milliseconds (> 0, default 1)\n"
      "  --scale=F            fraction of published instance counts\n"
      "  --seed=N             schedule + learner base seed\n"
      "  --epochs=N           training epochs (0 = learner default)\n"
      "  --learner=NAME       mix (Naive-DT/Naive-GBDT round-robin,\n"
      "                       default) or one fixed learner name\n"
      "  --chaos-slow=N:MS    sleep MS milliseconds on every N-th\n"
      "                       activation (scheduling chaos)\n"
      "  --chaos-schedule=SPEC\n"
      "                       serve fault injection: comma clauses\n"
      "                       throw-at-activation=N | nan-at-record=N |\n"
      "                       transient=SEED:P (session registration\n"
      "                       ordinals; sweep-only clauses rejected)\n"
      "  --session-attempts=N activation attempts per transient fault\n"
      "                       (>= 1, default 2)\n"
      "  --max-session-failures=N\n"
      "                       abandon the run once more than N sessions\n"
      "                       are quarantined (default: unlimited)\n"
      "  --allow-quarantined  exit 0 despite quarantined sessions\n"
      "  --session-deadline-ms=N\n"
      "                       evict sessions with no progress for N ms\n"
      "                       during shutdown (0 = off)\n"
      "  --watchdog-ms=N      report activations running > N ms (0=off)\n"
      "  --rate-drift=A:T     sinusoidal offered-rate drift: amplitude A\n"
      "                       (> 0) over period T virtual seconds\n"
      "  --metrics-out=PATH   dump the JSON metrics snapshot here\n"
      "  --deterministic-metrics\n"
      "                       emit only deterministic counter sections\n"
      "  --selfcheck          verify serve == batch bit-identity across\n"
      "                       batch-records 1/4/64 x workers 1/4 x\n"
      "                       fault-free/chaos-slow, plus injected-fault\n"
      "                       quarantine differentials per batch size\n"
      "Exit codes: 0 clean, 1 failure/quarantine, 2 usage.\n"
      "Flags take --flag=value or --flag value.\n",
      argv0);
  std::exit(2);
}

ServeFlags ParseServeFlags(int argc, char** argv) {
  ServeFlags flags;
  auto fail = [&](const std::string& msg) { UsageAndExit(argv[0], msg); };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) fail("unexpected argument '" + arg + "'");
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto need_value = [&]() -> std::string {
      if (has_value) return value;
      if (i + 1 >= argc) fail("--" + name + " needs a value");
      return argv[++i];
    };
    auto int_value = [&](int64_t min_value) -> int64_t {
      std::string text = need_value();
      int64_t parsed = 0;
      if (!ParseInt64(text, &parsed) || parsed < min_value ||
          parsed > 1000000000) {
        fail("--" + name + " needs an integer >= " +
             StrFormat("%lld", static_cast<long long>(min_value)) +
             ", got '" + text + "'");
      }
      return parsed;
    };
    auto no_value = [&] {
      if (has_value) fail("--" + name + " takes no value");
    };
    if (name == "streams") {
      flags.streams = static_cast<int>(int_value(1));
    } else if (name == "workers") {
      flags.workers = static_cast<int>(int_value(1));
    } else if (name == "rate") {
      std::string text = need_value();
      double parsed = 0.0;
      if (!ParseDouble(text, &parsed) || !(parsed > 0.0)) {
        fail("--rate needs a number > 0, got '" + text + "'");
      }
      flags.rate = parsed;
    } else if (name == "burst") {
      flags.burst = int_value(1);
    } else if (name == "duration-windows") {
      flags.duration_windows = static_cast<int>(int_value(0));
    } else if (name == "ring-capacity") {
      flags.ring_capacity = static_cast<int>(int_value(2));
    } else if (name == "producers") {
      flags.producers = static_cast<int>(int_value(1));
    } else if (name == "quantum") {
      flags.quantum = int_value(1);
    } else if (name == "max-inflight") {
      flags.max_inflight = int_value(0);
    } else if (name == "admission") {
      std::string text = need_value();
      if (text == "block") {
        flags.admission = serve::AdmissionPolicy::kBlock;
      } else if (text == "drop") {
        flags.admission = serve::AdmissionPolicy::kDrop;
      } else if (text.rfind("adaptive:", 0) == 0) {
        double p99_ms = 0.0;
        if (!ParseDouble(text.substr(9), &p99_ms) || !(p99_ms > 0.0)) {
          fail("--admission=adaptive:P99_MS needs P99_MS > 0, got '" +
               text + "'");
        }
        flags.admission = serve::AdmissionPolicy::kBlock;
        flags.adaptive_p99_ms = p99_ms;
      } else {
        fail("--admission must be block, drop or adaptive:P99_MS, got '" +
             text + "'");
      }
    } else if (name == "batch-records") {
      flags.batch_records = int_value(1);
    } else if (name == "state-pool") {
      no_value();
      flags.state_pool = true;
    } else if (name == "distinct-streams") {
      flags.distinct_streams = static_cast<int>(int_value(0));
    } else if (name == "paced") {
      no_value();
      flags.paced = true;
    } else if (name == "pace-tick-ms") {
      std::string text = need_value();
      double parsed = 0.0;
      if (!ParseDouble(text, &parsed) || !(parsed > 0.0)) {
        fail("--pace-tick-ms needs a number > 0, got '" + text + "'");
      }
      flags.pace_tick_ms = parsed;
    } else if (name == "scale") {
      std::string text = need_value();
      double parsed = 0.0;
      if (!ParseDouble(text, &parsed) || !(parsed >= 0.0)) {
        fail("--scale needs a number >= 0, got '" + text + "'");
      }
      flags.scale = parsed;
    } else if (name == "seed") {
      std::string text = need_value();
      if (!ParseUint64(text, &flags.seed)) {
        fail("--seed needs an unsigned integer, got '" + text + "'");
      }
    } else if (name == "epochs") {
      flags.epochs = static_cast<int>(int_value(0));
    } else if (name == "learner") {
      std::string text = need_value();
      if (text != "mix") {
        // Validate against the known learner names up front (strict CLI
        // contract); task compatibility is checked at session init.
        std::vector<std::string> known =
            AllLearnerNames(TaskType::kClassification);
        std::vector<std::string> extended =
            ExtendedLearnerNames(TaskType::kClassification);
        known.insert(known.end(), extended.begin(), extended.end());
        if (std::find(known.begin(), known.end(), text) == known.end()) {
          fail("--learner: unknown learner '" + text + "'");
        }
      }
      flags.learner = text;
    } else if (name == "chaos-slow") {
      std::string text = need_value();
      size_t colon = text.find(':');
      int64_t every = 0;
      int64_t ms = 0;
      if (colon == std::string::npos ||
          !ParseInt64(text.substr(0, colon), &every) ||
          !ParseInt64(text.substr(colon + 1), &ms) || every < 1 || ms < 1) {
        fail("--chaos-slow needs N:MS with N >= 1, MS >= 1, got '" + text +
             "'");
      }
      flags.slow_every = every;
      flags.slow_ms = ms;
    } else if (name == "chaos-schedule") {
      std::string text = need_value();
      Result<ChaosSchedule> parsed = ChaosSchedule::Parse(text);
      if (!parsed.ok()) {
        fail("--chaos-schedule: " + parsed.status().message());
      }
      if (parsed->has_sweep_clauses()) {
        fail("--chaos-schedule: sweep-only clauses (throw-at-task, "
             "nan-at-task, slow-at-task) never fire in the serve engine; "
             "use throw-at-activation/nan-at-record/transient (and "
             "--chaos-slow for scheduling chaos)");
      }
      flags.chaos = *parsed;
      flags.has_chaos = true;
    } else if (name == "session-attempts") {
      flags.session_attempts = static_cast<int>(int_value(1));
    } else if (name == "max-session-failures") {
      flags.max_session_failures = int_value(0);
    } else if (name == "allow-quarantined") {
      no_value();
      flags.allow_quarantined = true;
    } else if (name == "session-deadline-ms") {
      flags.session_deadline_ms = static_cast<int>(int_value(1));
    } else if (name == "watchdog-ms") {
      flags.watchdog_ms = static_cast<int>(int_value(1));
    } else if (name == "rate-drift") {
      std::string text = need_value();
      size_t colon = text.find(':');
      double amplitude = 0.0;
      double period = 0.0;
      if (colon == std::string::npos ||
          !ParseDouble(text.substr(0, colon), &amplitude) ||
          !ParseDouble(text.substr(colon + 1), &period) ||
          !(amplitude > 0.0) || !(period > 0.0)) {
        fail("--rate-drift needs A:T with A > 0, T > 0, got '" + text +
             "'");
      }
      flags.rate_drift_amplitude = amplitude;
      flags.rate_drift_period = period;
    } else if (name == "metrics-out") {
      flags.metrics_out = need_value();
    } else if (name == "deterministic-metrics") {
      no_value();
      flags.deterministic_metrics = true;
    } else if (name == "selfcheck") {
      no_value();
      flags.selfcheck = true;
    } else {
      fail("unknown flag --" + name);
    }
  }
  if (flags.deterministic_metrics && flags.metrics_out.empty()) {
    fail("--deterministic-metrics only applies to --metrics-out");
  }
  return flags;
}

/// The learner serving stream index `i` under the round-robin mix.
std::string LearnerForStream(const ServeFlags& flags, size_t i) {
  if (flags.learner != "mix") return flags.learner;
  static const char* kMix[] = {"Naive-DT", "Naive-GBDT"};
  return kMix[i % 2];
}

LearnerConfig ConfigForStream(const ServeFlags& flags, size_t i) {
  LearnerConfig config;
  config.seed = flags.seed + static_cast<uint64_t>(i);
  if (flags.epochs > 0) config.epochs = flags.epochs;
  return config;
}

/// Generates the raw streams for the run — corpus entries cycled, each
/// stream salted with its spec index so no two specs are identical.
/// With --distinct-streams=K only K distinct specs exist and stream i
/// replays the spec of stream i % K: the generated streams are shared
/// (one GeneratedStream per spec, aliased shared_ptrs), which is exactly
/// the shape the state pool deduplicates at the pipeline layer.
Result<std::vector<std::shared_ptr<const GeneratedStream>>> GenerateStreams(
    const ServeFlags& flags) {
  const std::vector<CorpusEntry>& corpus = Corpus();
  std::vector<std::shared_ptr<const GeneratedStream>> streams;
  streams.reserve(static_cast<size_t>(flags.streams));
  for (int i = 0; i < flags.streams; ++i) {
    const int spec_index =
        flags.distinct_streams > 0 ? i % flags.distinct_streams : i;
    if (spec_index < i) {
      streams.push_back(streams[static_cast<size_t>(spec_index)]);
      continue;
    }
    const CorpusEntry& entry =
        corpus[static_cast<size_t>(spec_index) % corpus.size()];
    StreamSpec spec =
        SpecFromEntry(entry, flags.scale,
                      /*seed_salt=*/static_cast<uint64_t>(spec_index));
    OE_ASSIGN_OR_RETURN(GeneratedStream stream, GenerateStream(spec));
    streams.push_back(
        std::make_shared<const GeneratedStream>(std::move(stream)));
  }
  return streams;
}

serve::SessionOptions SessionOptionsForStream(
    const ServeFlags& flags, size_t i,
    serve::StatePool* pool = nullptr) {
  serve::SessionOptions options;
  options.ring_capacity = static_cast<size_t>(flags.ring_capacity);
  options.max_windows = static_cast<size_t>(flags.duration_windows);
  options.attempts = flags.session_attempts;
  options.learner = LearnerForStream(flags, i);
  options.learner_config = ConfigForStream(flags, i);
  options.state_pool = pool;
  return options;
}

/// Builds and Init()s every session, in parallel (init cost is the
/// stream-global pipeline prefix: one-hot, windows, oracle impute —
/// deduplicated across same-spec sessions when `pool` is non-null).
Result<std::vector<std::unique_ptr<serve::StreamSession>>> InitSessions(
    const ServeFlags& flags,
    const std::vector<std::shared_ptr<const GeneratedStream>>& streams,
    serve::StatePool* state_pool) {
  std::vector<std::unique_ptr<serve::StreamSession>> sessions(
      streams.size());
  std::vector<Status> statuses(streams.size(), Status::OK());
  {
    ThreadPool pool(std::min(ThreadPool::HardwareThreads(),
                             static_cast<int>(streams.size())));
    std::vector<std::future<void>> futures;
    futures.reserve(streams.size());
    for (size_t i = 0; i < streams.size(); ++i) {
      futures.push_back(pool.Submit([&, i] {
        auto session = std::make_unique<serve::StreamSession>(
            static_cast<int64_t>(i), streams[i],
            SessionOptionsForStream(flags, i, state_pool));
        statuses[i] = session->Init();
        sessions[i] = std::move(session);
      }));
    }
    for (std::future<void>& f : futures) f.get();
  }
  for (size_t i = 0; i < streams.size(); ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(),
                    "session " + StrFormat("%zu", i) + " (" +
                        streams[i]->spec.name +
                        "): " + statuses[i].message());
    }
  }
  return sessions;
}

serve::ServerOptions EngineOptions(const ServeFlags& flags) {
  serve::ServerOptions options;
  options.workers = flags.workers;
  options.quantum = flags.quantum;
  options.max_inflight = flags.max_inflight;
  options.slow_every = flags.slow_every;
  options.slow_ms = flags.slow_ms;
  options.watchdog_limit_ms = flags.watchdog_ms;
  options.session_deadline_ms = flags.session_deadline_ms;
  options.max_session_failures = flags.max_session_failures;
  return options;
}

/// The adaptive admission controller for this run's flags (nullptr =
/// off). Under --deterministic-metrics the latency histogram is still
/// wall-clock (volatile by contract), so the controller falls back to
/// the queue-depth proxy: shed at 3/4 of --max-inflight (or 4096 when
/// uncapped), resume at half of that.
std::unique_ptr<serve::AdmissionController> MakeAdmission(
    const ServeFlags& flags) {
  if (!(flags.adaptive_p99_ms > 0.0)) return nullptr;
  serve::AdmissionOptions options;
  if (flags.deterministic_metrics) {
    options.shed_depth =
        flags.max_inflight > 0
            ? std::max<int64_t>(1, 3 * flags.max_inflight / 4)
            : 4096;
    options.resume_depth = options.shed_depth / 2;
  } else {
    options.p99_limit_seconds = flags.adaptive_p99_ms / 1000.0;
  }
  return std::make_unique<serve::AdmissionController>(options);
}

serve::LoadGenOptions LoadOptions(const ServeFlags& flags) {
  serve::LoadGenOptions options;
  options.rate = flags.rate;
  options.burst = flags.burst;
  options.seed = flags.seed;
  options.producers = flags.producers;
  options.paced = flags.paced;
  options.admission = flags.admission;
  options.rate_drift_amplitude = flags.rate_drift_amplitude;
  options.rate_drift_period_seconds = flags.rate_drift_period;
  options.batch_records = flags.batch_records;
  options.pace_tick_seconds = flags.pace_tick_ms / 1000.0;
  return options;
}

/// Bit-exact dump of one prequential outcome — the serve-vs-batch
/// comparison key. Wall-clock fields are deliberately excluded.
std::string DumpResult(const EvalResult& result) {
  std::string out = result.learner + "|" + result.dataset + "|" +
                    StrFormat("%lld", static_cast<long long>(
                                          result.items_processed)) +
                    "|" +
                    StrFormat("%lld", static_cast<long long>(
                                          result.peak_memory_bytes)) +
                    "|" + sweep::EncodeDouble(result.mean_loss) + "|" +
                    sweep::EncodeDouble(result.faded_loss) + "|";
  for (size_t i = 0; i < result.per_window_loss.size(); ++i) {
    if (i > 0) out += ",";
    out += sweep::EncodeDouble(result.per_window_loss[i]);
  }
  return out;
}

/// Everything one serve pass produced: per-session dumps (quarantined
/// and abandoned sessions get a marker instead of a result dump), the
/// structured quarantine set, and delivery stats.
struct ServeOutcome {
  std::vector<std::string> dumps;
  std::vector<serve::SessionFailure> failures;
  serve::LoadStats stats;
  bool breaker_tripped = false;
};

/// One full serve pass over pre-generated streams, in stream order.
Result<ServeOutcome> RunServe(
    const ServeFlags& flags,
    const std::vector<std::shared_ptr<const GeneratedStream>>& streams) {
  std::unique_ptr<serve::StatePool> pool;
  if (flags.state_pool) pool = std::make_unique<serve::StatePool>();
  OE_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<serve::StreamSession>> sessions,
      InitSessions(flags, streams, pool.get()));
  std::unique_ptr<ServeChaosInjector> chaos;
  if (flags.has_chaos) {
    chaos = std::make_unique<ServeChaosInjector>(flags.chaos);
  }
  std::unique_ptr<serve::AdmissionController> admission =
      MakeAdmission(flags);
  serve::ServerOptions engine_options = EngineOptions(flags);
  engine_options.chaos = chaos.get();
  engine_options.admission = admission.get();
  serve::ServeEngine engine(engine_options);
  for (std::unique_ptr<serve::StreamSession>& session : sessions) {
    engine.AddSession(std::move(session));
  }
  ServeOutcome outcome;
  outcome.stats = RunLoadGenerator(&engine, LoadOptions(flags));
  engine.WaitAllFinished();
  outcome.failures = engine.failures();
  outcome.breaker_tripped = engine.breaker_tripped();
  outcome.dumps.reserve(engine.num_sessions());
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    serve::StreamSession* session = engine.session(i);
    if (session->quarantined()) {
      outcome.dumps.push_back("quarantined");
    } else if (session->abandoned()) {
      outcome.dumps.push_back("abandoned");
    } else {
      outcome.dumps.push_back(DumpResult(session->result()));
    }
  }
  return outcome;
}

/// Batch reference: PrepareStream + RunPrequential, truncated to the
/// same --duration-windows prefix the sessions serve.
Result<std::vector<std::string>> RunBatchReference(
    const ServeFlags& flags,
    const std::vector<std::shared_ptr<const GeneratedStream>>& streams) {
  std::vector<std::string> dumps;
  dumps.reserve(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    serve::SessionOptions options = SessionOptionsForStream(flags, i);
    OE_ASSIGN_OR_RETURN(PreparedStream prepared,
                        PrepareStream(*streams[i], options.pipeline));
    if (options.max_windows > 0 &&
        prepared.windows.size() > options.max_windows) {
      prepared.windows.resize(options.max_windows);
      prepared.ranges.resize(options.max_windows);
    }
    OE_ASSIGN_OR_RETURN(
        std::unique_ptr<StreamLearner> learner,
        MakeLearner(options.learner, options.learner_config, prepared.task,
                    prepared.num_classes));
    EvalResult result = RunPrequential(learner.get(), prepared);
    dumps.push_back(DumpResult(result));
  }
  return dumps;
}

int CompareDumps(const std::string& label,
                 const std::vector<std::string>& expected,
                 const std::vector<std::string>& actual) {
  if (expected.size() != actual.size()) {
    std::fprintf(stderr, "SELFCHECK FAIL [%s]: %zu vs %zu sessions\n",
                 label.c_str(), expected.size(), actual.size());
    return 1;
  }
  int mismatches = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] != actual[i]) {
      ++mismatches;
      std::fprintf(stderr,
                   "SELFCHECK FAIL [%s] session %zu:\n  batch: %s\n  "
                   "serve: %s\n",
                   label.c_str(), i, expected[i].c_str(),
                   actual[i].c_str());
    }
  }
  if (mismatches == 0) {
    std::printf("selfcheck [%s]: %zu sessions bit-identical to batch\n",
                label.c_str(), expected.size());
  }
  return mismatches == 0 ? 0 : 1;
}

/// The injected-fault differential: with throw-at-activation=2,
/// nan-at-record=3 and a transient shower injected, the quarantine set
/// must be exactly the injected ordinals — identical across worker
/// counts, since chaos keys off registration order — and every
/// non-quarantined session must stay byte-identical to batch. The
/// transient clause must quarantine nothing (default attempts retry it
/// away), proving the retry path preserves bit-identity too.
int RunChaosDifferential(
    const ServeFlags& flags,
    const std::vector<std::shared_ptr<const GeneratedStream>>& streams,
    const std::vector<std::string>& batch) {
  if (streams.size() < 3) {
    std::printf("selfcheck [chaos]: skipped (needs >= 3 streams)\n");
    return 0;
  }
  if (flags.duration_windows == 1) {
    // With a single window no window is ever tested, so the nan-at-record
    // poison has no finite metric to corrupt and no detector to trip.
    std::printf("selfcheck [chaos]: skipped (needs >= 2 windows)\n");
    return 0;
  }
  ServeFlags chaos_flags = flags;
  chaos_flags.has_chaos = true;
  chaos_flags.chaos = ChaosSchedule();
  chaos_flags.chaos.throw_at_activation = 2;  // session id 1
  chaos_flags.chaos.nan_at_record = 3;        // session id 2
  chaos_flags.chaos.transient_seed = 9;
  chaos_flags.chaos.transient_p = 0.3;
  int rc = 0;
  for (int workers : {1, 4}) {
    ServeFlags run = chaos_flags;
    run.workers = workers;
    const std::string label =
        StrFormat("chaos batch=%lld workers=%d",
                  static_cast<long long>(flags.batch_records), workers);
    Result<ServeOutcome> serve = RunServe(run, streams);
    if (!serve.ok()) {
      std::fprintf(stderr, "serve run [%s] failed: %s\n", label.c_str(),
                   serve.status().ToString().c_str());
      return 1;
    }
    // Exactly the injected streams, with the injected kinds.
    std::vector<std::pair<int64_t, serve::SessionFailureKind>> got;
    for (const serve::SessionFailure& f : serve->failures) {
      got.emplace_back(f.session_id, f.kind);
    }
    std::sort(got.begin(), got.end());
    const std::vector<std::pair<int64_t, serve::SessionFailureKind>>
        want = {{1, serve::SessionFailureKind::kException},
                {2, serve::SessionFailureKind::kNonFinite}};
    if (got != want) {
      std::fprintf(stderr,
                   "SELFCHECK FAIL [%s]: quarantine set is not exactly "
                   "the injected streams:\n%s",
                   label.c_str(),
                   serve::FormatSessionFailureReport(serve->failures)
                       .c_str());
      rc = 1;
      continue;
    }
    // Every non-quarantined session stays byte-identical to batch.
    int mismatches = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (i == 1 || i == 2) {
        if (serve->dumps[i] != "quarantined") {
          ++mismatches;
          std::fprintf(stderr,
                       "SELFCHECK FAIL [%s] session %zu: expected "
                       "quarantined, got %s\n",
                       label.c_str(), i, serve->dumps[i].c_str());
        }
        continue;
      }
      if (serve->dumps[i] != batch[i]) {
        ++mismatches;
        std::fprintf(stderr,
                     "SELFCHECK FAIL [%s] session %zu:\n  batch: %s\n  "
                     "serve: %s\n",
                     label.c_str(), i, batch[i].c_str(),
                     serve->dumps[i].c_str());
      }
    }
    if (mismatches == 0) {
      std::printf(
          "selfcheck [%s]: injected faults quarantined exactly sessions "
          "{1,2}; %zu survivors bit-identical to batch\n",
          label.c_str(), batch.size() - 2);
    } else {
      rc = 1;
    }
  }
  return rc;
}

/// --selfcheck: the ISSUE acceptance property, as a CLI mode so the
/// smoke ctest (and any user) can verify a build end-to-end.
int RunSelfCheck(ServeFlags flags) {
  // Bit-identity needs every record delivered: force the block policy.
  flags.admission = serve::AdmissionPolicy::kBlock;
  Result<std::vector<std::shared_ptr<const GeneratedStream>>> streams =
      GenerateStreams(flags);
  if (!streams.ok()) {
    std::fprintf(stderr, "stream generation failed: %s\n",
                 streams.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<std::string>> batch =
      RunBatchReference(flags, *streams);
  if (!batch.ok()) {
    std::fprintf(stderr, "batch reference failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  // The acceptance matrix: record-batch admission must be invisible to
  // the bit-identity contract at every batch size, worker count, and
  // under scheduling chaos — and the injected-fault quarantine
  // differential must hold per batch size too.
  struct Variant {
    int workers;
    int64_t slow_every;
    int64_t slow_ms;
  };
  const Variant variants[] = {
      {1, 0, 0},
      {4, 0, 0},
      {1, 3, 2},
      {4, 3, 2},
  };
  int rc = 0;
  for (int64_t batch_records : {1, 4, 64}) {
    for (const Variant& variant : variants) {
      ServeFlags run = flags;
      run.batch_records = batch_records;
      run.workers = variant.workers;
      run.slow_every = variant.slow_every;
      run.slow_ms = variant.slow_ms;
      const std::string label = StrFormat(
          "batch=%lld workers=%d%s",
          static_cast<long long>(batch_records), variant.workers,
          variant.slow_every > 0 ? "+chaos-slow" : "");
      Result<ServeOutcome> serve = RunServe(run, *streams);
      if (!serve.ok()) {
        std::fprintf(stderr, "serve run [%s] failed: %s\n", label.c_str(),
                     serve.status().ToString().c_str());
        return 1;
      }
      if (!serve->failures.empty()) {
        std::fprintf(stderr,
                     "SELFCHECK FAIL [%s]: fault-free run quarantined %zu "
                     "sessions:\n%s",
                     label.c_str(), serve->failures.size(),
                     serve::FormatSessionFailureReport(serve->failures)
                         .c_str());
        return 1;
      }
      rc |= CompareDumps(label, *batch, serve->dumps);
    }
    ServeFlags chaos_run = flags;
    chaos_run.batch_records = batch_records;
    rc |= RunChaosDifferential(chaos_run, *streams, *batch);
  }
  if (rc == 0) std::printf("SELFCHECK PASSED\n");
  return rc;
}

/// Publishes the shutdown report: latency quantiles as gauges, a
/// human-readable summary on stdout, optional JSON snapshot.
int Report(const ServeFlags& flags, const serve::LoadStats& stats,
           double wall_seconds) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  const MetricsSnapshot snap = metrics->Snapshot();
  auto counter = [&](const char* name) -> int64_t {
    auto it = snap.counters.find(name);
    if (it != snap.counters.end()) return it->second;
    auto vit = snap.volatile_counters.find(name);
    return vit != snap.volatile_counters.end() ? vit->second : 0;
  };
  auto histogram = [&](const char* name) -> HistogramSnapshot {
    auto it = snap.histograms.find(name);
    return it != snap.histograms.end() ? it->second : HistogramSnapshot();
  };
  const HistogramSnapshot record_latency =
      histogram("serve.record_latency_seconds");
  const HistogramSnapshot window_latency =
      histogram("serve.window_latency_seconds");
  const double record_p50 = serve::QuantileFromHistogram(record_latency, 0.50);
  const double record_p95 = serve::QuantileFromHistogram(record_latency, 0.95);
  const double record_p99 = serve::QuantileFromHistogram(record_latency, 0.99);
  const double window_p50 = serve::QuantileFromHistogram(window_latency, 0.50);
  const double window_p95 = serve::QuantileFromHistogram(window_latency, 0.95);
  const double window_p99 = serve::QuantileFromHistogram(window_latency, 0.99);
  metrics->GetGauge("serve.record_latency_p50")->Set(record_p50);
  metrics->GetGauge("serve.record_latency_p95")->Set(record_p95);
  metrics->GetGauge("serve.record_latency_p99")->Set(record_p99);
  metrics->GetGauge("serve.window_latency_p50")->Set(window_p50);
  metrics->GetGauge("serve.window_latency_p95")->Set(window_p95);
  metrics->GetGauge("serve.window_latency_p99")->Set(window_p99);
  const int64_t records = counter("serve.records");
  const int64_t items = counter("serve.items");
  const double record_rate =
      wall_seconds > 0.0 ? static_cast<double>(records) / wall_seconds : 0.0;
  metrics->GetGauge("serve.records_per_second")->Set(record_rate);

  bench::PrintHeader(
      "oebench_serve",
      StrFormat("%d streams x %d workers, %s admission",
                flags.streams, flags.workers,
                flags.adaptive_p99_ms > 0.0
                    ? "adaptive"
                    : (flags.admission == serve::AdmissionPolicy::kBlock
                           ? "block"
                           : "drop")));
  std::printf("offered    %lld records (accepted %lld, dropped %lld, "
              "shed %lld)\n",
              static_cast<long long>(stats.offered),
              static_cast<long long>(stats.accepted),
              static_cast<long long>(stats.dropped),
              static_cast<long long>(stats.shed));
  std::printf("consumed   %lld records -> %lld trained items, "
              "%lld windows (%lld lost)\n",
              static_cast<long long>(records),
              static_cast<long long>(items),
              static_cast<long long>(counter("serve.windows")),
              static_cast<long long>(counter("serve.windows_lost")));
  std::printf("throughput %.0f records/s over %.3f s wall\n", record_rate,
              wall_seconds);
  std::printf("latency    record p50 %.1f us, p95 %.1f us, p99 %.1f us\n",
              record_p50 * 1e6, record_p95 * 1e6, record_p99 * 1e6);
  std::printf("           window p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
              window_p50 * 1e3, window_p95 * 1e3, window_p99 * 1e3);
  std::printf("overload   drops_overloaded %lld, drops_inflight %lld, "
              "drops_shed %lld, queue_depth_peak %.0f\n",
              static_cast<long long>(counter("serve.drops_overloaded")),
              static_cast<long long>(counter("serve.drops_inflight")),
              static_cast<long long>(counter("serve.drops_shed")),
              [&] {
                auto it = snap.gauges.find("serve.queue_depth_peak");
                return it != snap.gauges.end() ? it->second : 0.0;
              }());
  auto gauge = [&](const char* name) -> double {
    auto it = snap.gauges.find(name);
    return it != snap.gauges.end() ? it->second : 0.0;
  };
  if (flags.state_pool) {
    std::printf("state pool %lld hits, %lld misses, %.0f entries, "
                "%.1f MiB held, %.1f MiB saved\n",
                static_cast<long long>(counter("serve.state_pool.hits")),
                static_cast<long long>(counter("serve.state_pool.misses")),
                gauge("serve.state_pool.entries"),
                gauge("serve.state_pool.bytes_held") / (1024.0 * 1024.0),
                gauge("serve.state_pool.bytes_saved") / (1024.0 * 1024.0));
  }
#if defined(__unix__)
  {
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      // ru_maxrss is KiB on Linux. Volatile by nature; exported as a
      // gauge so --state-pool memory claims can be checked from the
      // metrics snapshot (pair with serve.state_pool.bytes_saved).
      const double rss_bytes =
          static_cast<double>(usage.ru_maxrss) * 1024.0;
      metrics->GetGauge("serve.peak_rss_bytes")->Set(rss_bytes);
      std::printf("memory     peak rss %.1f MiB\n",
                  rss_bytes / (1024.0 * 1024.0));
    }
  }
#endif
  const int64_t quarantined = counter("serve.sessions_quarantined");
  if (quarantined > 0) {
    std::printf("failure    sessions_quarantined %lld, records_discarded "
                "%lld, deadline_evictions %lld, transient_retries %lld\n",
                static_cast<long long>(quarantined),
                static_cast<long long>(counter("serve.records_discarded")),
                static_cast<long long>(
                    counter("serve.deadline_evictions")),
                static_cast<long long>(
                    counter("serve.transient_retries")));
  }

  if (!flags.metrics_out.empty()) {
    Status written = bench::WriteMetricsFile(
        flags.metrics_out, metrics->Snapshot(), flags.deterministic_metrics);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write metrics to %s: %s\n",
                   flags.metrics_out.c_str(),
                   written.ToString().c_str());
      return 1;
    }
  }
  // Shutdown-report invariant: a run that consumed records must have
  // measured nonzero latency quantiles for them.
  if (records > 0 && !(record_p50 > 0.0 && record_p99 > 0.0)) {
    std::fprintf(stderr,
                 "report invariant violated: %lld records consumed but "
                 "p50=%g p99=%g\n",
                 static_cast<long long>(records), record_p50, record_p99);
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  ServeFlags flags = ParseServeFlags(argc, argv);
  if (flags.selfcheck) return RunSelfCheck(flags);

  Result<std::vector<std::shared_ptr<const GeneratedStream>>> streams =
      GenerateStreams(flags);
  if (!streams.ok()) {
    std::fprintf(stderr, "stream generation failed: %s\n",
                 streams.status().ToString().c_str());
    return 1;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  Result<ServeOutcome> outcome = RunServe(flags, *streams);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (!outcome.ok()) {
    std::fprintf(stderr, "serve run failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  int rc = Report(flags, outcome->stats, wall_seconds);
  if (!outcome->failures.empty()) {
    std::fputs(
        serve::FormatSessionFailureReport(outcome->failures).c_str(),
        stdout);
    if (!flags.allow_quarantined) rc = std::max(rc, 1);
  }
  if (outcome->breaker_tripped) {
    // An abandoned run is incomplete even if quarantines are tolerated.
    std::fprintf(stderr, "serve: run abandoned by the failure breaker\n");
    rc = std::max(rc, 1);
  }
  return rc;
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) { return oebench::Main(argc, argv); }
