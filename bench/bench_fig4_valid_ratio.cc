// Reproduces Figure 4: ratio of valid (non-missing) values per window for
// the incremental and decremental features of the AIR-like stream. The
// shape to reproduce: one feature absent in early windows then appearing
// (incremental feature space), one present then degrading (decremental).

#include <cstdio>

#include "bench/bench_util.h"
#include "stats/missing_stats.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 4",
                     "Ratio of valid values per window (AIR-like stream "
                     "with sensor install / breakdown)");
  StreamSpec spec = RepresentativeSpec("AIR", flags.scale);
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok());
  Result<std::vector<WindowRange>> ranges =
      MakeWindows(stream->table.num_rows(), spec.window_size);
  OE_CHECK(ranges.ok());
  MissingValueStats stats =
      ComputeMissingValueStats(stream->table, *ranges);

  const size_t windows = stats.valid_ratio_per_window.size();
  auto series = [&](int column) {
    std::vector<double> out;
    for (size_t w = 0; w < windows; ++w) {
      out.push_back(stats.valid_ratio_per_window[w][
          static_cast<size_t>(column)]);
    }
    return out;
  };
  std::vector<double> incremental = series(0);  // dropout start_frac 0
  std::vector<double> decremental = series(1);  // dropout end_frac 1

  std::printf("windows: %zu | global cell missing ratio %.3f\n\n", windows,
              stats.cell_ratio);
  std::printf("incremental feature (num0): %s\n",
              bench::Spark(incremental).c_str());
  std::printf("decremental feature (num1): %s\n\n",
              bench::Spark(decremental).c_str());
  std::printf("%-8s %14s %14s\n", "window", "num0 valid", "num1 valid");
  for (size_t w = 0; w < windows; ++w) {
    std::printf("%-8zu %14.2f %14.2f\n", w, incremental[w],
                decremental[w]);
  }
  std::printf(
      "\nPaper shape check: num0 near 0.0 early then jumps to ~1.0 (the\n"
      "blue line of Figure 4); num1 near 1.0 early then drops (orange).\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.08, 1));
  return 0;
}
