// Micro-benchmarks for the SIMD/blocked hot-kernel rewrite. Every
// converted kernel is timed as a ref/opt pair in the same process —
// `ref` is the verbatim pre-refactor implementation from
// tests/kernel_reference.h, `opt` the shipping blocked/vectorized
// version — so the speedup ratio is robust to machine noise. Emits
// BENCH_micro_kernels.json; run with --baseline=BENCH_micro_kernels.json
// to gate against the committed snapshot (exit 1 on >20% regression).

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_micro_util.h"
#include "common/random.h"
#include "dataframe/csv.h"
#include "dataframe/csv_scan.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "linalg/vector_ops.h"
#include "models/hoeffding_tree.h"
#include "models/mlp.h"
#include "preprocess/imputer.h"
#include "tests/kernel_reference.h"

namespace oebench {
namespace {

Matrix BenchMatrix(uint64_t seed, int64_t rows, int64_t cols,
                   double zero_prob = 0.0, double nan_prob = 0.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) {
    if (zero_prob > 0.0 && rng.Bernoulli(zero_prob)) {
      v = 0.0;
    } else if (nan_prob > 0.0 && rng.Bernoulli(nan_prob)) {
      v = std::numeric_limits<double>::quiet_NaN();
    } else {
      v = rng.Gaussian();
    }
  }
  return m;
}

// ------------------------------------------------------------- MatMul

// Dense product — the PCA-projection / covariance shape where the
// k-blocked Axpy4 kernel reads and writes each output row once per
// four k terms instead of once per term.
void BM_MatMulRef(benchmark::State& state) {
  const Matrix a = BenchMatrix(1, 96, 96);
  const Matrix b = BenchMatrix(2, 96, 96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel_ref::RefMatMul(a, b));
  }
}
BENCHMARK(BM_MatMulRef);

void BM_MatMulOpt(benchmark::State& state) {
  const Matrix a = BenchMatrix(1, 96, 96);
  const Matrix b = BenchMatrix(2, 96, 96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
}
BENCHMARK(BM_MatMulOpt);

// ReLU-like sparsity in the left operand: most 4-groups contain a zero,
// so this tracks the guarded fallback path's overhead.
void BM_MatMulSparseRef(benchmark::State& state) {
  const Matrix a = BenchMatrix(1, 96, 96, /*zero_prob=*/0.3);
  const Matrix b = BenchMatrix(2, 96, 96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel_ref::RefMatMul(a, b));
  }
}
BENCHMARK(BM_MatMulSparseRef);

void BM_MatMulSparseOpt(benchmark::State& state) {
  const Matrix a = BenchMatrix(1, 96, 96, /*zero_prob=*/0.3);
  const Matrix b = BenchMatrix(2, 96, 96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
}
BENCHMARK(BM_MatMulSparseOpt);

// ------------------------------------------------------- column stats

void BM_ColumnMeansRef(benchmark::State& state) {
  const Matrix m = BenchMatrix(3, 1000, 64, 0.0, /*nan_prob=*/0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel_ref::RefColumnMeans(m));
  }
}
BENCHMARK(BM_ColumnMeansRef);

void BM_ColumnMeansOpt(benchmark::State& state) {
  const Matrix m = BenchMatrix(3, 1000, 64, 0.0, /*nan_prob=*/0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.ColumnMeans());
  }
}
BENCHMARK(BM_ColumnMeansOpt);

// -------------------------------------------------------- KNN imputer

void BM_KnnImputeRef(benchmark::State& state) {
  const Matrix reference = BenchMatrix(4, 200, 16, 0.0, 0.15);
  const Matrix data = BenchMatrix(5, 40, 16, 0.0, 0.25);
  const std::vector<double> means = kernel_ref::RefColumnMeans(reference);
  for (auto _ : state) {
    Matrix work = data;
    kernel_ref::RefKnnImpute(&work, reference, means, /*k=*/3);
    benchmark::DoNotOptimize(work.data().data());
  }
}
BENCHMARK(BM_KnnImputeRef);

void BM_KnnImputeOpt(benchmark::State& state) {
  const Matrix reference = BenchMatrix(4, 200, 16, 0.0, 0.15);
  const Matrix data = BenchMatrix(5, 40, 16, 0.0, 0.25);
  KnnImputer imputer(3);
  OE_CHECK(imputer.Fit(reference).ok());
  for (auto _ : state) {
    Matrix work = data;
    OE_CHECK(imputer.Transform(&work).ok());
    benchmark::DoNotOptimize(work.data().data());
  }
}
BENCHMARK(BM_KnnImputeOpt);

// ------------------------------------------- Hoeffding leaf statistics

void BM_HoeffdingStatsRef(benchmark::State& state) {
  constexpr int64_t kDim = 32;
  constexpr int kClasses = 4;
  Rng rng(6);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 64; ++i) {
    rows.push_back(std::vector<double>(kDim));
    for (double& v : rows.back()) v = rng.Gaussian();
  }
  std::vector<std::vector<kernel_ref::RefGaussianStat>> stats(
      kDim, std::vector<kernel_ref::RefGaussianStat>(kClasses));
  int label = 0;
  for (auto _ : state) {
    for (const auto& row : rows) {
      kernel_ref::RefAccumulateStats(&stats, row.data(), kDim,
                                     label % kClasses, 2.0);
      ++label;
    }
    benchmark::DoNotOptimize(stats.data());
  }
}
BENCHMARK(BM_HoeffdingStatsRef);

void BM_HoeffdingStatsOpt(benchmark::State& state) {
  constexpr int64_t kDim = 32;
  constexpr int kClasses = 4;
  Rng rng(6);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 64; ++i) {
    rows.push_back(std::vector<double>(kDim));
    for (double& v : rows.back()) v = rng.Gaussian();
  }
  std::vector<double> stats(
      static_cast<size_t>(HoeffdingTree::kStatPlanes * kClasses * kDim), 0.0);
  int label = 0;
  for (auto _ : state) {
    for (const auto& row : rows) {
      HoeffdingTree::AccumulateStats(stats.data(), kDim, kClasses,
                                     label % kClasses, row.data(), 2.0);
      ++label;
    }
    benchmark::DoNotOptimize(stats.data());
  }
}
BENCHMARK(BM_HoeffdingStatsOpt);

// --------------------------------------------------------- CSV scanner

std::string BenchCsvText() {
  Rng rng(7);
  std::string text = "a,b,c,d,e,f,g,h\n";
  for (int r = 0; r < 4000; ++r) {
    for (int c = 0; c < 8; ++c) {
      if (c > 0) text += ',';
      text += std::to_string(rng.Gaussian());
    }
    text += '\n';
  }
  return text;
}

void BM_CsvScanScalar(benchmark::State& state) {
  const std::string text = BenchCsvText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanCsvScalar(text, {',', '\0'}));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_CsvScanScalar);

void BM_CsvScanBlocked(benchmark::State& state) {
  const std::string text = BenchCsvText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanCsvBlocked(text, {',', '\0'}));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_CsvScanBlocked);

void BM_ReadCsvFromString(benchmark::State& state) {
  const std::string text = BenchCsvText();
  for (auto _ : state) {
    Result<Table> table = ReadCsvFromString(text);
    OE_CHECK(table.ok());
    benchmark::DoNotOptimize(table->num_rows());
  }
}
BENCHMARK(BM_ReadCsvFromString);

// ------------------------------------------------------ PCA covariance

void BM_CovarianceRef(benchmark::State& state) {
  const Matrix data = BenchMatrix(8, 500, 32);
  const std::vector<double> mean = data.ColumnMeans();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel_ref::RefCovarianceMatrix(data, mean));
  }
}
BENCHMARK(BM_CovarianceRef);

void BM_CovarianceOpt(benchmark::State& state) {
  const Matrix data = BenchMatrix(8, 500, 32);
  const std::vector<double> mean = data.ColumnMeans();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CovarianceMatrix(data, mean));
  }
}
BENCHMARK(BM_CovarianceOpt);

// -------------------------------------------------------- Jacobi eigen

Matrix BenchSymmetric(int64_t n) {
  Matrix base = BenchMatrix(9, n, n);
  Matrix sym(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      sym.At(i, j) = base.At(i, j) + base.At(j, i);
    }
  }
  return sym;
}

void BM_JacobiEigenRef(benchmark::State& state) {
  const Matrix sym = BenchSymmetric(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel_ref::RefSymmetricEigen(sym));
  }
}
BENCHMARK(BM_JacobiEigenRef);

void BM_JacobiEigenOpt(benchmark::State& state) {
  const Matrix sym = BenchSymmetric(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymmetricEigen(sym));
  }
}
BENCHMARK(BM_JacobiEigenOpt);

// ---------------------------------------------------- nan-distance scan

void BM_NanDistanceRef(benchmark::State& state) {
  Rng rng(10);
  std::vector<double> a(256), b(256);
  for (double& v : a) v = rng.Bernoulli(0.1) ? NAN : rng.Gaussian();
  for (double& v : b) v = rng.Bernoulli(0.1) ? NAN : rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel_ref::RefNanEuclideanDistance(a, b));
  }
}
BENCHMARK(BM_NanDistanceRef);

void BM_NanDistanceOpt(benchmark::State& state) {
  Rng rng(10);
  std::vector<double> a(256), b(256);
  for (double& v : a) v = rng.Bernoulli(0.1) ? NAN : rng.Gaussian();
  for (double& v : b) v = rng.Bernoulli(0.1) ? NAN : rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(NanEuclideanDistance(a, b));
  }
}
BENCHMARK(BM_NanDistanceOpt);

// -------------------------------------------------------- MLP forward

void BM_MlpForwardRef(benchmark::State& state) {
  MlpConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 3;
  config.hidden_sizes = {32, 16, 8};
  Mlp mlp(config, 1);
  mlp.EnsureInitialized(64);
  const Matrix rows = BenchMatrix(11, 32, 64, /*zero_prob=*/0.3);
  for (auto _ : state) {
    for (int64_t r = 0; r < rows.rows(); ++r) {
      benchmark::DoNotOptimize(kernel_ref::RefMlpForward(
          mlp.weights(), mlp.biases(), rows.Row(r), 64));
    }
  }
}
BENCHMARK(BM_MlpForwardRef);

void BM_MlpForwardOpt(benchmark::State& state) {
  MlpConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 3;
  config.hidden_sizes = {32, 16, 8};
  Mlp mlp(config, 1);
  mlp.EnsureInitialized(64);
  const Matrix rows = BenchMatrix(11, 32, 64, /*zero_prob=*/0.3);
  for (auto _ : state) {
    for (int64_t r = 0; r < rows.rows(); ++r) {
      benchmark::DoNotOptimize(mlp.Forward(rows.Row(r), 64));
    }
  }
}
BENCHMARK(BM_MlpForwardOpt);

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  return oebench::bench::RunMicroSuite(argc, argv,
                                       "BENCH_micro_kernels.json");
}
