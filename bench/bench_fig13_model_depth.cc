// Reproduces Figure 13: loss of MLPs with 3, 5 and 7 hidden layers (the
// paper's exact layouts). Shape to reproduce: deeper networks do NOT help
// — they often do worse on relational streams (Finding 3: lightweight
// models recommended).

#include <cstdio>

#include "bench/bench_util.h"
#include "models/mlp.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 13", "Loss vs MLP depth (3 / 5 / 7 layers)");
  const int depth_grid[] = {3, 5, 7};
  std::printf("%-12s %10s %10s %10s %s\n", "Dataset", "3-layer",
              "5-layer", "7-layer", "deeper helps?");
  int deeper_wins = 0;
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("%-12s", info.short_name.c_str());
    std::vector<double> losses;
    for (int depth : depth_grid) {
      LearnerConfig config;
      config.seed = flags.seed;
      config.hidden_sizes = PaperMlpHidden(depth);
      RepeatedResult result =
          RunRepeated("Naive-NN", config, stream, flags.repeats);
      losses.push_back(result.loss_mean);
      std::printf(" %10.4f", result.loss_mean);
      std::fflush(stdout);
    }
    bool helps = losses[2] < losses[0];
    if (helps) ++deeper_wins;
    std::printf(" %s\n", helps ? "yes" : "no (paper's expectation)");
  }
  std::printf(
      "\n7-layer beat 3-layer on %d of 5 datasets.\n"
      "Paper shape check: deeper networks perform worse in most "
      "instances.\n",
      deeper_wins);
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.05, 1));
  return 0;
}
