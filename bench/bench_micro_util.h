#ifndef OEBENCH_BENCH_MICRO_UTIL_H_
#define OEBENCH_BENCH_MICRO_UTIL_H_

// Shared main body for the google-benchmark micro suites
// (bench_micro_models, bench_micro_detectors): runs the registered
// benchmarks with the usual console output, mirrors every run's timing
// into the global MetricsRegistry, and dumps a BENCH_micro_<suite>.json
// snapshot through the same metrics JSON writer the sweep and serve
// drivers use — so micro numbers can be rolled up / diffed with the
// same tooling (RollupMetricsFiles, MergeMetricsSnapshots) as
// everything else. The OEBENCH_MICRO_METRICS_OUT environment variable
// overrides the output path; set it to an empty string to skip the
// dump entirely.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/metrics.h"

namespace oebench {
namespace bench {

/// ConsoleReporter that additionally records each per-iteration run
/// into the process registry as `micro.<benchmark name>.*` gauges plus
/// one shared per-iteration latency histogram (which exercises the
/// sub-millisecond DefaultLatencyBounds buckets — micro kernels are
/// µs-scale).
class MetricsMirrorReporter : public ::benchmark::ConsoleReporter {
 public:
  using ::benchmark::ConsoleReporter::ConsoleReporter;

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    MetricsRegistry* registry = MetricsRegistry::Global();
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      const std::string base = "micro." + run.benchmark_name();
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const double real_per_iter = run.real_accumulated_time / iters;
      registry->GetGauge(base + ".real_seconds_per_iter")
          ->Set(real_per_iter);
      registry->GetGauge(base + ".cpu_seconds_per_iter")
          ->Set(run.cpu_accumulated_time / iters);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        registry->GetGauge(base + ".items_per_second")
            ->Set(items->second.value);
      }
      registry->GetHistogram("micro.real_seconds_per_iter")
          ->Record(real_per_iter);
      registry->GetCounter("micro.benchmarks")->Increment();
    }
  }
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body. `default_out` names
/// the snapshot file written next to the working directory (e.g.
/// "BENCH_micro_models.json").
inline int RunMicroSuite(int argc, char** argv,
                         const std::string& default_out) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  MetricsMirrorReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();

  std::string out = default_out;
  if (const char* env = std::getenv("OEBENCH_MICRO_METRICS_OUT")) {
    out = env;
  }
  if (out.empty()) return 0;
  const MetricsSnapshot snapshot = MetricsRegistry::Global()->Snapshot();
  const Status status =
      WriteMetricsFile(out, snapshot, /*deterministic=*/false);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write metrics to %s: %s\n", out.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("metrics written to %s\n", out.c_str());
  return 0;
}

}  // namespace bench
}  // namespace oebench

#endif  // OEBENCH_BENCH_MICRO_UTIL_H_
