#ifndef OEBENCH_BENCH_MICRO_UTIL_H_
#define OEBENCH_BENCH_MICRO_UTIL_H_

// Shared main body for the google-benchmark micro suites
// (bench_micro_models, bench_micro_detectors): runs the registered
// benchmarks with the usual console output, mirrors every run's timing
// into the global MetricsRegistry, and dumps a BENCH_micro_<suite>.json
// snapshot through the same metrics JSON writer the sweep and serve
// drivers use — so micro numbers can be rolled up / diffed with the
// same tooling (RollupMetricsFiles, MergeMetricsSnapshots) as
// everything else. The OEBENCH_MICRO_METRICS_OUT environment variable
// overrides the output path; set it to an empty string to skip the
// dump entirely.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/metrics.h"

namespace oebench {
namespace bench {

/// ConsoleReporter that additionally records each per-iteration run
/// into the process registry as `micro.<benchmark name>.*` gauges plus
/// one shared per-iteration latency histogram (which exercises the
/// sub-millisecond DefaultLatencyBounds buckets — micro kernels are
/// µs-scale).
class MetricsMirrorReporter : public ::benchmark::ConsoleReporter {
 public:
  using ::benchmark::ConsoleReporter::ConsoleReporter;

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    MetricsRegistry* registry = MetricsRegistry::Global();
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      const std::string base = "micro." + run.benchmark_name();
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const double real_per_iter = run.real_accumulated_time / iters;
      registry->GetGauge(base + ".real_seconds_per_iter")
          ->Set(real_per_iter);
      registry->GetGauge(base + ".cpu_seconds_per_iter")
          ->Set(run.cpu_accumulated_time / iters);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        registry->GetGauge(base + ".items_per_second")
            ->Set(items->second.value);
      }
      registry->GetHistogram("micro.real_seconds_per_iter")
          ->Record(real_per_iter);
      registry->GetCounter("micro.benchmarks")->Increment();
    }
  }
};

/// Compares the fresh run against a committed baseline snapshot: every
/// `micro.<name>.cpu_seconds_per_iter` gauge present in BOTH files may
/// be at most `tolerance` slower than the baseline. Returns the number
/// of regressions (0 = gate passes). Benchmarks added since the
/// baseline was recorded are reported as informational and never fail.
inline int CheckMicroBaseline(const MetricsSnapshot& fresh,
                              const MetricsSnapshot& baseline,
                              double tolerance = 0.20) {
  constexpr const char kPrefix[] = "micro.";
  constexpr const char kSuffix[] = ".cpu_seconds_per_iter";
  const size_t suffix_len = std::strlen(kSuffix);
  int regressions = 0;
  int compared = 0;
  for (const auto& [name, fresh_value] : fresh.gauges) {
    if (name.rfind(kPrefix, 0) != 0 || name.size() < suffix_len ||
        name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
      continue;
    }
    const auto it = baseline.gauges.find(name);
    if (it == baseline.gauges.end()) {
      std::printf("baseline: %s not in baseline (new benchmark), skipped\n",
                  name.c_str());
      continue;
    }
    ++compared;
    const double base_value = it->second;
    if (base_value > 0.0 && fresh_value > base_value * (1.0 + tolerance)) {
      std::fprintf(stderr,
                   "REGRESSION %s: %.3es/iter vs baseline %.3es/iter "
                   "(+%.1f%%, gate %.0f%%)\n",
                   name.c_str(), fresh_value, base_value,
                   100.0 * (fresh_value / base_value - 1.0),
                   100.0 * tolerance);
      ++regressions;
    }
  }
  std::printf("baseline gate: %d benchmark(s) compared, %d regression(s)\n",
              compared, regressions);
  return regressions;
}

/// Drop-in replacement for BENCHMARK_MAIN()'s body. `default_out` names
/// the snapshot file written next to the working directory (e.g.
/// "BENCH_micro_models.json"). Accepts `--baseline=BENCH_*.json` (and
/// strips it before google-benchmark sees the arguments): after the
/// run, per-iteration CPU times are compared gauge-by-gauge against the
/// baseline snapshot and the process exits 1 when any benchmark is more
/// than 20% slower.
inline int RunMicroSuite(int argc, char** argv,
                         const std::string& default_out) {
  std::string baseline_path;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    constexpr const char kFlag[] = "--baseline=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      baseline_path = argv[i] + std::strlen(kFlag);
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);
  int args_count = static_cast<int>(args.size()) - 1;

  ::benchmark::Initialize(&args_count, args.data());
  if (::benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  MetricsMirrorReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();

  const MetricsSnapshot snapshot = MetricsRegistry::Global()->Snapshot();

  std::string out = default_out;
  if (const char* env = std::getenv("OEBENCH_MICRO_METRICS_OUT")) {
    out = env;
  }
  if (!out.empty()) {
    const Status status =
        WriteMetricsFile(out, snapshot, /*deterministic=*/false);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write metrics to %s: %s\n", out.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", out.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot open baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    MetricsSnapshot baseline;
    const Status status = ParseMetricsJson(text.str(), &baseline);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot parse baseline %s: %s\n",
                   baseline_path.c_str(), status.ToString().c_str());
      return 1;
    }
    // Default gate is 20%; OEBENCH_MICRO_BASELINE_TOL overrides (e.g.
    // 0.5 on shared/noisy hosts where run-to-run spread exceeds 20%).
    double tolerance = 0.20;
    if (const char* env = std::getenv("OEBENCH_MICRO_BASELINE_TOL")) {
      char* end = nullptr;
      const double parsed = std::strtod(env, &end);
      if (end != env && parsed > 0.0) tolerance = parsed;
    }
    if (CheckMicroBaseline(snapshot, baseline, tolerance) > 0) return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace oebench

#endif  // OEBENCH_BENCH_MICRO_UTIL_H_
