// Reproduces Figure 3: box-plot statistics (min / Q1 / median / Q3 / max)
// of the open-environment features over (a) the full corpus and (b) the
// five selected datasets. The shape to reproduce: the corpus spans a wide
// range on every axis, and the selected five emulate that spread.

#include <cstdio>

#include "bench/bench_util.h"
#include "linalg/vector_ops.h"
#include "stats/profile.h"
#include "streamgen/corpus.h"
#include "streamgen/representative.h"

namespace oebench {
namespace {

void PrintBox(const char* label, std::vector<double> values) {
  std::printf("  %-22s min %.4f | Q1 %.4f | median %.4f | Q3 %.4f | max "
              "%.4f\n",
              label, Quantile(values, 0.0), Quantile(values, 0.25),
              Quantile(values, 0.5), Quantile(values, 0.75),
              Quantile(values, 1.0));
}

void Summarize(const char* title,
               const std::vector<DatasetProfile>& profiles) {
  std::printf("\n%s (%zu datasets)\n", title, profiles.size());
  std::vector<double> missing;
  std::vector<double> drift;
  std::vector<double> anomaly;
  for (const DatasetProfile& p : profiles) {
    missing.push_back(p.MissingScore());
    drift.push_back(p.DriftScore());
    anomaly.push_back(p.AnomalyScore());
  }
  PrintBox("missing value ratio", missing);
  PrintBox("drift ratio", drift);
  PrintBox("anomaly ratio", anomaly);
}

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 3",
                     "Statistical distribution of open-environment "
                     "features");
  std::vector<DatasetProfile> all;
  std::vector<DatasetProfile> selected;
  for (const CorpusEntry& entry : Corpus()) {
    Result<GeneratedStream> stream =
        GenerateStream(SpecFromEntry(entry, flags.scale));
    OE_CHECK(stream.ok());
    Result<DatasetProfile> profile = ProfileDataset(*stream);
    OE_CHECK(profile.ok());
    all.push_back(*profile);
    for (const RepresentativeInfo& info : RepresentativeDatasets()) {
      if (info.corpus_name == entry.name) selected.push_back(*profile);
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  Summarize("Explored corpus", all);
  Summarize("Selected datasets", selected);
  std::printf(
      "\nPaper shape check: the corpus ranges are wide on all three axes\n"
      "and the selected five span most of each range.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.03, 1));
  return 0;
}
