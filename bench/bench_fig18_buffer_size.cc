// Reproduces Figure 18 (appendix B.3): iCaRL exemplar buffer size over
// {20, 50, 100, 200, 500}. Shape to reproduce: the buffer size barely
// moves the loss, and very large buffers can make it worse — memorising
// more old data is not always useful in open environments (Finding 7).

#include <cstdio>

#include "bench/bench_util.h"

namespace oebench {
namespace {

void Run(const bench::BenchFlags& flags) {
  bench::PrintHeader("Figure 18", "iCaRL loss vs exemplar buffer size");
  const int buffer_grid[] = {20, 50, 100, 200, 500};
  std::printf("%-12s", "Dataset");
  for (int size : buffer_grid) std::printf(" %10d", size);
  std::printf("\n");
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    PreparedStream stream =
        bench::MakePrepared(info.short_name, flags.scale);
    std::printf("%-12s", info.short_name.c_str());
    std::vector<double> losses;
    for (int size : buffer_grid) {
      LearnerConfig config;
      config.seed = flags.seed;
      config.buffer_size = size;
      RepeatedResult result =
          RunRepeated("iCaRL", config, stream, flags.repeats);
      losses.push_back(result.loss_mean);
      std::printf(" %10.4f", result.loss_mean);
      std::fflush(stdout);
    }
    double lo = *std::min_element(losses.begin(), losses.end());
    double hi = *std::max_element(losses.begin(), losses.end());
    std::printf("   spread %.4f\n", hi - lo);
  }
  std::printf(
      "\nPaper shape check: small spread across buffer sizes; 500 is not\n"
      "the winner everywhere — prefer small buffers for efficiency.\n");
}

}  // namespace
}  // namespace oebench

int main(int argc, char** argv) {
  oebench::Run(oebench::bench::ParseFlags(argc, argv, 0.05, 1));
  return 0;
}
