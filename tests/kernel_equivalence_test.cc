// Differential kernel-equivalence suite for the SIMD/blocked hot-kernel
// refactor. Three layers of evidence, all bitwise (EncodeDouble):
//
//   1. SIMD path vs scalar path of every kernel in src/linalg/simd.h
//      (the scalar variants are linked in via tests/simd_scalar_helper.cc,
//      compiled with -DOEBENCH_SIMD_DISABLE).
//   2. Refactored call sites vs the verbatim pre-refactor implementations
//      in tests/kernel_reference.h (MatMul, column stats, eigen, solver,
//      imputers, Hoeffding statistics, MLP forward, PCA covariance).
//   3. End-to-end: full RunPrequential over two corpus streams must be
//      byte-identical to golden dumps pinned from the pre-refactor tree
//      (tests/golden/). Set OEBENCH_WRITE_GOLDEN_DIR=<dir> to regenerate.
//
// Sizes straddle the canonical block width (1, kBlockDoubles-1,
// kBlockDoubles, kBlockDoubles+1, large primes) and inputs include NaN,
// +/-inf, -0.0, and denormals.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/learner.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "linalg/simd.h"
#include "linalg/vector_ops.h"
#include "models/hoeffding_tree.h"
#include "models/mlp.h"
#include "preprocess/imputer.h"
#include "preprocess/pipeline.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"
#include "tests/kernel_reference.h"
#include "tests/simd_scalar_helper.h"

namespace oebench {
namespace {

using sweep::EncodeDouble;

const double kNan = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();
const double kDenormMin = std::numeric_limits<double>::denorm_min();

// Sizes straddling the block width plus large primes.
const int64_t kSizes[] = {1,
                          simd::kBlockDoubles - 1,
                          simd::kBlockDoubles,
                          simd::kBlockDoubles + 1,
                          63,
                          64,
                          65,
                          127,
                          1009};

std::string EncodeVec(const double* v, int64_t n) {
  std::string out;
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ",";
    out += EncodeDouble(v[i]);
  }
  return out;
}

std::string EncodeVec(const std::vector<double>& v) {
  return EncodeVec(v.data(), static_cast<int64_t>(v.size()));
}

std::string EncodeMat(const Matrix& m) {
  return std::to_string(m.rows()) + "x" + std::to_string(m.cols()) + ":" +
         EncodeVec(m.data().data(), m.size());
}

// Like EncodeMat, but collapses every NaN to the canonical quiet NaN
// first. When two input NaNs (or two NaN-producing terms) meet in one
// accumulation chain, IEEE 754 leaves *which* payload/sign survives
// implementation-defined, and the compiler may commute `a + b` freely —
// so NaN bit patterns are not comparable across separately-compiled
// kernels. Values, infinities, and signed zeros still compare bitwise.
std::string EncodeMatCanonNan(Matrix m) {
  for (double& v : m.data()) {
    if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  }
  return EncodeMat(m);
}

// Random values with special IEEE cases sprinkled in.
double SpecialValue(Rng* rng) {
  switch (rng->UniformInt(8)) {
    case 0:
      return kNan;
    case 1:
      return kInf;
    case 2:
      return -kInf;
    case 3:
      return -0.0;
    case 4:
      return 0.0;
    case 5:
      return kDenormMin;
    case 6:
      return -4.9e-324;
    default:
      return 2.2250738585072014e-308;  // smallest normal
  }
}

std::vector<double> RandomVec(Rng* rng, int64_t n, bool specials) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) {
    if (specials && rng->Bernoulli(0.15)) {
      x = SpecialValue(rng);
    } else {
      x = rng->Gaussian();
    }
  }
  return v;
}

Matrix RandomMatrix(Rng* rng, int64_t rows, int64_t cols, bool specials,
                    double zero_prob = 0.0) {
  Matrix m(rows, cols);
  for (double& x : m.data()) {
    if (zero_prob > 0.0 && rng->Bernoulli(zero_prob)) {
      x = 0.0;
    } else if (specials && rng->Bernoulli(0.1)) {
      x = SpecialValue(rng);
    } else {
      x = rng->Gaussian();
    }
  }
  return m;
}

Matrix RandomMatrixWithNans(Rng* rng, int64_t rows, int64_t cols,
                            double nan_prob) {
  Matrix m(rows, cols);
  for (double& x : m.data()) {
    x = rng->Bernoulli(nan_prob) ? kNan : rng->Gaussian();
  }
  return m;
}

// ------------------------------------------------- SIMD vs scalar path

TEST(SimdVsScalar, ElementwiseKernels) {
  Rng rng(11);
  for (int64_t n : kSizes) {
    for (int rep = 0; rep < 3; ++rep) {
      const std::vector<double> src = RandomVec(&rng, n, true);
      const std::vector<double> src2 = RandomVec(&rng, n, true);
      const std::vector<double> base = RandomVec(&rng, n, true);
      const double a = rep == 0 ? -1.5 : rng.Gaussian();

      std::vector<double> s1 = base, s2 = base;
      simd::Axpy(s1.data(), src.data(), n, a);
      scalar_kernels::Axpy(s2.data(), src.data(), n, a);
      EXPECT_EQ(EncodeVec(s1), EncodeVec(s2)) << "Axpy n=" << n;

      s1 = base, s2 = base;
      simd::Add(s1.data(), src.data(), n);
      scalar_kernels::Add(s2.data(), src.data(), n);
      EXPECT_EQ(EncodeVec(s1), EncodeVec(s2)) << "Add n=" << n;

      s1 = base, s2 = base;
      simd::Sub(s1.data(), src.data(), n);
      scalar_kernels::Sub(s2.data(), src.data(), n);
      EXPECT_EQ(EncodeVec(s1), EncodeVec(s2)) << "Sub n=" << n;

      s1 = base, s2 = base;
      simd::Scale(s1.data(), n, a);
      scalar_kernels::Scale(s2.data(), n, a);
      EXPECT_EQ(EncodeVec(s1), EncodeVec(s2)) << "Scale n=" << n;

      s1 = base, s2 = base;
      simd::FillNanWith(s1.data(), n, a);
      scalar_kernels::FillNanWith(s2.data(), n, a);
      EXPECT_EQ(EncodeVec(s1), EncodeVec(s2)) << "FillNanWith n=" << n;

      s1 = base, s2 = base;
      simd::FillNanWithRow(s1.data(), src.data(), n);
      scalar_kernels::FillNanWithRow(s2.data(), src.data(), n);
      EXPECT_EQ(EncodeVec(s1), EncodeVec(s2)) << "FillNanWithRow n=" << n;

      s1 = base, s2 = base;
      simd::AccumSquares(s1.data(), src.data(), n);
      scalar_kernels::AccumSquares(s2.data(), src.data(), n);
      EXPECT_EQ(EncodeVec(s1), EncodeVec(s2)) << "AccumSquares n=" << n;

      s1 = base, s2 = base;
      simd::AccumAbs(s1.data(), src.data(), n);
      scalar_kernels::AccumAbs(s2.data(), src.data(), n);
      EXPECT_EQ(EncodeVec(s1), EncodeVec(s2)) << "AccumAbs n=" << n;

      s1 = base, s2 = base;
      simd::AccumCovRow(s1.data(), src.data(), src2.data(), n, a);
      scalar_kernels::AccumCovRow(s2.data(), src.data(), src2.data(), n, a);
      EXPECT_EQ(EncodeVec(s1), EncodeVec(s2)) << "AccumCovRow n=" << n;

      EXPECT_EQ(simd::HasNan(base.data(), n),
                scalar_kernels::HasNan(base.data(), n))
          << "HasNan n=" << n;

      EXPECT_EQ(EncodeDouble(simd::DotSeq(src.data(), src2.data(), n)),
                EncodeDouble(
                    scalar_kernels::DotSeq(src.data(), src2.data(), n)))
          << "DotSeq n=" << n;
      EXPECT_EQ(EncodeDouble(simd::SumSquaresSeq(a, src.data(), n)),
                EncodeDouble(scalar_kernels::SumSquaresSeq(a, src.data(), n)))
          << "SumSquaresSeq n=" << n;
      EXPECT_EQ(
          EncodeDouble(simd::SquaredDistanceSeq(src.data(), src2.data(), n)),
          EncodeDouble(
              scalar_kernels::SquaredDistanceSeq(src.data(), src2.data(), n)))
          << "SquaredDistanceSeq n=" << n;

      int64_t used1 = -1, used2 = -1;
      EXPECT_EQ(EncodeDouble(simd::NanSquaredDistanceSeq(
                    src.data(), src2.data(), n, &used1)),
                EncodeDouble(scalar_kernels::NanSquaredDistanceSeq(
                    src.data(), src2.data(), n, &used2)))
          << "NanSquaredDistanceSeq n=" << n;
      EXPECT_EQ(used1, used2);
    }
  }
}

TEST(SimdVsScalar, RowAccumulatorKernels) {
  Rng rng(12);
  for (int64_t n : kSizes) {
    std::vector<double> row = RandomVec(&rng, n, true);
    std::vector<double> mean = RandomVec(&rng, n, false);
    std::vector<double> sum1 = RandomVec(&rng, n, false);
    std::vector<double> sum2 = sum1;
    std::vector<double> cnt1(static_cast<size_t>(n), 3.0);
    std::vector<double> cnt2 = cnt1;
    simd::AccumRowSkipNan(sum1.data(), cnt1.data(), row.data(), n);
    scalar_kernels::AccumRowSkipNan(sum2.data(), cnt2.data(), row.data(), n);
    EXPECT_EQ(EncodeVec(sum1), EncodeVec(sum2)) << "AccumRowSkipNan n=" << n;
    EXPECT_EQ(cnt1, cnt2);

    sum2 = sum1;
    cnt2 = cnt1;
    simd::AccumSqDevRowSkipNan(sum1.data(), cnt1.data(), row.data(),
                               mean.data(), n);
    scalar_kernels::AccumSqDevRowSkipNan(sum2.data(), cnt2.data(), row.data(),
                                         mean.data(), n);
    EXPECT_EQ(EncodeVec(sum1), EncodeVec(sum2))
        << "AccumSqDevRowSkipNan n=" << n;
    EXPECT_EQ(cnt1, cnt2);
  }
}

TEST(SimdVsScalar, RotationKernels) {
  Rng rng(13);
  for (int64_t n : kSizes) {
    const double c = std::cos(0.7), s = std::sin(0.7);
    std::vector<double> x1 = RandomVec(&rng, n, true);
    std::vector<double> y1 = RandomVec(&rng, n, true);
    std::vector<double> x2 = x1, y2 = y1;
    simd::Rotate(x1.data(), y1.data(), n, c, s);
    scalar_kernels::Rotate(x2.data(), y2.data(), n, c, s);
    EXPECT_EQ(EncodeVec(x1), EncodeVec(x2)) << "Rotate n=" << n;
    EXPECT_EQ(EncodeVec(y1), EncodeVec(y2));

    // Strided rotation over an interleaved buffer (stride 3).
    std::vector<double> buf1 = RandomVec(&rng, 3 * n + 2, false);
    std::vector<double> buf2 = buf1;
    simd::RotateStrided(buf1.data(), buf1.data() + 1, n, 3, c, s);
    scalar_kernels::RotateStrided(buf2.data(), buf2.data() + 1, n, 3, c, s);
    EXPECT_EQ(EncodeVec(buf1), EncodeVec(buf2)) << "RotateStrided n=" << n;
  }
}

TEST(SimdVsScalar, GemvKernels) {
  Rng rng(14);
  const int64_t shapes[][2] = {{1, 1},   {1, 9},  {9, 1},  {3, 8},
                               {4, 8},   {5, 7},  {8, 8},  {9, 9},
                               {16, 33}, {33, 16}};
  for (const auto& shape : shapes) {
    const int64_t rows = shape[0], cols = shape[1];
    // Zero coefficients exercise the guarded path vs the Axpy4 path.
    std::vector<double> a = RandomVec(&rng, rows, true);
    for (double& v : a) {
      if (rng.Bernoulli(0.3)) v = 0.0;
    }
    std::vector<double> w = RandomVec(&rng, rows * cols, true);
    std::vector<double> out1 = RandomVec(&rng, cols, false);
    std::vector<double> out2 = out1;
    simd::GemvAccum(a.data(), w.data(), rows, cols, cols, out1.data());
    scalar_kernels::GemvAccum(a.data(), w.data(), rows, cols, cols,
                              out2.data());
    EXPECT_EQ(EncodeVec(out1), EncodeVec(out2))
        << "GemvAccum " << rows << "x" << cols;

    std::vector<double> out3 = out1, out4 = out1;
    simd::Axpy4(out3.data(), w.data(), w.data() + cols, w.data() + 2 * cols,
                w.data() + 3 * cols, a[0], 1.5, -2.0, 0.25, cols);
    scalar_kernels::Axpy4(out4.data(), w.data(), w.data() + cols,
                          w.data() + 2 * cols, w.data() + 3 * cols, a[0], 1.5,
                          -2.0, 0.25, cols);
    EXPECT_EQ(EncodeVec(out3), EncodeVec(out4)) << "Axpy4 cols=" << cols;
  }
  // Degenerate shapes are no-ops on the output.
  std::vector<double> out{1.0, 2.0};
  simd::GemvAccum(nullptr, nullptr, 0, 2, 2, out.data());
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 2.0);
  double coeff = 3.0;
  simd::GemvAccum(&coeff, out.data(), 1, 0, 0, nullptr);
}

// --------------------------------------- refactored code vs reference

TEST(MatrixKernels, MatMulMatchesReference) {
  Rng rng(21);
  const int64_t dims[] = {1, 2, 3, 4, 5, 8, 9, 17};
  for (int64_t m : dims) {
    for (int64_t k : dims) {
      for (int64_t n : {int64_t{1}, int64_t{8}, int64_t{17}}) {
        Matrix a = RandomMatrix(&rng, m, k, true, 0.3);
        Matrix b = RandomMatrix(&rng, k, n, true);
        EXPECT_EQ(EncodeMatCanonNan(a.MatMul(b)),
                  EncodeMatCanonNan(kernel_ref::RefMatMul(a, b)))
            << m << "x" << k << " * " << k << "x" << n;
      }
    }
  }
}

TEST(MatrixKernels, EdgeShapes) {
  // Empty operands: results keep their (empty) shapes.
  Matrix e00;
  EXPECT_EQ(e00.MatMul(e00).size(), 0);
  Matrix e05(0, 5);
  Matrix e53(5, 3);
  Matrix r = e05.MatMul(e53);
  EXPECT_EQ(r.rows(), 0);
  EXPECT_EQ(r.cols(), 3);
  Matrix e30(3, 0);
  Matrix e04(0, 4);
  r = e30.MatMul(e04);
  EXPECT_EQ(r.rows(), 3);
  EXPECT_EQ(r.cols(), 4);
  EXPECT_EQ(EncodeMat(r), EncodeMat(Matrix(3, 4)));  // all zeros

  EXPECT_TRUE(e05.ColumnMeans() == std::vector<double>(5, 0.0));
  EXPECT_EQ(e05.FrobeniusNorm(), 0.0);

  // 1xN times Nx1 and back.
  Rng rng(22);
  Matrix row_vec = RandomMatrix(&rng, 1, 9, true);
  Matrix col_vec = RandomMatrix(&rng, 9, 1, true);
  EXPECT_EQ(EncodeMat(row_vec.MatMul(col_vec)),
            EncodeMat(kernel_ref::RefMatMul(row_vec, col_vec)));
  EXPECT_EQ(EncodeMat(col_vec.MatMul(row_vec)),
            EncodeMat(kernel_ref::RefMatMul(col_vec, row_vec)));

  // Aliased AddInPlace (m += s*m) matches the reference run on a copy.
  Matrix m = RandomMatrix(&rng, 4, 5, true);
  Matrix m_ref = m;
  m.AddInPlace(m, -0.5);
  kernel_ref::RefAddInPlace(&m_ref, m_ref, -0.5);
  EXPECT_EQ(EncodeMat(m), EncodeMat(m_ref));
}

TEST(MatrixKernels, ColumnStatsMatchReference) {
  Rng rng(23);
  for (int64_t rows : {1, 2, 7, 40}) {
    for (int64_t cols : {1, 7, 8, 9, 33}) {
      Matrix m = RandomMatrixWithNans(&rng, rows, cols, 0.25);
      // Force a -0.0-sum column when wide enough.
      if (cols > 1 && rows > 1) {
        for (int64_t r = 0; r < rows; ++r) m.At(r, 0) = -0.0;
      }
      EXPECT_EQ(EncodeVec(m.ColumnMeans()),
                EncodeVec(kernel_ref::RefColumnMeans(m)))
          << rows << "x" << cols;
      EXPECT_EQ(EncodeVec(m.ColumnStdDevs()),
                EncodeVec(kernel_ref::RefColumnStdDevs(m)))
          << rows << "x" << cols;
      EXPECT_EQ(EncodeDouble(m.FrobeniusNorm()),
                EncodeDouble(kernel_ref::RefFrobeniusNorm(m)));
    }
  }
}

TEST(VectorOps, DistancesMatchReference) {
  Rng rng(24);
  for (int64_t n : kSizes) {
    std::vector<double> a = RandomVec(&rng, n, true);
    std::vector<double> b = RandomVec(&rng, n, true);
    EXPECT_EQ(EncodeDouble(NanEuclideanDistance(a, b)),
              EncodeDouble(kernel_ref::RefNanEuclideanDistance(a, b)))
        << "n=" << n;
  }
  // All coordinates NaN on one side -> +inf.
  std::vector<double> a(5, kNan);
  std::vector<double> b(5, 1.0);
  EXPECT_EQ(NanEuclideanDistance(a, b), kInf);
}

TEST(Eigen, SymmetricEigenMatchesReference) {
  Rng rng(25);
  for (int64_t n : {1, 2, 3, 5, 8, 16}) {
    Matrix base = RandomMatrix(&rng, n, n, false);
    Matrix sym(n, n);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        sym.At(i, j) = base.At(i, j) + base.At(j, i);
      }
    }
    EigenDecomposition got = SymmetricEigen(sym);
    kernel_ref::RefEigenDecomposition want = kernel_ref::RefSymmetricEigen(sym);
    EXPECT_EQ(EncodeVec(got.values), EncodeVec(want.values)) << "n=" << n;
    EXPECT_EQ(EncodeMat(got.vectors), EncodeMat(want.vectors)) << "n=" << n;
  }
}

TEST(Eigen, SolveMatchesReference) {
  Rng rng(26);
  for (int64_t n : {1, 2, 5, 8, 13}) {
    Matrix a = RandomMatrix(&rng, n, n, false);
    // Zeros on the diagonal force pivot swaps.
    if (n > 2) a.At(0, 0) = 0.0;
    std::vector<double> b = RandomVec(&rng, n, false);
    EXPECT_EQ(EncodeVec(SolveLinearSystem(a, b)),
              EncodeVec(kernel_ref::RefSolveLinearSystem(a, b)))
        << "n=" << n;
  }
  // Singular system: both return the zero vector.
  Matrix sing(3, 3);
  std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_EQ(EncodeVec(SolveLinearSystem(sing, b)),
            EncodeVec(std::vector<double>(3, 0.0)));
}

TEST(Imputer, KnnMatchesReference) {
  Rng rng(27);
  for (int k : {1, 3, 5}) {
    Matrix reference = RandomMatrixWithNans(&rng, 40, 9, 0.2);
    Matrix data = RandomMatrixWithNans(&rng, 15, 9, 0.3);
    Matrix data_ref = data;

    KnnImputer imputer(k);
    ASSERT_TRUE(imputer.Fit(reference).ok());
    ASSERT_TRUE(imputer.Transform(&data).ok());

    kernel_ref::RefKnnImpute(&data_ref, reference,
                             kernel_ref::RefColumnMeans(reference), k);
    EXPECT_EQ(EncodeMat(data), EncodeMat(data_ref)) << "k=" << k;
  }
}

TEST(Imputer, ZeroAndMeanMatchReference) {
  Rng rng(28);
  Matrix train = RandomMatrixWithNans(&rng, 20, 8, 0.2);
  Matrix data = RandomMatrixWithNans(&rng, 10, 8, 0.3);

  Matrix z = data;
  ZeroImputer zero;
  ASSERT_TRUE(zero.Fit(train).ok());
  ASSERT_TRUE(zero.Transform(&z).ok());
  Matrix z_ref = data;
  for (double& v : z_ref.data()) {
    if (std::isnan(v)) v = 0.0;
  }
  EXPECT_EQ(EncodeMat(z), EncodeMat(z_ref));

  Matrix m = data;
  MeanImputer mean;
  ASSERT_TRUE(mean.Fit(train).ok());
  ASSERT_TRUE(mean.Transform(&m).ok());
  Matrix m_ref = data;
  std::vector<double> means = kernel_ref::RefColumnMeans(train);
  for (int64_t r = 0; r < m_ref.rows(); ++r) {
    double* row = m_ref.Row(r);
    for (int64_t c = 0; c < m_ref.cols(); ++c) {
      if (std::isnan(row[c])) row[c] = means[static_cast<size_t>(c)];
    }
  }
  EXPECT_EQ(EncodeMat(m), EncodeMat(m_ref));
}

TEST(Hoeffding, AccumulateStatsMatchesReference) {
  Rng rng(29);
  for (int64_t dim : {1, 7, 8, 9, 33}) {
    for (int num_classes : {2, 5}) {
      std::vector<double> soa(
          static_cast<size_t>(HoeffdingTree::kStatPlanes * num_classes * dim),
          0.0);
      std::vector<std::vector<kernel_ref::RefGaussianStat>> aos(
          static_cast<size_t>(dim),
          std::vector<kernel_ref::RefGaussianStat>(
              static_cast<size_t>(num_classes)));
      for (int step = 0; step < 60; ++step) {
        std::vector<double> row = RandomVec(&rng, dim, true);
        const int label = static_cast<int>(rng.UniformInt(num_classes));
        const double weight = 1.0 + rng.UniformInt(5);
        HoeffdingTree::AccumulateStats(soa.data(), dim, num_classes, label,
                                       row.data(), weight);
        kernel_ref::RefAccumulateStats(&aos, row.data(), dim, label, weight);
      }
      // Gather the SoA planes back into per-cell tuples and compare.
      const int64_t cd = static_cast<int64_t>(num_classes) * dim;
      for (int64_t f = 0; f < dim; ++f) {
        for (int c = 0; c < num_classes; ++c) {
          const int64_t off = static_cast<int64_t>(c) * dim + f;
          const kernel_ref::RefGaussianStat& want =
              aos[static_cast<size_t>(f)][static_cast<size_t>(c)];
          EXPECT_EQ(EncodeDouble(soa[static_cast<size_t>(0 * cd + off)]),
                    EncodeDouble(want.weight))
              << "weight f=" << f << " c=" << c << " dim=" << dim;
          EXPECT_EQ(EncodeDouble(soa[static_cast<size_t>(1 * cd + off)]),
                    EncodeDouble(want.mean))
              << "mean f=" << f << " c=" << c;
          EXPECT_EQ(EncodeDouble(soa[static_cast<size_t>(2 * cd + off)]),
                    EncodeDouble(want.m2))
              << "m2 f=" << f << " c=" << c;
          EXPECT_EQ(EncodeDouble(soa[static_cast<size_t>(3 * cd + off)]),
                    EncodeDouble(want.min))
              << "min f=" << f << " c=" << c;
          EXPECT_EQ(EncodeDouble(soa[static_cast<size_t>(4 * cd + off)]),
                    EncodeDouble(want.max))
              << "max f=" << f << " c=" << c;
        }
      }
    }
  }
}

TEST(Mlp, ForwardMatchesReference) {
  MlpConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 3;
  config.hidden_sizes = {16, 8};
  Mlp mlp(config, /*seed=*/5);
  mlp.EnsureInitialized(9);

  Rng rng(30);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> row = RandomVec(&rng, 9, false);
    // Zeros exercise the a == 0.0 skip in the GEMV.
    for (double& v : row) {
      if (rng.Bernoulli(0.4)) v = 0.0;
    }
    EXPECT_EQ(EncodeVec(mlp.Forward(row.data(), 9)),
              EncodeVec(kernel_ref::RefMlpForward(mlp.weights(), mlp.biases(),
                                                  row.data(), 9)));
  }
}

TEST(Pca, CovarianceMatchesReference) {
  Rng rng(31);
  for (int64_t n : {2, 5, 20}) {
    for (int64_t d : {1, 3, 8, 17}) {
      Matrix data = RandomMatrix(&rng, n, d, false);
      std::vector<double> mean = data.ColumnMeans();
      EXPECT_EQ(EncodeMat(CovarianceMatrix(data, mean)),
                EncodeMat(kernel_ref::RefCovarianceMatrix(data, mean)))
          << n << "x" << d;
    }
  }
}

// ----------------------------------------------- golden stream dumps

constexpr size_t kMaxWindows = 4;

uint64_t Fnv1a(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string HashHex(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string DumpEval(const EvalResult& result) {
  std::string out = result.learner + "|" + result.dataset + "|" +
                    std::to_string(result.items_processed) + "|" +
                    std::to_string(result.peak_memory_bytes) + "|" +
                    EncodeDouble(result.mean_loss) + "|" +
                    EncodeDouble(result.faded_loss) + "|";
  for (size_t i = 0; i < result.per_window_loss.size(); ++i) {
    if (i > 0) out += ",";
    out += EncodeDouble(result.per_window_loss[i]);
  }
  return out;
}

// Must stay in sync with the generator that pinned tests/golden/ from
// the pre-refactor tree.
std::string GoldenDump(size_t corpus_index,
                       const std::vector<std::string>& learners) {
  const CorpusEntry& entry = Corpus()[corpus_index];
  StreamSpec spec = SpecFromEntry(entry, /*scale=*/0.0, /*salt=*/7);
  Result<GeneratedStream> stream = GenerateStream(spec);
  OE_CHECK(stream.ok()) << stream.status().ToString();
  Result<PreparedStream> prepared = PrepareStream(*stream);
  OE_CHECK(prepared.ok()) << prepared.status().ToString();
  if (prepared->windows.size() > kMaxWindows) {
    prepared->windows.resize(kMaxWindows);
    prepared->ranges.resize(kMaxWindows);
  }
  std::string out = "stream|" + prepared->name + "|task=" +
                    std::to_string(static_cast<int>(prepared->task)) +
                    "|classes=" + std::to_string(prepared->num_classes) +
                    "|windows=" + std::to_string(prepared->windows.size()) +
                    "|features=" +
                    std::to_string(prepared->feature_names.size()) + "\n";
  for (size_t w = 0; w < prepared->windows.size(); ++w) {
    const WindowData& window = prepared->windows[w];
    uint64_t xh = 1469598103934665603ull;
    for (double v : window.features.data()) {
      xh = Fnv1a(xh, EncodeDouble(v));
    }
    uint64_t yh = 1469598103934665603ull;
    for (double v : window.targets) yh = Fnv1a(yh, EncodeDouble(v));
    out += "window|" + std::to_string(w) + "|rows=" +
           std::to_string(window.features.rows()) + "|xhash=" + HashHex(xh) +
           "|yhash=" + HashHex(yh) + "\n";
  }
  for (const std::string& name : learners) {
    LearnerConfig config;
    config.epochs = 1;
    config.seed = 1;
    Result<std::unique_ptr<StreamLearner>> learner =
        MakeLearner(name, config, prepared->task, prepared->num_classes);
    OE_CHECK(learner.ok()) << learner.status().ToString();
    out += "eval|" + DumpEval(RunPrequential(learner->get(), *prepared)) +
           "\n";
  }
  return out;
}

std::string ReadFileOrDie(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  OE_CHECK(f != nullptr) << "cannot open " << path;
  std::string out;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, got);
  }
  std::fclose(f);
  return out;
}

void CheckGolden(const char* file, size_t corpus_index,
                 const std::vector<std::string>& learners) {
  const std::string dump = GoldenDump(corpus_index, learners);
  const char* write_dir = std::getenv("OEBENCH_WRITE_GOLDEN_DIR");
  if (write_dir != nullptr) {
    const std::string path = std::string(write_dir) + "/" + file;
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    std::fwrite(dump.data(), 1, dump.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string golden =
      ReadFileOrDie(std::string(OEBENCH_GOLDEN_DIR) + "/" + file);
  EXPECT_EQ(dump, golden) << file
                          << " diverged from the pre-refactor pinned dump";
}

TEST(GoldenStreams, ClassificationByteIdentical) {
  CheckGolden("golden_stream_cls.txt", 2, {"Naive-NN", "Naive-DT", "ARF"});
}

TEST(GoldenStreams, RegressionByteIdentical) {
  CheckGolden("golden_stream_reg.txt", 20, {"Naive-NN", "Naive-GBDT"});
}

}  // namespace
}  // namespace oebench
