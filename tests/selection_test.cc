#include <gtest/gtest.h>

#include <set>

#include "core/selection.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

/// Builds a synthetic profile without running the full pipeline; only the
/// facet values matter for the selection math.
DatasetProfile MakeProfile(const std::string& name, double drift,
                           double missing, double anomaly, double size) {
  DatasetProfile profile;
  profile.name = name;
  profile.log_instances = size;
  profile.num_features = 10.0;
  profile.num_windows = 40.0;
  profile.is_classification = 0.0;
  profile.missing.row_ratio = missing;
  profile.missing.column_ratio = missing;
  profile.missing.cell_ratio = missing;
  for (const char* det :
       {"hdddm", "kdq_tree", "pca_cd", "ks", "cdbd"}) {
    profile.data_drift.push_back({det, drift, drift, drift / 2, drift / 2});
  }
  for (const char* det : {"ddm", "eddm", "adwin_accuracy", "perm"}) {
    profile.concept_drift.push_back({det, drift, drift, drift / 2,
                                     drift / 2});
  }
  profile.outliers.push_back({"ecod", anomaly, anomaly, {}});
  profile.outliers.push_back({"iforest", anomaly, anomaly, {}});
  return profile;
}

TEST(SelectionTest, PicksOneRepresentativePerCluster) {
  std::vector<DatasetProfile> profiles;
  // Three archetype groups with internal jitter: drifty, missing-heavy,
  // anomalous.
  for (int i = 0; i < 6; ++i) {
    double j = 0.01 * i;
    profiles.push_back(
        MakeProfile("drifty" + std::to_string(i), 0.8 + j, 0.02, 0.02, 4.0));
    profiles.push_back(MakeProfile("missing" + std::to_string(i), 0.05,
                                   0.7 + j, 0.02, 4.0));
    profiles.push_back(MakeProfile("anomalous" + std::to_string(i), 0.05,
                                   0.02, 0.6 + j, 4.0));
  }
  Result<SelectionResult> result = SelectRepresentatives(profiles, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->representatives.size(), 3u);
  EXPECT_EQ(result->assignments.size(), profiles.size());
  EXPECT_EQ(result->embedding.rows(),
            static_cast<int64_t>(profiles.size()));
  EXPECT_EQ(result->embedding.cols(), 15);  // 5 facets x 3 dims

  // The representatives come from three different archetypes.
  std::set<std::string> kinds;
  for (int64_t idx : result->representatives) {
    std::string name = profiles[static_cast<size_t>(idx)].name;
    kinds.insert(name.substr(0, 5));
  }
  EXPECT_EQ(kinds.size(), 3u);

  // Each archetype's members share a cluster.
  for (int g = 0; g < 3; ++g) {
    std::set<int> ids;
    for (size_t i = 0; i < profiles.size(); ++i) {
      if (static_cast<int>(i % 3) == g) {
        ids.insert(result->assignments[i]);
      }
    }
    EXPECT_EQ(ids.size(), 1u);
  }
}

TEST(SelectionTest, NeedsAtLeastKProfiles) {
  std::vector<DatasetProfile> profiles = {
      MakeProfile("a", 0.1, 0.1, 0.1, 4.0)};
  EXPECT_FALSE(SelectRepresentatives(profiles, 5).ok());
}

}  // namespace
}  // namespace oebench
