#ifndef OEBENCH_TESTS_SIMD_SCALAR_HELPER_H_
#define OEBENCH_TESTS_SIMD_SCALAR_HELPER_H_

// Scalar-path mirror of the kernels in src/linalg/simd.h. The matching
// .cc is compiled with -DOEBENCH_SIMD_DISABLE, so the inline-namespace
// dispatch in simd.h resolves to scalar_path there while the rest of
// the test binary (and the library) uses the SIMD path. The
// kernel-equivalence tests call both through these wrappers and assert
// the results are bit-identical.

#include <cstdint>

namespace oebench {
namespace scalar_kernels {

void Axpy(double* dst, const double* src, int64_t n, double a);
void Add(double* dst, const double* src, int64_t n);
void Sub(double* dst, const double* src, int64_t n);
void Scale(double* v, int64_t n, double s);
void Axpy4(double* dst, const double* b0, const double* b1, const double* b2,
           const double* b3, double a0, double a1, double a2, double a3,
           int64_t n);
void GemvAccum(const double* a, const double* w, int64_t rows, int64_t cols,
               int64_t stride, double* out);
double DotSeq(const double* a, const double* b, int64_t n);
double SumSquaresSeq(double init, const double* v, int64_t n);
double SquaredDistanceSeq(const double* a, const double* b, int64_t n);
double NanSquaredDistanceSeq(const double* a, const double* b, int64_t n,
                             int64_t* used);
bool HasNan(const double* v, int64_t n);
void FillNanWith(double* v, int64_t n, double fill);
void FillNanWithRow(double* v, const double* fill, int64_t n);
void AccumSquares(double* dst, const double* g, int64_t n);
void AccumAbs(double* dst, const double* g, int64_t n);
void AccumRowSkipNan(double* sum, double* count, const double* row,
                     int64_t n);
void AccumSqDevRowSkipNan(double* var, double* count, const double* row,
                          const double* mean, int64_t n);
void AccumCovRow(double* cov, const double* row, const double* mean,
                 int64_t n, double di);
void Rotate(double* x, double* y, int64_t n, double c, double s);
void RotateStrided(double* x, double* y, int64_t n, int64_t stride, double c,
                   double s);

}  // namespace scalar_kernels
}  // namespace oebench

#endif  // OEBENCH_TESTS_SIMD_SCALAR_HELPER_H_
