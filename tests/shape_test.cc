// Shape tests: scaled-down versions of the headline benchmark claims,
// pinned as assertions so a regression in any component that would flip
// a paper-level conclusion fails CI — not just a unit somewhere.
// (Absolute losses are not asserted, only the orderings the paper
// reports; see EXPERIMENTS.md.)

#include <gtest/gtest.h>

#include <cmath>

#include "bench/bench_util.h"
#include "core/evaluator.h"
#include "streamgen/representative.h"

namespace oebench {
namespace {

LearnerConfig FastConfig() {
  LearnerConfig config;
  config.epochs = 5;
  return config;
}

double LossOf(const std::string& learner, const PreparedStream& stream) {
  RepeatedResult result = RunRepeated(learner, FastConfig(), stream, 2);
  EXPECT_FALSE(result.not_applicable) << learner;
  return result.loss_mean;
}

TEST(ShapeTest, TreesLeadLowAnomalyClassification) {
  // Table 4 / Finding: tree ensembles lead classification.
  PreparedStream stream = bench::MakePrepared("ELECTRICITY", 0.04);
  double sea_dt = LossOf("SEA-DT", stream);
  double naive_nn = LossOf("Naive-NN", stream);
  EXPECT_LT(sea_dt, naive_nn + 0.02);
}

TEST(ShapeTest, NnFamilyLeadsHighMissingRegression) {
  // Table 4 AIR row: NN family clearly beats plain trees.
  PreparedStream stream = bench::MakePrepared("AIR", 0.05);
  double nn = LossOf("Naive-NN", stream);
  double dt = LossOf("Naive-DT", stream);
  EXPECT_LT(nn, dt);
}

TEST(ShapeTest, NnFamilyLeadsLowMissingRegression) {
  // Table 4 POWER row: Naive-DT trails the NN family badly.
  PreparedStream stream = bench::MakePrepared("POWER", 0.04);
  double nn = LossOf("Naive-NN", stream);
  double dt = LossOf("Naive-DT", stream);
  EXPECT_LT(nn, dt);
}

TEST(ShapeTest, EwcAndLwfTrackNaiveNn) {
  // §6.3: "EWC and LwF have marginal or no improvement on a naive NN".
  PreparedStream stream = bench::MakePrepared("ELECTRICITY", 0.04);
  double naive = LossOf("Naive-NN", stream);
  EXPECT_NEAR(LossOf("EWC", stream), naive, 0.05);
  EXPECT_NEAR(LossOf("LwF", stream), naive, 0.05);
}

TEST(ShapeTest, TreesAreFasterThanNns) {
  // Table 5: decision trees out-throughput the NN family by a lot.
  PreparedStream stream = bench::MakePrepared("ELECTRICITY", 0.04);
  RepeatedResult dt = RunRepeated("Naive-DT", FastConfig(), stream, 1);
  RepeatedResult nn = RunRepeated("Naive-NN", FastConfig(), stream, 1);
  EXPECT_GT(dt.throughput, 3.0 * nn.throughput);
}

TEST(ShapeTest, MemoryOrderingDtBelowNnBelowSea) {
  // Table 6: DT < Naive-NN < SEA-NN (ensemble of five).
  PreparedStream stream = bench::MakePrepared("ELECTRICITY", 0.04);
  RepeatedResult dt = RunRepeated("Naive-DT", FastConfig(), stream, 1);
  RepeatedResult nn = RunRepeated("Naive-NN", FastConfig(), stream, 1);
  RepeatedResult sea = RunRepeated("SEA-NN", FastConfig(), stream, 1);
  EXPECT_LT(dt.peak_memory_bytes, nn.peak_memory_bytes);
  EXPECT_GT(sea.peak_memory_bytes, 3 * nn.peak_memory_bytes);
}

TEST(ShapeTest, DeeperMlpDoesNotHelp) {
  // Figure 13 / Finding 3 on one dataset.
  PreparedStream stream = bench::MakePrepared("POWER", 0.04);
  LearnerConfig shallow = FastConfig();
  shallow.hidden_sizes = {32, 16, 8};
  LearnerConfig deep = FastConfig();
  deep.hidden_sizes = {32, 32, 32, 16, 16, 16, 8};
  double loss_shallow =
      RunRepeated("Naive-NN", shallow, stream, 2).loss_mean;
  double loss_deep = RunRepeated("Naive-NN", deep, stream, 2).loss_mean;
  EXPECT_LT(loss_shallow, loss_deep + 0.02);
}

TEST(ShapeTest, KnnImputationBeatsZeroFillOnAir) {
  // Figure 14 headline on the high-missing stream.
  PipelineOptions knn;
  knn.imputer = "knn";
  PipelineOptions zero;
  zero.imputer = "zero";
  PreparedStream with_knn = bench::MakePrepared("AIR", 0.05, knn);
  PreparedStream with_zero = bench::MakePrepared("AIR", 0.05, zero);
  EXPECT_LT(LossOf("Naive-NN", with_knn),
            LossOf("Naive-NN", with_zero) + 0.01);
}

}  // namespace
}  // namespace oebench
