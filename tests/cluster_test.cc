#include <gtest/gtest.h>

#include <set>

#include "cluster/kmeans.h"
#include "cluster/tsne.h"
#include "common/random.h"
#include "linalg/vector_ops.h"

namespace oebench {
namespace {

/// Three well-separated blobs of 40 points each.
Matrix ThreeBlobs(uint64_t seed, std::vector<int>* labels) {
  Rng rng(seed);
  Matrix data(120, 2);
  labels->resize(120);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int i = 0; i < 120; ++i) {
    int cls = i / 40;
    data.At(i, 0) = centers[cls][0] + rng.Gaussian() * 0.5;
    data.At(i, 1) = centers[cls][1] + rng.Gaussian() * 0.5;
    (*labels)[static_cast<size_t>(i)] = cls;
  }
  return data;
}

TEST(KMeansTest, RecoversBlobPartition) {
  std::vector<int> labels;
  Matrix data = ThreeBlobs(1, &labels);
  KMeans::Options options;
  options.k = 3;
  KMeans kmeans(options);
  Result<KMeansResult> result = kmeans.Fit(data);
  ASSERT_TRUE(result.ok());
  // Every true blob maps to exactly one cluster id.
  for (int blob = 0; blob < 3; ++blob) {
    std::set<int> ids;
    for (int i = blob * 40; i < (blob + 1) * 40; ++i) {
      ids.insert(result->assignments[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(ids.size(), 1u) << "blob " << blob << " split";
  }
  // And distinct blobs map to distinct clusters.
  std::set<int> all_ids(result->assignments.begin(),
                        result->assignments.end());
  EXPECT_EQ(all_ids.size(), 3u);
  EXPECT_LT(result->inertia, 120.0);
}

TEST(KMeansTest, NearestRowPerCentroidIsMemberOfCluster) {
  std::vector<int> labels;
  Matrix data = ThreeBlobs(2, &labels);
  KMeans::Options options;
  options.k = 3;
  KMeans kmeans(options);
  Result<KMeansResult> result = kmeans.Fit(data);
  ASSERT_TRUE(result.ok());
  std::vector<int64_t> nearest =
      KMeans::NearestRowPerCentroid(data, *result);
  ASSERT_EQ(nearest.size(), 3u);
  for (int c = 0; c < 3; ++c) {
    int64_t row = nearest[static_cast<size_t>(c)];
    ASSERT_GE(row, 0);
    EXPECT_EQ(result->assignments[static_cast<size_t>(row)], c);
  }
}

TEST(KMeansTest, RejectsTooFewRows) {
  KMeans::Options options;
  options.k = 5;
  KMeans kmeans(options);
  EXPECT_FALSE(kmeans.Fit(Matrix(3, 2)).ok());
}

TEST(TsneTest, KeepsBlobsSeparated) {
  std::vector<int> labels;
  Matrix data = ThreeBlobs(3, &labels);
  Tsne::Options options;
  options.perplexity = 15.0;
  options.max_iterations = 250;
  Tsne tsne(options);
  Result<Matrix> embedded = tsne.Embed(data);
  ASSERT_TRUE(embedded.ok()) << embedded.status().ToString();
  ASSERT_EQ(embedded->rows(), 120);
  ASSERT_EQ(embedded->cols(), 2);

  // Mean within-blob distance should be far below between-blob distance.
  auto centroid = [&](int blob) {
    std::vector<double> c(2, 0.0);
    for (int i = blob * 40; i < (blob + 1) * 40; ++i) {
      c[0] += embedded->At(i, 0);
      c[1] += embedded->At(i, 1);
    }
    c[0] /= 40;
    c[1] /= 40;
    return c;
  };
  std::vector<std::vector<double>> cs = {centroid(0), centroid(1),
                                         centroid(2)};
  double within = 0.0;
  for (int blob = 0; blob < 3; ++blob) {
    for (int i = blob * 40; i < (blob + 1) * 40; ++i) {
      std::vector<double> p = {embedded->At(i, 0), embedded->At(i, 1)};
      within += std::sqrt(SquaredDistance(p, cs[static_cast<size_t>(blob)]));
    }
  }
  within /= 120.0;
  double between = 0.0;
  int pairs = 0;
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      between += std::sqrt(SquaredDistance(cs[static_cast<size_t>(a)],
                                           cs[static_cast<size_t>(b)]));
      ++pairs;
    }
  }
  between /= pairs;
  EXPECT_GT(between, 2.0 * within);
}

TEST(TsneTest, RejectsOversizedPerplexity) {
  Tsne::Options options;
  options.perplexity = 50.0;
  Tsne tsne(options);
  EXPECT_FALSE(tsne.Embed(Matrix(20, 2)).ok());
}

}  // namespace
}  // namespace oebench
