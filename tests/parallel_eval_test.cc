// The determinism contract of the parallel sweep engine, enforced
// forever: a sweep run serially (1 thread) and a sweep run on 4 workers
// must produce bit-identical results — per_window_loss included — and
// inapplicable (dataset, learner) pairs must short-circuit without a
// single task reaching the pool. Also locks in RunRepeated's seed
// protocol: seeds {base, base+1, base+2} produce exactly the stddev it
// reports.

#include "core/parallel_eval.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/selection.h"
#include "linalg/vector_ops.h"
#include "streamgen/corpus.h"

namespace oebench {
namespace {

/// First `per_task` classification and `per_task` regression corpus
/// entries — a small mixed-task slice of the 55.
std::vector<CorpusEntry> MixedEntries(int per_task) {
  std::vector<CorpusEntry> out;
  int cls = 0;
  int reg = 0;
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.task == TaskType::kClassification && cls < per_task) {
      out.push_back(entry);
      ++cls;
    } else if (entry.task == TaskType::kRegression && reg < per_task) {
      out.push_back(entry);
      ++reg;
    }
  }
  return out;
}

/// Sweep config for fast, fully exercised runs: tiny streams (scale 0
/// clamps to 1200 rows), cheap pipeline, shallow models.
SweepConfig FastConfig(int threads) {
  SweepConfig config;
  config.base_config.seed = 42;
  config.base_config.epochs = 2;
  config.base_config.hidden_sizes = {8};
  config.base_config.tree_max_depth = 6;
  config.base_config.ensemble_size = 3;
  config.repeats = 2;
  config.threads = threads;
  config.scale = 0.0;
  config.pipeline.imputer = "mean";
  return config;
}

void ExpectBitIdentical(const SweepOutcome& serial,
                        const SweepOutcome& parallel) {
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  EXPECT_EQ(serial.tasks_run, parallel.tasks_run);
  EXPECT_EQ(serial.pairs_skipped, parallel.pairs_skipped);
  for (size_t d = 0; d < serial.rows.size(); ++d) {
    const SweepRow& s_row = serial.rows[d];
    const SweepRow& p_row = parallel.rows[d];
    EXPECT_EQ(s_row.dataset, p_row.dataset);
    ASSERT_EQ(s_row.cells.size(), p_row.cells.size());
    for (size_t l = 0; l < s_row.cells.size(); ++l) {
      const SweepCell& s = s_row.cells[l];
      const SweepCell& p = p_row.cells[l];
      SCOPED_TRACE(s_row.dataset + " / " + s.repeated.learner);
      EXPECT_EQ(s.repeated.not_applicable, p.repeated.not_applicable);
      // Exact equality throughout: the contract is bit-identity, not
      // tolerance. (Timing fields are excluded — wall-clock is the one
      // thing threads are supposed to change.)
      EXPECT_EQ(s.repeated.loss_mean, p.repeated.loss_mean);
      EXPECT_EQ(s.repeated.loss_stddev, p.repeated.loss_stddev);
      EXPECT_EQ(s.repeated.peak_memory_bytes, p.repeated.peak_memory_bytes);
      ASSERT_EQ(s.runs.size(), p.runs.size());
      for (size_t r = 0; r < s.runs.size(); ++r) {
        EXPECT_EQ(s.runs[r].mean_loss, p.runs[r].mean_loss);
        EXPECT_EQ(s.runs[r].faded_loss, p.runs[r].faded_loss);
        EXPECT_EQ(s.runs[r].peak_memory_bytes, p.runs[r].peak_memory_bytes);
        ASSERT_EQ(s.runs[r].per_window_loss.size(),
                  p.runs[r].per_window_loss.size());
        for (size_t w = 0; w < s.runs[r].per_window_loss.size(); ++w) {
          EXPECT_EQ(s.runs[r].per_window_loss[w],
                    p.runs[r].per_window_loss[w]);
        }
      }
    }
  }
}

TEST(TaskSeedTest, DependsOnlyOnTaskIdentity) {
  const uint64_t seed = TaskSeed(1, "AIR", "Naive-NN", 0);
  EXPECT_EQ(seed, TaskSeed(1, "AIR", "Naive-NN", 0));
  EXPECT_NE(seed, TaskSeed(2, "AIR", "Naive-NN", 0));
  EXPECT_NE(seed, TaskSeed(1, "POWER", "Naive-NN", 0));
  EXPECT_NE(seed, TaskSeed(1, "AIR", "Naive-DT", 0));
  EXPECT_NE(seed, TaskSeed(1, "AIR", "Naive-NN", 1));
  // Field boundaries matter: moving a character between dataset and
  // learner must change the seed.
  EXPECT_NE(TaskSeed(1, "AB", "C", 0), TaskSeed(1, "A", "BC", 0));
}

TEST(ParallelEvalTest, SerialAndParallelSweepsAreBitIdentical) {
  // 6 datasets x 4 learners; Naive-Bayes is N/A on the three
  // regression datasets, so the skip path is exercised too.
  const std::vector<CorpusEntry> entries = MixedEntries(3);
  ASSERT_EQ(entries.size(), 6u);
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT",
                                             "SEA-DT", "Naive-Bayes"};
  SweepOutcome serial =
      ParallelSweepEntries(entries, learners, FastConfig(1));
  SweepOutcome parallel =
      ParallelSweepEntries(entries, learners, FastConfig(4));
  EXPECT_EQ(serial.pairs_skipped, 3);  // Naive-Bayes x 3 regression
  EXPECT_EQ(serial.tasks_run, (6 * 4 - 3) * 2);
  ExpectBitIdentical(serial, parallel);
  // The contract is non-vacuous: losses are real numbers, windows exist.
  for (const SweepRow& row : serial.rows) {
    for (const SweepCell& cell : row.cells) {
      if (cell.repeated.not_applicable) continue;
      EXPECT_GE(cell.runs.at(0).per_window_loss.size(), 19u);
      EXPECT_TRUE(std::isfinite(cell.repeated.loss_mean));
    }
  }
}

TEST(ParallelEvalTest, ExtractProfilesMatchesSerialExtraction) {
  // The statistic-extraction pass obeys the same contract.
  std::vector<StreamSpec> specs;
  for (const CorpusEntry& entry : MixedEntries(2)) {
    specs.push_back(SpecFromEntry(entry, 0.0));
  }
  Result<std::vector<DatasetProfile>> serial = ExtractProfiles(specs, 1);
  Result<std::vector<DatasetProfile>> parallel = ExtractProfiles(specs, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), specs.size());
  ASSERT_EQ(parallel->size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ((*serial)[i].name, (*parallel)[i].name);
    EXPECT_EQ((*serial)[i].MissingScore(), (*parallel)[i].MissingScore());
    EXPECT_EQ((*serial)[i].DriftScore(), (*parallel)[i].DriftScore());
    EXPECT_EQ((*serial)[i].AnomalyScore(), (*parallel)[i].AnomalyScore());
  }
}

TEST(ParallelEvalTest, NotApplicablePairsNeverReachThePool) {
  // ARF and Naive-Bayes are classification-only; on an all-regression
  // slice the sweep must run zero tasks and mark every cell N/A.
  std::vector<CorpusEntry> entries;
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.task == TaskType::kRegression) {
      entries.push_back(entry);
      if (entries.size() == 2) break;
    }
  }
  SweepOutcome outcome = ParallelSweepEntries(
      entries, {"ARF", "Naive-Bayes"}, FastConfig(4));
  EXPECT_EQ(outcome.tasks_run, 0);
  EXPECT_EQ(outcome.pairs_skipped, 4);
  for (const SweepRow& row : outcome.rows) {
    for (const SweepCell& cell : row.cells) {
      EXPECT_TRUE(cell.repeated.not_applicable);
      EXPECT_TRUE(cell.runs.empty());
    }
  }
}

class RunRepeatedSeedTest : public ::testing::Test {
 protected:
  static PreparedStream MakeStream(TaskType task) {
    for (const CorpusEntry& entry : Corpus()) {
      if (entry.task != task) continue;
      StreamSpec spec = SpecFromEntry(entry, 0.0);
      Result<GeneratedStream> stream = GenerateStream(spec);
      EXPECT_TRUE(stream.ok());
      PipelineOptions options;
      options.imputer = "mean";
      Result<PreparedStream> prepared = PrepareStream(*stream, options);
      EXPECT_TRUE(prepared.ok());
      return std::move(*prepared);
    }
    ADD_FAILURE() << "no corpus entry with the requested task";
    return PreparedStream{};
  }
};

TEST_F(RunRepeatedSeedTest, ReportedStddevComesFromSeedsBasePlusRep) {
  PreparedStream stream = MakeStream(TaskType::kClassification);
  LearnerConfig config;
  config.seed = 5;
  config.epochs = 2;
  config.hidden_sizes = {8};
  // Replay the documented protocol by hand: fresh learner per repeat,
  // seeds {base, base+1, base+2}.
  std::vector<double> losses;
  for (int rep = 0; rep < 3; ++rep) {
    LearnerConfig rep_config = config;
    rep_config.seed = config.seed + static_cast<uint64_t>(rep);
    Result<std::unique_ptr<StreamLearner>> learner = MakeLearner(
        "Naive-NN", rep_config, stream.task, stream.num_classes);
    ASSERT_TRUE(learner.ok());
    losses.push_back(RunPrequential(learner->get(), stream).mean_loss);
  }
  RepeatedResult repeated = RunRepeated("Naive-NN", config, stream, 3);
  EXPECT_FALSE(repeated.not_applicable);
  EXPECT_EQ(repeated.loss_mean, Mean(losses));
  EXPECT_EQ(repeated.loss_stddev, StdDev(losses));
  // The seeds genuinely matter: an NN initialised with three different
  // seeds does not land on three identical losses.
  EXPECT_GT(repeated.loss_stddev, 0.0);
}

TEST_F(RunRepeatedSeedTest, NotApplicableShortCircuits) {
  PreparedStream stream = MakeStream(TaskType::kRegression);
  LearnerConfig config;
  RepeatedResult repeated = RunRepeated("ARF", config, stream, 3);
  EXPECT_TRUE(repeated.not_applicable);
  EXPECT_EQ(repeated.loss_mean, 0.0);
  EXPECT_EQ(repeated.throughput, 0.0);
}

}  // namespace
}  // namespace oebench
