// Tests for the extension detectors (FW-DDM, LFR, MD3, EIA — the
// remaining rows of the paper's Appendix Table 8) and extension learners
// (MAS, SI, DriftReset).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/drift_reset.h"
#include "core/evaluator.h"
#include "drift/eia.h"
#include "drift/fw_ddm.h"
#include "drift/lfr.h"
#include "drift/md3.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

TEST(FwDdmTest, FiresOnErrorJumpQuietWhenStable) {
  FwDdm detector;
  Rng rng(1);
  int early = 0;
  for (int i = 0; i < 2000; ++i) {
    if (detector.Update(rng.Bernoulli(0.05) ? 1.0 : 0.0) ==
        DriftSignal::kDrift) {
      ++early;
    }
  }
  EXPECT_LE(early, 3);
  bool fired = false;
  for (int i = 0; i < 1500; ++i) {
    if (detector.Update(rng.Bernoulli(0.6) ? 1.0 : 0.0) ==
        DriftSignal::kDrift) {
      fired = true;
      break;
    }
  }
  EXPECT_TRUE(fired);
}

TEST(FwDdmTest, RecentErrorsDominateTheFuzzyWindow) {
  // After a long clean run, a short error burst must raise the weighted
  // rate faster than a plain full-history DDM average would.
  FwDdm detector(/*window_size=*/200);
  for (int i = 0; i < 1000; ++i) detector.Update(0.0);
  DriftSignal last = DriftSignal::kStable;
  int steps = 0;
  while (last != DriftSignal::kDrift && steps < 120) {
    last = detector.Update(1.0);
    ++steps;
  }
  EXPECT_EQ(last, DriftSignal::kDrift);
  EXPECT_LT(steps, 120);
}

TEST(LfrTest, DetectsRateShiftOnOneClassOnly) {
  // Classifier predicts well on both classes, then starts failing on
  // positives only: overall error moves little but TPR collapses.
  Lfr detector;
  Rng rng(2);
  int early = 0;
  for (int i = 0; i < 3000; ++i) {
    bool actual = rng.Bernoulli(0.2);  // positives are the minority
    bool predicted = rng.Bernoulli(0.95) ? actual : !actual;
    if (detector.Update(predicted, actual) == DriftSignal::kDrift) {
      ++early;
    }
  }
  EXPECT_LE(early, 3);
  bool fired = false;
  for (int i = 0; i < 3000 && !fired; ++i) {
    bool actual = rng.Bernoulli(0.2);
    bool predicted = actual ? rng.Bernoulli(0.3)   // TPR collapsed
                            : rng.Bernoulli(0.95) ? false : true;
    fired = detector.Update(predicted, actual) == DriftSignal::kDrift;
  }
  EXPECT_TRUE(fired);
}

TEST(LfrTest, RatesTrackConfusionMatrix) {
  Lfr detector;
  // Perfect classifier for a while: all four rates head to 1.
  for (int i = 0; i < 500; ++i) {
    detector.Update(i % 2 == 0, i % 2 == 0);
  }
  for (double rate : detector.rates()) {
    EXPECT_GT(rate, 0.9);
  }
}

TEST(Md3Test, FiresWhenMarginDensityRises) {
  Md3 detector;
  Rng rng(3);
  int early = 0;
  // Confident regime: scores far from the boundary.
  for (int i = 0; i < 2000; ++i) {
    double score = (rng.Bernoulli(0.5) ? 1.0 : -1.0) *
                   rng.Uniform(0.8, 2.0);
    if (detector.Update(score) == DriftSignal::kDrift) ++early;
  }
  EXPECT_LE(early, 2);
  // Uncertain regime: mass moves inside the margin — no labels needed.
  bool fired = false;
  for (int i = 0; i < 2000 && !fired; ++i) {
    double score = rng.Uniform(-0.4, 0.4);
    fired = detector.Update(score) == DriftSignal::kDrift;
  }
  EXPECT_TRUE(fired);
}

TEST(EiaTest, SignalsWhenPersistenceOvertakesModel) {
  Eia detector;
  std::vector<double> model_good(50, 0.1);
  std::vector<double> baseline(50, 0.5);
  EXPECT_EQ(detector.Update(model_good, baseline), DriftSignal::kStable);
  EXPECT_EQ(detector.Update(model_good, baseline), DriftSignal::kStable);
  // Concept changed: the model's error jumps above the naive baseline.
  std::vector<double> model_bad(50, 0.9);
  EXPECT_EQ(detector.Update(model_bad, baseline), DriftSignal::kDrift);
  // Staying underwater is a warning, not a fresh drift.
  EXPECT_EQ(detector.Update(model_bad, baseline), DriftSignal::kWarning);
}

TEST(EiaTest, PersistenceLossesUsePreviousTarget) {
  std::vector<double> losses =
      Eia::PersistenceLosses({2.0, 3.0, 3.0}, 1.0, true);
  ASSERT_EQ(losses.size(), 3u);
  EXPECT_DOUBLE_EQ(losses[0], 1.0);  // (2-1)^2
  EXPECT_DOUBLE_EQ(losses[1], 1.0);  // (3-2)^2
  EXPECT_DOUBLE_EQ(losses[2], 0.0);
  // Without a previous target the first loss is zero.
  EXPECT_DOUBLE_EQ(Eia::PersistenceLosses({5.0}, 0.0, false)[0], 0.0);
}

PreparedStream MakeStream(TaskType task, DriftPattern pattern,
                          uint64_t seed) {
  StreamSpec spec;
  spec.name = "ext";
  spec.task = task;
  spec.num_classes = 3;
  spec.num_instances = 1600;
  spec.num_numeric_features = 5;
  spec.window_size = 200;
  spec.drift_pattern = pattern;
  spec.drift_magnitude = pattern == DriftPattern::kNone ? 0.0 : 2.0;
  spec.seed = seed;
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  EXPECT_TRUE(prepared.ok());
  return *prepared;
}

class ExtensionLearnerTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(ExtensionLearnerTest, TracksItsNaiveCounterpart) {
  LearnerConfig config;
  config.epochs = 3;
  config.hidden_sizes = {16, 8};
  // The extension learners are variations on a naive base (EWC-style
  // regularisers on Naive-NN, detect-and-reset around Naive-NN/DT);
  // their loss must stay within a modest factor of that base on a
  // gradually drifting stream — the absolute level depends on the drift
  // magnitude, so the base *is* the yardstick.
  const std::string base =
      GetParam() == "DriftReset-DT" ? "Naive-DT" : "Naive-NN";
  for (TaskType task :
       {TaskType::kClassification, TaskType::kRegression}) {
    PreparedStream stream = MakeStream(task, DriftPattern::kGradual, 50);
    Result<std::unique_ptr<StreamLearner>> learner =
        MakeLearner(GetParam(), config, stream.task, stream.num_classes);
    ASSERT_TRUE(learner.ok()) << GetParam();
    EvalResult result = RunPrequential(learner->get(), stream);
    Result<std::unique_ptr<StreamLearner>> baseline =
        MakeLearner(base, config, stream.task, stream.num_classes);
    ASSERT_TRUE(baseline.ok());
    EvalResult base_result = RunPrequential(baseline->get(), stream);
    EXPECT_LT(result.mean_loss, base_result.mean_loss * 1.2 + 0.02)
        << GetParam() << " vs " << base;
    EXPECT_GT(result.peak_memory_bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Extensions, ExtensionLearnerTest,
                         ::testing::Values("MAS", "SI", "DriftReset-NN",
                                           "DriftReset-DT"),
                         [](const ::testing::TestParamInfo<std::string>&
                                info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(DriftResetTest, ResetsOnAbruptDriftNotOnStationary) {
  LearnerConfig config;
  config.epochs = 3;
  config.hidden_sizes = {8};
  {
    PreparedStream drifting =
        MakeStream(TaskType::kRegression, DriftPattern::kAbrupt, 51);
    DriftResetLearner learner("Naive-NN", config, /*ph_lambda=*/0.2);
    RunPrequential(&learner, drifting);
    EXPECT_GE(learner.resets(), 1);
  }
  {
    PreparedStream stationary =
        MakeStream(TaskType::kRegression, DriftPattern::kNone, 52);
    DriftResetLearner learner("Naive-NN", config, /*ph_lambda=*/0.2);
    RunPrequential(&learner, stationary);
    EXPECT_LE(learner.resets(), 1);
  }
}

TEST(OzaBagTest, LearnsAndStaysClassificationOnly) {
  PreparedStream stream =
      MakeStream(TaskType::kClassification, DriftPattern::kGradual, 53);
  LearnerConfig config;
  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner("OzaBag", config, stream.task, stream.num_classes);
  ASSERT_TRUE(learner.ok());
  EvalResult result = RunPrequential(learner->get(), stream);
  EXPECT_LT(result.mean_loss, 0.5);  // 3 classes, chance = 0.67
  EXPECT_FALSE(
      MakeLearner("OzaBag", config, TaskType::kRegression, 2).ok());
}

TEST(ExtendedNamesTest, FactoryCoversAllExtendedNames) {
  LearnerConfig config;
  for (const std::string& name :
       ExtendedLearnerNames(TaskType::kClassification)) {
    EXPECT_TRUE(
        MakeLearner(name, config, TaskType::kClassification, 3).ok())
        << name;
  }
  for (const std::string& name :
       ExtendedLearnerNames(TaskType::kRegression)) {
    EXPECT_TRUE(
        MakeLearner(name, config, TaskType::kRegression, 2).ok())
        << name;
  }
}

}  // namespace
}  // namespace oebench
