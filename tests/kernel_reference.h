#ifndef OEBENCH_TESTS_KERNEL_REFERENCE_H_
#define OEBENCH_TESTS_KERNEL_REFERENCE_H_

// Verbatim pre-SIMD-refactor implementations of the converted hot
// kernels. The differential kernel-equivalence suite compares these
// bit-for-bit (EncodeDouble) against the blocked/vectorized versions,
// and bench_micro_kernels.cc times ref/opt pairs in one process so the
// speedup ratios are robust on noisy machines. Do not "improve" this
// file: its value is that the arithmetic is exactly what shipped before
// the refactor.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace oebench {
namespace kernel_ref {

inline Matrix RefMatMul(const Matrix& lhs, const Matrix& rhs) {
  Matrix out(lhs.rows(), rhs.cols());
  for (int64_t i = 0; i < lhs.rows(); ++i) {
    const double* a_row = lhs.Row(i);
    double* o_row = out.Row(i);
    for (int64_t k = 0; k < lhs.cols(); ++k) {
      double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = rhs.Row(k);
      for (int64_t j = 0; j < rhs.cols(); ++j) {
        o_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

inline void RefAddInPlace(Matrix* m, const Matrix& other, double s) {
  for (int64_t i = 0; i < m->size(); ++i) {
    m->data()[static_cast<size_t>(i)] +=
        s * other.data()[static_cast<size_t>(i)];
  }
}

inline double RefFrobeniusNorm(const Matrix& m) {
  double sum = 0.0;
  for (double v : m.data()) sum += v * v;
  return std::sqrt(sum);
}

inline std::vector<double> RefColumnMeans(const Matrix& m) {
  std::vector<double> mean(static_cast<size_t>(m.cols()), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(m.cols()), 0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const double* row = m.Row(r);
    for (int64_t c = 0; c < m.cols(); ++c) {
      if (!std::isnan(row[c])) {
        mean[static_cast<size_t>(c)] += row[c];
        ++count[static_cast<size_t>(c)];
      }
    }
  }
  for (int64_t c = 0; c < m.cols(); ++c) {
    size_t i = static_cast<size_t>(c);
    mean[i] = count[i] > 0 ? mean[i] / static_cast<double>(count[i]) : 0.0;
  }
  return mean;
}

inline std::vector<double> RefColumnStdDevs(const Matrix& m) {
  std::vector<double> mean = RefColumnMeans(m);
  std::vector<double> var(static_cast<size_t>(m.cols()), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(m.cols()), 0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    const double* row = m.Row(r);
    for (int64_t c = 0; c < m.cols(); ++c) {
      if (!std::isnan(row[c])) {
        double d = row[c] - mean[static_cast<size_t>(c)];
        var[static_cast<size_t>(c)] += d * d;
        ++count[static_cast<size_t>(c)];
      }
    }
  }
  for (int64_t c = 0; c < m.cols(); ++c) {
    size_t i = static_cast<size_t>(c);
    var[i] = count[i] > 0 ? std::sqrt(var[i] / static_cast<double>(count[i]))
                          : 0.0;
  }
  return var;
}

inline double RefNanEuclideanDistance(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  double sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) continue;
    double d = a[i] - b[i];
    sum += d * d;
    ++used;
  }
  if (used == 0) return std::numeric_limits<double>::infinity();
  double scale = static_cast<double>(a.size()) / static_cast<double>(used);
  return std::sqrt(scale * sum);
}

/// The pre-refactor KnnImputer::Transform, as a free function over the
/// fitted state (reference rows + fallback column means).
inline void RefKnnImpute(Matrix* data, const Matrix& reference,
                         const std::vector<double>& fallback_means, int k) {
  const int64_t d = data->cols();
  std::vector<double> query(static_cast<size_t>(d));
  for (int64_t r = 0; r < data->rows(); ++r) {
    double* row = data->Row(r);
    bool has_missing = false;
    for (int64_t c = 0; c < d; ++c) {
      if (std::isnan(row[c])) {
        has_missing = true;
        break;
      }
    }
    if (!has_missing) continue;
    std::copy(row, row + d, query.begin());
    std::vector<std::pair<double, int64_t>> dist;
    dist.reserve(static_cast<size_t>(reference.rows()));
    for (int64_t i = 0; i < reference.rows(); ++i) {
      double dd = RefNanEuclideanDistance(query, reference.RowVector(i));
      if (std::isfinite(dd)) dist.emplace_back(dd, i);
    }
    std::sort(dist.begin(), dist.end());
    for (int64_t c = 0; c < d; ++c) {
      if (!std::isnan(row[c])) continue;
      double sum = 0.0;
      int found = 0;
      for (const auto& [dd, idx] : dist) {
        (void)dd;
        double v = reference.At(idx, c);
        if (std::isnan(v)) continue;
        sum += v;
        if (++found == k) break;
      }
      row[c] =
          found > 0 ? sum / found : fallback_means[static_cast<size_t>(c)];
      if (std::isnan(row[c])) row[c] = 0.0;
    }
  }
}

/// The pre-refactor per-(feature,class) Gaussian estimator (AoS layout)
/// with its Welford update.
struct RefGaussianStat {
  double weight = 0.0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;

  void Add(double v, double w) {
    if (weight <= 0.0) {
      min = v;
      max = v;
      mean = v;
      m2 = 0.0;
      weight = w;
      return;
    }
    min = std::min(min, v);
    max = std::max(max, v);
    double new_weight = weight + w;
    double delta = v - mean;
    mean += delta * w / new_weight;
    m2 += w * delta * (v - mean);
    weight = new_weight;
  }
};

/// The pre-refactor leaf statistics update: stats[feature][class].
inline void RefAccumulateStats(
    std::vector<std::vector<RefGaussianStat>>* stats, const double* row,
    int64_t dim, int label, double weight) {
  for (int64_t f = 0; f < dim; ++f) {
    (*stats)[static_cast<size_t>(f)][static_cast<size_t>(label)].Add(row[f],
                                                                     weight);
  }
}

/// The pre-refactor Mlp forward pass over explicit parameters.
inline std::vector<double> RefMlpForward(
    const std::vector<Matrix>& weights,
    const std::vector<std::vector<double>>& biases, const double* row,
    int64_t dim) {
  std::vector<double> act(row, row + dim);
  for (size_t l = 0; l < weights.size(); ++l) {
    const Matrix& w = weights[l];
    const std::vector<double>& b = biases[l];
    std::vector<double> next(static_cast<size_t>(w.cols()), 0.0);
    for (int64_t i = 0; i < w.rows(); ++i) {
      double a = act[static_cast<size_t>(i)];
      if (a == 0.0) continue;
      const double* wrow = w.Row(i);
      for (int64_t j = 0; j < w.cols(); ++j) {
        next[static_cast<size_t>(j)] += a * wrow[j];
      }
    }
    bool last = (l + 1 == weights.size());
    for (int64_t j = 0; j < w.cols(); ++j) {
      double v = next[static_cast<size_t>(j)] + b[static_cast<size_t>(j)];
      next[static_cast<size_t>(j)] = last ? v : std::max(v, 0.0);
    }
    act = std::move(next);
  }
  return act;
}

/// The pre-refactor Jacobi eigen solver (row-major At() walks, direct
/// eigenvector accumulation).
struct RefEigenDecomposition {
  std::vector<double> values;
  Matrix vectors;
};

inline RefEigenDecomposition RefSymmetricEigen(const Matrix& a_in,
                                               int max_sweeps = 64,
                                               double tol = 1e-12) {
  const int64_t n = a_in.rows();
  Matrix a = a_in;
  Matrix v = Matrix::Identity(n);

  auto off_diag_norm = [&a, n]() {
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) sum += a.At(i, j) * a.At(i, j);
    }
    return std::sqrt(sum);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() < tol) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = a.At(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double app = a.At(p, p);
        double aqq = a.At(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (int64_t k = 0; k < n; ++k) {
          double akp = a.At(k, p);
          double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          double apk = a.At(p, k);
          double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          double vkp = v.At(k, p);
          double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&a](int64_t i, int64_t j) {
    return a.At(i, i) > a.At(j, j);
  });

  RefEigenDecomposition out;
  out.values.resize(static_cast<size_t>(n));
  out.vectors = Matrix(n, n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t src = order[static_cast<size_t>(i)];
    out.values[static_cast<size_t>(i)] = a.At(src, src);
    for (int64_t k = 0; k < n; ++k) out.vectors.At(k, i) = v.At(k, src);
  }
  return out;
}

inline std::vector<double> RefSolveLinearSystem(Matrix a,
                                                std::vector<double> b,
                                                double pivot_tol = 1e-12) {
  const int64_t n = a.rows();
  for (int64_t col = 0; col < n; ++col) {
    int64_t pivot = col;
    double best = std::abs(a.At(col, col));
    for (int64_t r = col + 1; r < n; ++r) {
      double v = std::abs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < pivot_tol) {
      return std::vector<double>(static_cast<size_t>(n), 0.0);
    }
    if (pivot != col) {
      for (int64_t c = 0; c < n; ++c) {
        std::swap(a.At(pivot, c), a.At(col, c));
      }
      std::swap(b[static_cast<size_t>(pivot)], b[static_cast<size_t>(col)]);
    }
    double inv = 1.0 / a.At(col, col);
    for (int64_t r = col + 1; r < n; ++r) {
      double factor = a.At(r, col) * inv;
      if (factor == 0.0) continue;
      for (int64_t c = col; c < n; ++c) {
        a.At(r, c) -= factor * a.At(col, c);
      }
      b[static_cast<size_t>(r)] -= factor * b[static_cast<size_t>(col)];
    }
  }
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (int64_t r = n - 1; r >= 0; --r) {
    double sum = b[static_cast<size_t>(r)];
    for (int64_t c = r + 1; c < n; ++c) {
      sum -= a.At(r, c) * x[static_cast<size_t>(c)];
    }
    x[static_cast<size_t>(r)] = sum / a.At(r, r);
  }
  return x;
}

/// The pre-refactor covariance accumulation from Pca::Fit (upper
/// triangle + mirror, n-1 normalisation).
inline Matrix RefCovarianceMatrix(const Matrix& data,
                                  const std::vector<double>& mean) {
  const int64_t n = data.rows();
  const int64_t d = data.cols();
  Matrix cov(d, d);
  for (int64_t r = 0; r < n; ++r) {
    const double* row = data.Row(r);
    for (int64_t i = 0; i < d; ++i) {
      double di = row[i] - mean[static_cast<size_t>(i)];
      for (int64_t j = i; j < d; ++j) {
        cov.At(i, j) += di * (row[j] - mean[static_cast<size_t>(j)]);
      }
    }
  }
  double denom = static_cast<double>(n - 1);
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = i; j < d; ++j) {
      cov.At(i, j) /= denom;
      cov.At(j, i) = cov.At(i, j);
    }
  }
  return cov;
}

}  // namespace kernel_ref
}  // namespace oebench

#endif  // OEBENCH_TESTS_KERNEL_REFERENCE_H_
