// Probe TU for tests/check_vectorization.sh: forces codegen of
// representative OE_SIMD_LOOP kernels so the compiler's vectorization
// report must mention at least one vectorized loop. Compiled
// standalone by the script, never linked into anything.

#include "linalg/simd.h"

void ProbeAxpy(double* dst, const double* src, std::int64_t n, double a) {
  oebench::simd::Axpy(dst, src, n, a);
}

void ProbeFillNan(double* v, std::int64_t n, double fill) {
  oebench::simd::FillNanWith(v, n, fill);
}

void ProbeRotate(double* x, double* y, std::int64_t n, double c, double s) {
  oebench::simd::Rotate(x, y, n, c, s);
}
