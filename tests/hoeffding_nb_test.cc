// Tests of the naive-Bayes leaf refinement (VFDT-NB) and the OzaBag /
// ARF interaction with it.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/oza_bag.h"
#include "models/hoeffding_tree.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

/// Streams blob samples into a tree and returns its late-stream accuracy.
double LateAccuracy(LeafPrediction leaf_mode, uint64_t seed) {
  HoeffdingTreeConfig config;
  config.num_classes = 2;
  config.leaf_prediction = leaf_mode;
  // A large grace period keeps the tree a single leaf for a while, which
  // is exactly where NB leaves should shine over majority voting.
  config.grace_period = 400;
  HoeffdingTree tree(config, seed);
  Rng rng(seed + 1);
  int correct = 0;
  int total = 0;
  for (int i = 0; i < 1200; ++i) {
    int cls = static_cast<int>(rng.UniformInt(2));
    double row[2] = {cls == 0 ? -1.5 + rng.Gaussian() * 0.8
                              : 1.5 + rng.Gaussian() * 0.8,
                     rng.Gaussian()};
    if (i > 100) {
      ++total;
      if (tree.PredictClass(row, 2) == cls) ++correct;
    }
    tree.Learn(row, 2, cls);
  }
  return static_cast<double>(correct) / total;
}

TEST(HoeffdingNbTest, NbLeavesBeatMajorityInYoungLeaves) {
  double nb = LateAccuracy(LeafPrediction::kNaiveBayes, 7);
  double majority = LateAccuracy(LeafPrediction::kMajorityClass, 7);
  // With one big leaf, majority voting is near 50% while NB uses the
  // per-class Gaussians.
  EXPECT_GT(nb, 0.85);
  EXPECT_GT(nb, majority);
}

TEST(HoeffdingNbTest, NbProbabilitiesNormalised) {
  HoeffdingTreeConfig config;
  config.num_classes = 3;
  config.leaf_prediction = LeafPrediction::kNaiveBayes;
  HoeffdingTree tree(config, 9);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    double row[2] = {rng.Gaussian(), rng.Gaussian()};
    tree.Learn(row, 2, static_cast<int>(rng.UniformInt(3)));
  }
  double row[2] = {0.3, -0.2};
  std::vector<double> proba = tree.PredictProba(row, 2);
  double sum = 0.0;
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(OzaBagBehaviorTest, EnsembleBeatsSingleTreeOnHardStream) {
  StreamSpec spec;
  spec.name = "ozabag";
  spec.task = TaskType::kClassification;
  spec.num_classes = 4;
  spec.num_instances = 3000;
  spec.num_numeric_features = 8;
  spec.window_size = 250;
  spec.noise_level = 0.3;
  spec.seed = 11;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  ASSERT_TRUE(prepared.ok());

  LearnerConfig big;
  big.ensemble_size = 10;
  OzaBagLearner ensemble(big);
  EvalResult ens = RunPrequential(&ensemble, *prepared);

  LearnerConfig one;
  one.ensemble_size = 1;
  OzaBagLearner single(one);
  EvalResult solo = RunPrequential(&single, *prepared);
  EXPECT_LE(ens.mean_loss, solo.mean_loss + 0.02);
  EXPECT_LT(ens.mean_loss, 0.5);
}

}  // namespace
}  // namespace oebench
