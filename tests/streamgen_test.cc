#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "streamgen/corpus.h"
#include "streamgen/representative.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

TEST(StreamGeneratorTest, ShapeMatchesSpec) {
  StreamSpec spec;
  spec.name = "shape";
  spec.num_instances = 2000;
  spec.num_numeric_features = 6;
  spec.num_categorical_features = 2;
  spec.categories_per_feature = 3;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->table.num_rows(), 2000);
  // 6 numeric + 2 categorical + target.
  EXPECT_EQ(stream->table.num_columns(), 9);
  EXPECT_TRUE(stream->table.ColumnIndex("target").ok());
  EXPECT_EQ(stream->table.column(6).type(), ColumnType::kCategorical);
  EXPECT_EQ(stream->table.column(6).num_categories(), 3);
}

TEST(StreamGeneratorTest, DeterministicForSeed) {
  StreamSpec spec;
  spec.name = "det";
  spec.num_instances = 500;
  spec.num_numeric_features = 4;
  spec.seed = 123;
  Result<GeneratedStream> a = GenerateStream(spec);
  Result<GeneratedStream> b = GenerateStream(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->table.column(0).numeric_values(),
            b->table.column(0).numeric_values());
  spec.seed = 124;
  Result<GeneratedStream> c = GenerateStream(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->table.column(0).numeric_values(),
            c->table.column(0).numeric_values());
}

TEST(StreamGeneratorTest, MissingRateRealized) {
  StreamSpec spec;
  spec.name = "missing";
  spec.num_instances = 4000;
  spec.num_numeric_features = 5;
  spec.base_missing_rate = 0.1;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  int64_t missing = 0;
  for (int j = 0; j < 5; ++j) {
    missing += stream->table.column(j).CountMissing();
  }
  double ratio = static_cast<double>(missing) / (4000.0 * 5.0);
  EXPECT_NEAR(ratio, 0.1, 0.02);
}

TEST(StreamGeneratorTest, DropoutCreatesIncrementalFeature) {
  StreamSpec spec;
  spec.name = "dropout";
  spec.num_instances = 2000;
  spec.num_numeric_features = 4;
  spec.dropouts.push_back({0, 0.0, 0.5, 1.0});
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  const Column& col = stream->table.column(0);
  // First half entirely missing, second half present.
  for (int64_t r = 0; r < 900; ++r) EXPECT_TRUE(col.IsMissing(r));
  int64_t missing_late = 0;
  for (int64_t r = 1100; r < 2000; ++r) {
    if (col.IsMissing(r)) ++missing_late;
  }
  EXPECT_EQ(missing_late, 0);
}

TEST(StreamGeneratorTest, AnomalyEventsRecorded) {
  StreamSpec spec;
  spec.name = "anomaly";
  spec.num_instances = 2000;
  spec.num_numeric_features = 4;
  spec.anomaly_events.push_back({0.4, 0.5, 1.0, 1, 8.0});
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  EXPECT_GE(stream->true_outlier_rows.size(), 150u);
  for (int64_t row : stream->true_outlier_rows) {
    EXPECT_GE(row, 2000 * 4 / 10);
    EXPECT_LT(row, 2000 * 5 / 10 + 1);
  }
  // Anomalous rows carry a visibly shifted feature 1.
  double normal_mean = 0.0;
  int64_t normal_count = 0;
  std::set<int64_t> outlier_set(stream->true_outlier_rows.begin(),
                                stream->true_outlier_rows.end());
  const Column& f1 = stream->table.column(1);
  for (int64_t r = 0; r < 700; ++r) {
    normal_mean += f1.NumericAt(r);
    ++normal_count;
  }
  normal_mean /= static_cast<double>(normal_count);
  for (int64_t row : stream->true_outlier_rows) {
    EXPECT_GT(f1.NumericAt(row), normal_mean + 3.0);
  }
}

TEST(StreamGeneratorTest, AbruptDriftRecordsSwitchRow) {
  StreamSpec spec;
  spec.name = "abrupt";
  spec.num_instances = 2000;
  spec.num_numeric_features = 4;
  spec.drift_pattern = DriftPattern::kAbrupt;
  spec.drift_magnitude = 2.0;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(stream->true_drift_rows.size(), 1u);
  EXPECT_EQ(stream->true_drift_rows[0], 1000);
}

TEST(StreamGeneratorTest, ClassificationTargetsInRange) {
  StreamSpec spec;
  spec.name = "cls";
  spec.task = TaskType::kClassification;
  spec.num_classes = 4;
  spec.num_instances = 3000;
  spec.num_numeric_features = 6;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<int64_t> target_idx = stream->table.ColumnIndex("target");
  ASSERT_TRUE(target_idx.ok());
  std::set<int> seen;
  for (double v : stream->table.column(*target_idx).numeric_values()) {
    int cls = static_cast<int>(v);
    EXPECT_GE(cls, 0);
    EXPECT_LT(cls, 4);
    seen.insert(cls);
  }
  EXPECT_GE(seen.size(), 3u);  // all (or nearly all) classes appear
}

TEST(StreamGeneratorTest, RejectsDegenerateSpecs) {
  StreamSpec spec;
  spec.num_instances = 5;
  EXPECT_FALSE(GenerateStream(spec).ok());
  spec.num_instances = 100;
  spec.num_numeric_features = 1;
  EXPECT_FALSE(GenerateStream(spec).ok());
}

TEST(CorpusTest, Has55Entries) {
  EXPECT_EQ(Corpus().size(), 55u);
  int classification = 0;
  std::set<std::string> names;
  for (const CorpusEntry& entry : Corpus()) {
    names.insert(entry.name);
    if (entry.task == TaskType::kClassification) ++classification;
    EXPECT_GE(entry.instances, 5000) << entry.name;  // selection criterion 1
    EXPECT_GE(entry.features + entry.categorical_features, 5)
        << entry.name;  // selection criterion 2
  }
  EXPECT_EQ(names.size(), 55u) << "duplicate corpus names";
  EXPECT_EQ(classification, 20);
}

TEST(CorpusTest, SpecScalingClampsRows) {
  const CorpusEntry* bitcoin = nullptr;
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.name == "bitcoin_heist") bitcoin = &entry;
  }
  ASSERT_NE(bitcoin, nullptr);
  StreamSpec tiny = SpecFromEntry(*bitcoin, 1e-9);
  EXPECT_EQ(tiny.num_instances, 1200);
  StreamSpec huge = SpecFromEntry(*bitcoin, 1.0);
  EXPECT_EQ(huge.num_instances, 40000);
  EXPECT_GE(huge.window_size, 30);
}

TEST(CorpusTest, SeedSaltChangesSeed) {
  const CorpusEntry& entry = Corpus()[0];
  EXPECT_NE(SpecFromEntry(entry, 0.1, 0).seed,
            SpecFromEntry(entry, 0.1, 1).seed);
}

TEST(RepresentativeTest, FiveTable3Datasets) {
  const auto& infos = RepresentativeDatasets();
  ASSERT_EQ(infos.size(), 5u);
  EXPECT_EQ(infos[0].short_name, "ROOM");
  EXPECT_EQ(infos[3].short_name, "AIR");
  std::vector<StreamSpec> specs = RepresentativeSpecs(0.05);
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].task, TaskType::kClassification);
  EXPECT_EQ(specs[3].task, TaskType::kRegression);
  // AIR is the high-missing-value representative.
  EXPECT_GT(specs[3].base_missing_rate, 0.05);
  EXPECT_FALSE(specs[3].dropouts.empty());
  // POWER is the high-drift representative.
  EXPECT_GT(specs[4].drift_magnitude, 1.5);
}

TEST(RepresentativeTest, GeneratedStreamsAreUsable) {
  for (const StreamSpec& spec : RepresentativeSpecs(0.03)) {
    Result<GeneratedStream> stream = GenerateStream(spec);
    ASSERT_TRUE(stream.ok()) << spec.name;
    EXPECT_GE(stream->table.num_rows(), 1200) << spec.name;
  }
}

}  // namespace
}  // namespace oebench
