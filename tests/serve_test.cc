// Online-serving subsystem units: SPSC ring buffer (FIFO, wrap-around,
// a two-thread stress pass), StreamSession record-to-window
// bookkeeping, ServeEngine scheduling/backpressure, load-generator
// determinism, histogram quantile estimation, and oebench_serve CLI
// death tests (exec'd via OEBENCH_SERVE_BIN, mirroring the
// sweep_fault_test.cc idiom).

#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/io_env.h"
#include "common/metrics.h"
#include "core/evaluator.h"
#include "serve/load_gen.h"
#include "serve/ring_buffer.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/timer_wheel.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"

namespace oebench {
namespace serve {
namespace {

// ---------------------------------------------------------------------
// SpscRingBuffer

TEST(ServeRingBufferTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRingBuffer<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRingBuffer<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRingBuffer<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRingBuffer<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRingBuffer<int>(1024).capacity(), 1024u);
}

TEST(ServeRingBufferTest, PushPopFifoAndFullEmpty) {
  SpscRingBuffer<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full at capacity
  EXPECT_EQ(ring.SizeApprox(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);  // strict FIFO
  }
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(ServeRingBufferTest, WrapAroundKeepsFifo) {
  SpscRingBuffer<int> ring(4);
  int out = 0;
  // Push/pop far past the capacity so the indices wrap several times.
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
    EXPECT_TRUE(ring.TryPush(1000 + i));
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, 1000 + i);
  }
}

// One producer, one consumer, full speed: every value arrives exactly
// once, in order. Under TSan (check-sanitize) this also verifies the
// acquire/release pairing on head/tail.
TEST(ServeRingBufferTest, SpscStressTwoThreads) {
  constexpr int64_t kCount = 200000;
  SpscRingBuffer<int64_t> ring(64);
  std::atomic<bool> failed{false};
  std::thread producer([&] {
    for (int64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(i)) std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    int64_t expected = 0;
    int64_t value = 0;
    while (expected < kCount) {
      if (!ring.TryPop(&value)) {
        std::this_thread::yield();
        continue;
      }
      if (value != expected) {
        failed.store(true);
        break;
      }
      ++expected;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(failed.load()) << "ring reordered or lost a value";
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(ServeRingBufferTest, BatchPushPopKeepsFifo) {
  SpscRingBuffer<int> ring(8);
  EXPECT_EQ(ring.TryPushN(5, [](size_t i) { return static_cast<int>(i); }),
            5u);
  int out[8] = {};
  EXPECT_EQ(ring.TryPopN(out, 8), 5u);  // pops what's available
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(ring.EmptyApprox());
  EXPECT_EQ(ring.TryPopN(out, 4), 0u);
}

TEST(ServeRingBufferTest, BatchPushClampsToFreeSpace) {
  SpscRingBuffer<int> ring(4);
  // 10 requested, 4 slots: the accepted prefix is exactly the free space.
  EXPECT_EQ(ring.TryPushN(10, [](size_t i) { return static_cast<int>(i); }),
            4u);
  EXPECT_EQ(ring.TryPushN(1, [](size_t) { return 99; }), 0u);  // full
  int out[4] = {};
  ASSERT_EQ(ring.TryPopN(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
}

TEST(ServeRingBufferTest, BatchWrapAroundKeepsFifo) {
  SpscRingBuffer<int> ring(4);
  int out[4] = {};
  int next = 0;
  int expected = 0;
  // Push/pop runs of 3 through a 4-slot ring: every batch straddles the
  // wrap point sooner or later.
  for (int round = 0; round < 50; ++round) {
    const size_t pushed = ring.TryPushN(
        3, [&](size_t i) { return next + static_cast<int>(i); });
    next += static_cast<int>(pushed);
    const size_t popped = ring.TryPopN(out, 3);
    for (size_t i = 0; i < popped; ++i) {
      ASSERT_EQ(out[i], expected);
      ++expected;
    }
  }
  while (ring.TryPopN(out, 1) == 1) {
    ASSERT_EQ(out[0], expected);
    ++expected;
  }
  EXPECT_EQ(expected, next);
}

TEST(ServeRingBufferTest, SpscBatchStressTwoThreads) {
  SpscRingBuffer<int> ring(64);
  constexpr int kCount = 200000;
  std::atomic<bool> failed{false};
  std::thread producer([&] {
    int next = 0;
    while (next < kCount) {
      const size_t want =
          static_cast<size_t>(std::min(7, kCount - next));
      const size_t pushed = ring.TryPushN(
          want, [&](size_t i) { return next + static_cast<int>(i); });
      if (pushed == 0) {
        std::this_thread::yield();
      } else {
        next += static_cast<int>(pushed);
      }
    }
  });
  std::thread consumer([&] {
    int expected = 0;
    int out[16];
    while (expected < kCount) {
      const size_t popped = ring.TryPopN(out, 16);
      if (popped == 0) {
        std::this_thread::yield();
        continue;
      }
      for (size_t i = 0; i < popped; ++i) {
        if (out[i] != expected) {
          failed.store(true);
          return;
        }
        ++expected;
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(failed.load()) << "batched ring reordered or lost a value";
  EXPECT_TRUE(ring.EmptyApprox());
}

// ---------------------------------------------------------------------
// QuantileFromHistogram

TEST(ServeQuantileTest, EmptyHistogramIsZero) {
  HistogramSnapshot empty;
  EXPECT_EQ(QuantileFromHistogram(empty, 0.5), 0.0);
  EXPECT_EQ(QuantileFromHistogram(empty, 0.99), 0.0);
}

TEST(ServeQuantileTest, QuantilesOrderedAndClamped) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h->Record(0.5);   // bucket (0, 1]
  for (int i = 0; i < 10; ++i) h->Record(6.0);   // bucket (4, 8]
  const HistogramSnapshot snap = h->Snapshot();
  const double p50 = QuantileFromHistogram(snap, 0.50);
  const double p95 = QuantileFromHistogram(snap, 0.95);
  const double p99 = QuantileFromHistogram(snap, 0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);  // the mass sits in the first bucket
  EXPECT_GT(p95, 4.0);  // tail lands in the (4, 8] bucket
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, snap.max);
  EXPECT_GE(p50, snap.min);
}

TEST(ServeQuantileTest, SingleValueCollapsesToIt) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q", {1.0, 10.0});
  h->Record(3.5);
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 0.5), 3.5);
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 1.0), 3.5);
}

// Regression: a quantile landing in the overflow bucket (past the last
// finite bound) must clamp to that bound, not interpolate toward the
// recorded max as if the overflow bucket had a finite width.
TEST(ServeQuantileTest, OverflowBucketQuantileClampsToLastFiniteBound) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q", {1.0, 2.0, 4.0});
  for (int i = 0; i < 90; ++i) h->Record(0.5);
  for (int i = 0; i < 10; ++i) h->Record(8.0 + i);  // overflow bucket
  const HistogramSnapshot snap = h->Snapshot();
  // p99 sits in the overflow bucket: the honest answer is "at least the
  // last finite bound", never a fabricated point inside (4, max].
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 0.99), 4.0);
  // p50 is still interpolated normally inside a finite bucket.
  EXPECT_LE(QuantileFromHistogram(snap, 0.50), 1.0);
}

// Regression: merged snapshots (MergeMetricsSnapshots) can carry
// min == max == 0 when one side never recorded extremes; an
// all-overflow histogram must still answer with the last finite bound
// instead of collapsing to 0.
TEST(ServeQuantileTest, UnsetMaxOverflowMassStaysAtLastBound) {
  HistogramSnapshot snap;
  snap.bounds = {1.0, 2.0};
  snap.buckets = {0, 0, 5};  // all mass past the last finite bound
  snap.count = 5;
  snap.sum = 50.0;
  snap.min = 0.0;
  snap.max = 0.0;  // unset, as after a lossy merge
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 0.99), 2.0);
}

// The clamp still respects a recorded min above the last bound: if every
// observed value was >= 8, no quantile may claim 4.
TEST(ServeQuantileTest, OverflowClampRespectsRecordedMin) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q", {1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) h->Record(8.0);
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 0.5), 8.0);
}

// ---------------------------------------------------------------------
// TimerWheel

TEST(ServeTimerWheelTest, ReleasesInVirtualTimeOrder) {
  TimerWheel<int> wheel(0.001, 8);
  wheel.Schedule(0.0052, 5);
  wheel.Schedule(0.0012, 2);
  wheel.Schedule(0.0004, 1);
  wheel.Schedule(0.0049, 3);
  wheel.Schedule(0.00495, 4);
  EXPECT_EQ(wheel.pending(), 5u);
  std::vector<int> order;
  std::vector<TimerWheel<int>::Entry> due;
  double last_end = 0.0;
  while (wheel.pending() > 0) {
    const double tick_end = wheel.AdvanceTick(&due);
    EXPECT_GT(tick_end, last_end);
    last_end = tick_end;
    for (const auto& entry : due) {
      EXPECT_LE(entry.due_seconds, tick_end);
      order.push_back(entry.item);
    }
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ServeTimerWheelTest, SameDeadlineKeepsScheduleOrder) {
  TimerWheel<int> wheel(0.001);
  wheel.Schedule(0.0033, 1);
  wheel.Schedule(0.0033, 2);
  wheel.Schedule(0.0033, 3);
  std::vector<TimerWheel<int>::Entry> due;
  while (wheel.pending() > 0) wheel.AdvanceTick(&due);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].item, 1);
  EXPECT_EQ(due[1].item, 2);
  EXPECT_EQ(due[2].item, 3);
}

// Far-future deadlines share slots with near ones (single-level wheel):
// they must wait for their own revolution, not fire on the first pass.
TEST(ServeTimerWheelTest, FarFutureSurvivesWheelRevolutions) {
  TimerWheel<int> wheel(1.0, 4);  // 4 slots: tick 2 and tick 6 collide
  wheel.Schedule(1.2, 10);
  wheel.Schedule(5.3, 20);
  std::vector<std::pair<uint64_t, int>> releases;
  std::vector<TimerWheel<int>::Entry> due;
  for (uint64_t tick = 1; wheel.pending() > 0; ++tick) {
    wheel.AdvanceTick(&due);
    for (const auto& entry : due) releases.emplace_back(tick, entry.item);
  }
  ASSERT_EQ(releases.size(), 2u);
  EXPECT_EQ(releases[0], (std::pair<uint64_t, int>{2, 10}));
  EXPECT_EQ(releases[1], (std::pair<uint64_t, int>{6, 20}));
}

TEST(ServeTimerWheelTest, PastDueDeadlineClampsToNextTick) {
  TimerWheel<int> wheel(1.0, 4);
  wheel.Schedule(0.5, 1);
  std::vector<TimerWheel<int>::Entry> due;
  EXPECT_DOUBLE_EQ(wheel.AdvanceTick(&due), 1.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].item, 1);
  // The wheel has already released tick 1; a deadline in the past lands
  // in the very next tick instead of being lost.
  wheel.Schedule(0.2, 2);
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_DOUBLE_EQ(wheel.AdvanceTick(&due), 2.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].item, 2);
}

// ---------------------------------------------------------------------
// BackoffMillis (block-policy backpressure)

TEST(ServeBackoffTest, SpinWindowSleepsZero) {
  sweep::RetryPolicy policy;  // initial_backoff_ms=1, max_attempts=4
  for (int r = 0; r <= kBackoffSpinRetries; ++r) {
    EXPECT_EQ(BackoffMillis(policy, r), 0) << "rejections=" << r;
  }
  EXPECT_GT(BackoffMillis(policy, kBackoffSpinRetries + 1), 0);
}

TEST(ServeBackoffTest, DoublesThenCapsAtPolicyDoublings) {
  sweep::RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  policy.max_attempts = 4;  // at most 3 doublings
  EXPECT_EQ(BackoffMillis(policy, kBackoffSpinRetries + 1), 1);
  EXPECT_EQ(BackoffMillis(policy, kBackoffSpinRetries + 2), 2);
  EXPECT_EQ(BackoffMillis(policy, kBackoffSpinRetries + 3), 4);
  EXPECT_EQ(BackoffMillis(policy, kBackoffSpinRetries + 4), 8);
  // Saturates at max_attempts - 1 doublings.
  EXPECT_EQ(BackoffMillis(policy, kBackoffSpinRetries + 5), 8);
  EXPECT_EQ(BackoffMillis(policy, kBackoffSpinRetries + 500), 8);
}

// Regression: initial_backoff_ms << doublings overflowed int64_t when
// the policy allowed enough attempts (undefined behaviour, negative
// sleeps). The shift is now clamped and the result capped.
TEST(ServeBackoffTest, HugeMaxAttemptsCannotOverflowOrExceedCeiling) {
  sweep::RetryPolicy policy;
  policy.initial_backoff_ms = 7;
  policy.max_attempts = 1000000000;
  int64_t previous = 0;
  for (int r = kBackoffSpinRetries + 1; r < kBackoffSpinRetries + 200;
       ++r) {
    const int64_t ms = BackoffMillis(policy, r);
    EXPECT_GE(ms, previous) << "backoff must be monotone, rejections=" << r;
    EXPECT_GT(ms, 0);
    EXPECT_LE(ms, kMaxBackoffMillis);
    previous = ms;
  }
  EXPECT_EQ(BackoffMillis(policy, 1000000), kMaxBackoffMillis);
}

TEST(ServeBackoffTest, ZeroInitialBackoffDisablesSleeping) {
  sweep::RetryPolicy policy;
  policy.initial_backoff_ms = 0;
  policy.max_attempts = 1000;
  EXPECT_EQ(BackoffMillis(policy, 100000), 0);
}

// ---------------------------------------------------------------------
// StreamSession

std::shared_ptr<const GeneratedStream> MakeStream(size_t corpus_index,
                                                  uint64_t salt) {
  const CorpusEntry& entry = Corpus()[corpus_index];
  StreamSpec spec = SpecFromEntry(entry, /*scale=*/0.0, salt);
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return std::make_shared<const GeneratedStream>(std::move(*stream));
}

SessionOptions FastSessionOptions(size_t max_windows = 0) {
  SessionOptions options;
  options.max_windows = max_windows;
  options.learner = "Naive-DT";
  options.learner_config.epochs = 1;
  return options;
}

std::string DumpEval(const EvalResult& result) {
  std::string out = result.learner + "|" + result.dataset + "|" +
                    std::to_string(result.items_processed) + "|" +
                    std::to_string(result.peak_memory_bytes) + "|" +
                    sweep::EncodeDouble(result.mean_loss) + "|" +
                    sweep::EncodeDouble(result.faded_loss) + "|";
  for (size_t i = 0; i < result.per_window_loss.size(); ++i) {
    if (i > 0) out += ",";
    out += sweep::EncodeDouble(result.per_window_loss[i]);
  }
  return out;
}

EvalResult BatchReference(const GeneratedStream& stream,
                          const SessionOptions& options) {
  Result<PreparedStream> prepared =
      PrepareStream(stream, options.pipeline);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  if (options.max_windows > 0 &&
      prepared->windows.size() > options.max_windows) {
    prepared->windows.resize(options.max_windows);
    prepared->ranges.resize(options.max_windows);
  }
  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner(options.learner, options.learner_config, prepared->task,
                  prepared->num_classes);
  EXPECT_TRUE(learner.ok()) << learner.status().ToString();
  return RunPrequential(learner->get(), *prepared);
}

// Drives a session inline (no engine): offer everything, drain
// synchronously.
EvalResult DriveSessionInline(StreamSession* session) {
  int64_t next_row = 0;
  bool end_sent = false;
  bool finished = false;
  while (!finished) {
    // Interleave offers and drains so the ring never saturates.
    for (int i = 0; i < 16; ++i) {
      if (next_row < session->end_row()) {
        if (session->Offer(next_row, 0.0) == AdmitResult::kAccepted) {
          ++next_row;
        }
      } else if (!end_sent) {
        if (session->OfferEnd(0.0) == AdmitResult::kAccepted) {
          end_sent = true;
        }
      }
    }
    session->ProcessBatch(32, &finished);
    EXPECT_FALSE(session->quarantined()) << session->status().ToString();
    if (session->quarantined()) break;
  }
  return session->result();
}

TEST(ServeSessionTest, InlineDrainMatchesBatchPrequential) {
  std::shared_ptr<const GeneratedStream> stream = MakeStream(0, 7);
  SessionOptions options = FastSessionOptions(/*max_windows=*/3);
  StreamSession session(0, stream, options);
  ASSERT_TRUE(session.Init().ok());
  EXPECT_EQ(session.num_windows(), 3u);
  EXPECT_GT(session.end_row(), 0);

  const EvalResult serve_result = DriveSessionInline(&session);
  const EvalResult batch_result = BatchReference(*stream, options);
  EXPECT_EQ(DumpEval(serve_result), DumpEval(batch_result));
  EXPECT_EQ(session.windows_lost(), 0);
}

TEST(ServeSessionTest, WholeStreamMatchesBatchPrequential) {
  std::shared_ptr<const GeneratedStream> stream = MakeStream(1, 3);
  SessionOptions options = FastSessionOptions(/*max_windows=*/0);
  StreamSession session(0, stream, options);
  ASSERT_TRUE(session.Init().ok());
  const EvalResult serve_result = DriveSessionInline(&session);
  const EvalResult batch_result = BatchReference(*stream, options);
  EXPECT_EQ(DumpEval(serve_result), DumpEval(batch_result));
}

TEST(ServeSessionTest, RingFullYieldsOverloadedAndOfferAfterEndFinished) {
  std::shared_ptr<const GeneratedStream> stream = MakeStream(0, 1);
  SessionOptions options = FastSessionOptions(1);
  options.ring_capacity = 2;
  StreamSession session(0, stream, options);
  ASSERT_TRUE(session.Init().ok());
  EXPECT_EQ(session.Offer(0, 0.0), AdmitResult::kAccepted);
  EXPECT_EQ(session.Offer(1, 0.0), AdmitResult::kAccepted);
  // Ring (capacity 2) is full: structured backpressure, not a crash.
  EXPECT_EQ(session.Offer(2, 0.0), AdmitResult::kOverloaded);

  bool finished = false;
  session.ProcessBatch(16, &finished);
  EXPECT_FALSE(finished);
  EXPECT_EQ(session.OfferEnd(0.0), AdmitResult::kAccepted);
  session.ProcessBatch(16, &finished);
  EXPECT_TRUE(finished);
  EXPECT_TRUE(session.finished());
  // A finished session stops admitting.
  EXPECT_EQ(session.Offer(3, 0.0), AdmitResult::kFinished);
}

TEST(ServeSessionTest, DroppedRecordsShrinkWindowLostWindowSkips) {
  std::shared_ptr<const GeneratedStream> stream = MakeStream(0, 2);
  SessionOptions options = FastSessionOptions(3);
  StreamSession session(0, stream, options);
  ASSERT_TRUE(session.Init().ok());
  // Windows 0..2 are all full-size (only a stream's final window can be
  // short), so the truncated range splits evenly.
  ASSERT_EQ(session.num_windows(), 3u);
  const int64_t w0_end = session.end_row() / 3;
  // Deliver only half of window 0, nothing of window 1, all of window 2.
  bool finished = false;
  for (int64_t row = 0; row < w0_end / 2; ++row) {
    ASSERT_EQ(session.Offer(row, 0.0), AdmitResult::kAccepted);
    session.ProcessBatch(8, &finished);
  }
  for (int64_t row = 2 * w0_end; row < session.end_row(); ++row) {
    ASSERT_EQ(session.Offer(row, 0.0), AdmitResult::kAccepted);
    session.ProcessBatch(8, &finished);
  }
  ASSERT_EQ(session.OfferEnd(0.0), AdmitResult::kAccepted);
  while (!finished) {
    session.ProcessBatch(8, &finished);
    ASSERT_FALSE(session.quarantined()) << session.status().ToString();
  }
  ASSERT_TRUE(session.status().ok()) << session.status().ToString();
  EXPECT_EQ(session.windows_lost(), 1);  // window 1 never arrived
  // Window 0 (partial) trained, window 2 tested+trained: one loss entry.
  EXPECT_EQ(session.result().per_window_loss.size(), 1u);
  EXPECT_GT(session.result().items_processed, 0);
}

// ---------------------------------------------------------------------
// ServeEngine

std::unique_ptr<StreamSession> MakeInitedSession(int64_t id,
                                                 size_t corpus_index,
                                                 SessionOptions options) {
  auto session = std::make_unique<StreamSession>(
      id, MakeStream(corpus_index, static_cast<uint64_t>(id)), options);
  EXPECT_TRUE(session->Init().ok());
  return session;
}

TEST(ServeEngineTest, BlockPolicyServesEverySessionToCompletion) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 4;
  engine_options.quantum = 32;
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < 4; ++i) {
    engine.AddSession(
        MakeInitedSession(i, static_cast<size_t>(i), FastSessionOptions(2)));
  }
  LoadGenOptions load;
  load.producers = 2;
  load.admission = AdmissionPolicy::kBlock;
  const LoadStats stats = RunLoadGenerator(&engine, load);
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  EXPECT_TRUE(engine.failures().empty());
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.accepted, stats.offered);
  EXPECT_EQ(engine.sessions_finished(), 4);
  EXPECT_EQ(engine.inflight(), 0);
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    EXPECT_TRUE(engine.session(i)->finished());
    EXPECT_EQ(engine.session(i)->windows_lost(), 0);
    EXPECT_GT(engine.session(i)->result().items_processed, 0);
  }
  // The per-record latency histogram saw every consumed record.
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto it = snap.histograms.find("serve.record_latency_seconds");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_GT(it->second.count, 0);
  EXPECT_GT(QuantileFromHistogram(it->second, 0.5), 0.0);
}

// Overload acceptance: tiny rings + slowed workers + drop policy must
// yield counted kOverloaded drops and still shut down cleanly. Also part
// of the check-sanitize TSan pass.
TEST(ServeEngineTest, OverloadDropsAreCountedAndShutdownIsClean) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 1;
  engine_options.quantum = 8;
  engine_options.slow_every = 1;  // every activation sleeps...
  engine_options.slow_ms = 5;     // ...so producers outrun the drain
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < 2; ++i) {
    SessionOptions options = FastSessionOptions(2);
    options.ring_capacity = 4;
    engine.AddSession(MakeInitedSession(i, static_cast<size_t>(i), options));
  }
  LoadGenOptions load;
  load.producers = 1;
  load.admission = AdmissionPolicy::kDrop;
  const LoadStats stats = RunLoadGenerator(&engine, load);
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  EXPECT_TRUE(engine.failures().empty());
  EXPECT_GT(stats.dropped, 0) << "expected the overload regime";
  EXPECT_EQ(engine.sessions_finished(), 2);
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto drops = snap.volatile_counters.find("serve.drops_overloaded");
  ASSERT_NE(drops, snap.volatile_counters.end());
  EXPECT_EQ(drops->second, stats.dropped);
  // Every session still reached its end sentinel and produced a result
  // over whatever records survived admission.
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    EXPECT_TRUE(engine.session(i)->finished());
    EXPECT_TRUE(engine.session(i)->status().ok());
  }
}

TEST(ServeEngineTest, GlobalInflightCapRejectsWithDropsInflight) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 1;
  engine_options.max_inflight = 1;
  engine_options.slow_every = 1;  // hold the worker so records queue
  engine_options.slow_ms = 100;
  ServeEngine engine(engine_options);
  engine.AddSession(MakeInitedSession(0, 0, FastSessionOptions(1)));
  EXPECT_EQ(engine.Offer(0, 0, 0.0), AdmitResult::kAccepted);
  // The worker sleeps before draining, so the first record is still in
  // flight: the global cap rejects the immediately-following offer.
  EXPECT_EQ(engine.Offer(0, 1, 0.0), AdmitResult::kOverloaded);
  // Drain: once the worker wakes the sentinel goes through.
  for (;;) {
    const AdmitResult admit = engine.OfferEnd(0, 0.0);
    if (admit == AdmitResult::kAccepted ||
        admit == AdmitResult::kFinished) {
      break;
    }
    std::this_thread::yield();
  }
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto it = snap.volatile_counters.find("serve.drops_inflight");
  ASSERT_NE(it, snap.volatile_counters.end());
  EXPECT_GE(it->second, 1);
}

// Drains the single-session engine to completion after a batched-offer
// test poked records into it.
void FinishSingleSession(ServeEngine* engine) {
  for (;;) {
    const AdmitResult admit = engine->OfferEnd(0, 0.0);
    if (admit == AdmitResult::kAccepted || admit == AdmitResult::kFinished) {
      break;
    }
    std::this_thread::yield();
  }
  ASSERT_TRUE(engine->WaitAllFinished(/*timeout_seconds=*/120.0));
}

TEST(ServeEngineTest, OfferBatchAcceptsPrefixWhenRingFills) {
  ServerOptions engine_options;
  engine_options.workers = 1;
  engine_options.slow_every = 1;  // hold the worker so nothing drains
  engine_options.slow_ms = 100;
  ServeEngine engine(engine_options);
  SessionOptions options = FastSessionOptions(1);
  options.ring_capacity = 4;
  engine.AddSession(MakeInitedSession(0, 0, options));
  const ServeEngine::BatchAdmit admit = engine.OfferBatch(0, 0, 10, 0.0);
  // The ring holds 4: exactly the 4-record prefix is admitted, in order,
  // and the remainder is classified for the producer to retry or drop.
  EXPECT_EQ(admit.accepted, 4);
  EXPECT_EQ(admit.rest, AdmitResult::kOverloaded);
  EXPECT_EQ(engine.inflight(), 4);
  const ServeEngine::BatchAdmit full = engine.OfferBatch(0, 4, 3, 0.0);
  EXPECT_EQ(full.accepted, 0);
  EXPECT_EQ(full.rest, AdmitResult::kOverloaded);
  FinishSingleSession(&engine);
}

TEST(ServeEngineTest, OfferBatchClampsToGlobalInflightCap) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 1;
  engine_options.max_inflight = 2;
  engine_options.slow_every = 1;
  engine_options.slow_ms = 100;
  ServeEngine engine(engine_options);
  engine.AddSession(MakeInitedSession(0, 0, FastSessionOptions(1)));
  const ServeEngine::BatchAdmit admit = engine.OfferBatch(0, 0, 10, 0.0);
  EXPECT_EQ(admit.accepted, 2);  // cap clamps the run, never overshoots
  EXPECT_EQ(admit.rest, AdmitResult::kOverloaded);
  EXPECT_EQ(engine.inflight(), 2);
  const ServeEngine::BatchAdmit rejected = engine.OfferBatch(0, 2, 5, 0.0);
  EXPECT_EQ(rejected.accepted, 0);
  EXPECT_EQ(rejected.rest, AdmitResult::kOverloaded);
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto it = snap.volatile_counters.find("serve.drops_inflight");
  ASSERT_NE(it, snap.volatile_counters.end());
  EXPECT_GE(it->second, 1);
  FinishSingleSession(&engine);
}

TEST(ServeEngineTest, OfferBatchShedsWholeRemainingRun) {
  MetricsRegistry::Global()->Reset();
  AdmissionOptions admission_options;
  admission_options.shed_depth = 1;  // shed as soon as 1 record queues
  admission_options.resume_depth = 0;
  AdmissionController admission(admission_options);
  ServerOptions engine_options;
  engine_options.workers = 1;
  engine_options.slow_every = 1;
  engine_options.slow_ms = 100;
  engine_options.admission = &admission;
  ServeEngine engine(engine_options);
  engine.AddSession(MakeInitedSession(0, 0, FastSessionOptions(1)));
  // First batch is admitted (depth 0 at decision time)...
  const ServeEngine::BatchAdmit first = engine.OfferBatch(0, 0, 1, 0.0);
  EXPECT_EQ(first.accepted, 1);
  // ...then the controller sheds the entire next run in ONE decision.
  const ServeEngine::BatchAdmit shed = engine.OfferBatch(0, 1, 5, 0.0);
  EXPECT_EQ(shed.accepted, 0);
  EXPECT_EQ(shed.rest, AdmitResult::kShed);
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto it = snap.volatile_counters.find("serve.drops_shed");
  ASSERT_NE(it, snap.volatile_counters.end());
  EXPECT_EQ(it->second, 5);  // the whole run, not one record
  FinishSingleSession(&engine);
}

TEST(ServeEngineTest, OfferBatchToFinishedSessionReturnsFinished) {
  ServerOptions engine_options;
  engine_options.workers = 1;
  ServeEngine engine(engine_options);
  engine.AddSession(MakeInitedSession(0, 0, FastSessionOptions(1)));
  FinishSingleSession(&engine);
  const ServeEngine::BatchAdmit admit = engine.OfferBatch(0, 0, 8, 0.0);
  EXPECT_EQ(admit.accepted, 0);
  EXPECT_EQ(admit.rest, AdmitResult::kFinished);
}

// Regression: WaitAllFinished used to poll in 50 ms slices even with no
// deadline eviction or breaker armed. It now sleeps on the completion
// condition variable: an idle 300 ms wait must wake only when the last
// session finishes (a handful of loop iterations), not once per slice.
TEST(ServeEngineTest, WaitAllFinishedWakesOnCompletionNotSlices) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 1;
  ServeEngine engine(engine_options);
  engine.AddSession(MakeInitedSession(0, 0, FastSessionOptions(1)));
  std::thread finisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    for (;;) {
      const AdmitResult admit = engine.OfferEnd(0, 0.0);
      if (admit == AdmitResult::kAccepted ||
          admit == AdmitResult::kFinished) {
        break;
      }
      std::this_thread::yield();
    }
  });
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  finisher.join();
  EXPECT_GE(waited, 0.25) << "the wait must actually have been idle";
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto it = snap.volatile_counters.find("serve.wait_wakeups");
  ASSERT_NE(it, snap.volatile_counters.end());
  // Slice-polling would have woken ~6 times in 300 ms; the cv wait wakes
  // once to arm and once when the session finishes.
  EXPECT_LE(it->second, 4);
}

// ---------------------------------------------------------------------
// Load generator determinism

TEST(ServeLoadGenTest, DeliveryStatsAreReproducibleUnderBlockPolicy) {
  LoadStats first;
  LoadStats second;
  for (LoadStats* stats : {&first, &second}) {
    ServerOptions engine_options;
    engine_options.workers = 2;
    ServeEngine engine(engine_options);
    for (int64_t i = 0; i < 3; ++i) {
      engine.AddSession(
          MakeInitedSession(i, static_cast<size_t>(i),
                            FastSessionOptions(2)));
    }
    LoadGenOptions load;
    load.seed = 99;
    load.producers = 2;
    load.admission = AdmissionPolicy::kBlock;
    *stats = RunLoadGenerator(&engine, load);
    ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
    ASSERT_TRUE(engine.failures().empty());
  }
  // Under kBlock every scheduled record is delivered, so the stats are
  // a pure function of the seed and the stream shapes.
  EXPECT_EQ(first.offered, second.offered);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.dropped, 0);
  EXPECT_EQ(second.dropped, 0);
  EXPECT_GT(first.offered, 0);
}

// One full load-generator pass over 3 fresh sessions; returns per-session
// result dumps (block policy: every record delivered).
std::vector<std::string> RunLoadDumps(const LoadGenOptions& load_options,
                                      LoadStats* stats) {
  ServerOptions engine_options;
  engine_options.workers = 2;
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < 3; ++i) {
    engine.AddSession(MakeInitedSession(i, static_cast<size_t>(i),
                                        FastSessionOptions(2)));
  }
  LoadGenOptions load = load_options;
  load.admission = AdmissionPolicy::kBlock;
  *stats = RunLoadGenerator(&engine, load);
  EXPECT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  EXPECT_TRUE(engine.failures().empty());
  std::vector<std::string> dumps;
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    dumps.push_back(DumpEval(engine.session(i)->result()));
  }
  return dumps;
}

// Record-batch admission must be invisible to the delivered record set
// and the served outputs: batches are contiguous per-stream runs, so any
// batch size yields bit-identical results under the block policy.
TEST(ServeLoadGenTest, BatchedDeliveryIsBitIdenticalToUnbatched) {
  LoadGenOptions load;
  load.seed = 17;
  load.producers = 2;
  load.burst = 3;
  LoadStats unbatched_stats;
  const std::vector<std::string> unbatched =
      RunLoadDumps(load, &unbatched_stats);
  for (int64_t batch_records : {4, 64}) {
    LoadGenOptions batched = load;
    batched.batch_records = batch_records;
    LoadStats stats;
    const std::vector<std::string> dumps = RunLoadDumps(batched, &stats);
    EXPECT_EQ(dumps, unbatched) << "batch_records=" << batch_records;
    EXPECT_EQ(stats.offered, unbatched_stats.offered);
    EXPECT_EQ(stats.accepted, unbatched_stats.accepted);
    EXPECT_EQ(stats.dropped, 0);
    EXPECT_EQ(stats.shed, 0);
  }
}

// Timer-wheel pacing changes only wall-clock timing, never the virtual
// schedule: the paced replay must deliver the same record set and
// produce bit-identical outputs to the unpaced one.
TEST(ServeLoadGenTest, PacedReplayIsBitIdenticalToUnpaced) {
  LoadGenOptions load;
  load.seed = 23;
  load.producers = 2;
  load.rate = 200000.0;  // keep the paced virtual duration tiny
  LoadStats unpaced_stats;
  const std::vector<std::string> unpaced =
      RunLoadDumps(load, &unpaced_stats);
  LoadGenOptions paced = load;
  paced.paced = true;
  paced.pace_tick_seconds = 0.002;
  paced.batch_records = 8;  // pacing and batching compose
  LoadStats paced_stats;
  const std::vector<std::string> dumps = RunLoadDumps(paced, &paced_stats);
  EXPECT_EQ(dumps, unpaced);
  EXPECT_EQ(paced_stats.offered, unpaced_stats.offered);
  EXPECT_EQ(paced_stats.accepted, unpaced_stats.accepted);
}

// ---------------------------------------------------------------------
// oebench_serve CLI contract: exec the real binary.

const char* ServeBin() { return std::getenv("OEBENCH_SERVE_BIN"); }

int RunServeCli(const std::string& args) {
  std::string command = std::string("\"") + ServeBin() + "\" " + args +
                        " >/dev/null 2>/dev/null";
  int raw = std::system(command.c_str());
  EXPECT_NE(raw, -1);
  EXPECT_TRUE(WIFEXITED(raw)) << "signal-terminated: " << command;
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

#define SKIP_WITHOUT_SERVE_BIN()                                        \
  do {                                                                  \
    if (ServeBin() == nullptr ||                                        \
        !IoEnv::Default()->FileExists(ServeBin())) {                    \
      GTEST_SKIP() << "OEBENCH_SERVE_BIN not set / not built; run via " \
                      "ctest or the check-serve target";                \
    }                                                                   \
  } while (0)

TEST(ServeCliTest, UsageErrorsExitTwo) {
  SKIP_WITHOUT_SERVE_BIN();
  EXPECT_EQ(RunServeCli("--no-such-flag"), 2);
  EXPECT_EQ(RunServeCli("bare-argument"), 2);
  EXPECT_EQ(RunServeCli("--streams=0"), 2);
  EXPECT_EQ(RunServeCli("--streams"), 2);  // missing value
  EXPECT_EQ(RunServeCli("--workers=0"), 2);
  EXPECT_EQ(RunServeCli("--rate=0"), 2);
  EXPECT_EQ(RunServeCli("--rate=abc"), 2);
  EXPECT_EQ(RunServeCli("--duration-windows=-1"), 2);
  EXPECT_EQ(RunServeCli("--ring-capacity=1"), 2);
  EXPECT_EQ(RunServeCli("--producers=0"), 2);
  EXPECT_EQ(RunServeCli("--quantum=0"), 2);
  EXPECT_EQ(RunServeCli("--max-inflight=-1"), 2);
  EXPECT_EQ(RunServeCli("--admission=bogus"), 2);
  EXPECT_EQ(RunServeCli("--paced=1"), 2);  // --paced takes no value
  EXPECT_EQ(RunServeCli("--scale=-1"), 2);
  EXPECT_EQ(RunServeCli("--seed=abc"), 2);
  EXPECT_EQ(RunServeCli("--learner=NoSuchLearner"), 2);
  EXPECT_EQ(RunServeCli("--chaos-slow=5"), 2);
  EXPECT_EQ(RunServeCli("--chaos-slow=0:10"), 2);
  EXPECT_EQ(RunServeCli("--deterministic-metrics"), 2);
  EXPECT_EQ(RunServeCli("--batch-records=0"), 2);
  EXPECT_EQ(RunServeCli("--distinct-streams=-1"), 2);
  EXPECT_EQ(RunServeCli("--state-pool=1"), 2);  // takes no value
  EXPECT_EQ(RunServeCli("--pace-tick-ms=0"), 2);
}

TEST(ServeCliTest, TinyRunExitsZeroAndWritesMetrics) {
  SKIP_WITHOUT_SERVE_BIN();
  const std::string metrics =
      ::testing::TempDir() + "/serve_cli_metrics.json";
  std::remove(metrics.c_str());
  EXPECT_EQ(RunServeCli("--streams=2 --workers=2 --duration-windows=1 "
                        "--scale=0 --epochs=1 --metrics-out=\"" +
                        metrics + "\""),
            0);
  Result<std::string> text = IoEnv::Default()->ReadFile(metrics);
  ASSERT_TRUE(text.ok());
  MetricsSnapshot snap;
  ASSERT_TRUE(ParseMetricsJson(*text, &snap).ok());
  EXPECT_GT(snap.counters.at("serve.records"), 0);
  EXPECT_GT(snap.histograms.at("serve.record_latency_seconds").count, 0);
  std::remove(metrics.c_str());
}

TEST(ServeCliTest, UnwritableMetricsPathExitsOne) {
  SKIP_WITHOUT_SERVE_BIN();
  EXPECT_EQ(RunServeCli("--streams=1 --duration-windows=1 --scale=0 "
                        "--epochs=1 "
                        "--metrics-out=/no/such/dir/metrics.json"),
            1);
}

}  // namespace
}  // namespace serve
}  // namespace oebench
