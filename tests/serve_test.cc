// Online-serving subsystem units: SPSC ring buffer (FIFO, wrap-around,
// a two-thread stress pass), StreamSession record-to-window
// bookkeeping, ServeEngine scheduling/backpressure, load-generator
// determinism, histogram quantile estimation, and oebench_serve CLI
// death tests (exec'd via OEBENCH_SERVE_BIN, mirroring the
// sweep_fault_test.cc idiom).

#include <sys/wait.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/io_env.h"
#include "common/metrics.h"
#include "core/evaluator.h"
#include "serve/load_gen.h"
#include "serve/ring_buffer.h"
#include "serve/server.h"
#include "serve/session.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"

namespace oebench {
namespace serve {
namespace {

// ---------------------------------------------------------------------
// SpscRingBuffer

TEST(ServeRingBufferTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRingBuffer<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRingBuffer<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRingBuffer<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRingBuffer<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRingBuffer<int>(1024).capacity(), 1024u);
}

TEST(ServeRingBufferTest, PushPopFifoAndFullEmpty) {
  SpscRingBuffer<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full at capacity
  EXPECT_EQ(ring.SizeApprox(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);  // strict FIFO
  }
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(ServeRingBufferTest, WrapAroundKeepsFifo) {
  SpscRingBuffer<int> ring(4);
  int out = 0;
  // Push/pop far past the capacity so the indices wrap several times.
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
    EXPECT_TRUE(ring.TryPush(1000 + i));
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, 1000 + i);
  }
}

// One producer, one consumer, full speed: every value arrives exactly
// once, in order. Under TSan (check-sanitize) this also verifies the
// acquire/release pairing on head/tail.
TEST(ServeRingBufferTest, SpscStressTwoThreads) {
  constexpr int64_t kCount = 200000;
  SpscRingBuffer<int64_t> ring(64);
  std::atomic<bool> failed{false};
  std::thread producer([&] {
    for (int64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(i)) std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    int64_t expected = 0;
    int64_t value = 0;
    while (expected < kCount) {
      if (!ring.TryPop(&value)) {
        std::this_thread::yield();
        continue;
      }
      if (value != expected) {
        failed.store(true);
        break;
      }
      ++expected;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(failed.load()) << "ring reordered or lost a value";
  EXPECT_TRUE(ring.EmptyApprox());
}

// ---------------------------------------------------------------------
// QuantileFromHistogram

TEST(ServeQuantileTest, EmptyHistogramIsZero) {
  HistogramSnapshot empty;
  EXPECT_EQ(QuantileFromHistogram(empty, 0.5), 0.0);
  EXPECT_EQ(QuantileFromHistogram(empty, 0.99), 0.0);
}

TEST(ServeQuantileTest, QuantilesOrderedAndClamped) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h->Record(0.5);   // bucket (0, 1]
  for (int i = 0; i < 10; ++i) h->Record(6.0);   // bucket (4, 8]
  const HistogramSnapshot snap = h->Snapshot();
  const double p50 = QuantileFromHistogram(snap, 0.50);
  const double p95 = QuantileFromHistogram(snap, 0.95);
  const double p99 = QuantileFromHistogram(snap, 0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);  // the mass sits in the first bucket
  EXPECT_GT(p95, 4.0);  // tail lands in the (4, 8] bucket
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, snap.max);
  EXPECT_GE(p50, snap.min);
}

TEST(ServeQuantileTest, SingleValueCollapsesToIt) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q", {1.0, 10.0});
  h->Record(3.5);
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 0.5), 3.5);
  EXPECT_DOUBLE_EQ(QuantileFromHistogram(snap, 1.0), 3.5);
}

// ---------------------------------------------------------------------
// StreamSession

std::shared_ptr<const GeneratedStream> MakeStream(size_t corpus_index,
                                                  uint64_t salt) {
  const CorpusEntry& entry = Corpus()[corpus_index];
  StreamSpec spec = SpecFromEntry(entry, /*scale=*/0.0, salt);
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return std::make_shared<const GeneratedStream>(std::move(*stream));
}

SessionOptions FastSessionOptions(size_t max_windows = 0) {
  SessionOptions options;
  options.max_windows = max_windows;
  options.learner = "Naive-DT";
  options.learner_config.epochs = 1;
  return options;
}

std::string DumpEval(const EvalResult& result) {
  std::string out = result.learner + "|" + result.dataset + "|" +
                    std::to_string(result.items_processed) + "|" +
                    std::to_string(result.peak_memory_bytes) + "|" +
                    sweep::EncodeDouble(result.mean_loss) + "|" +
                    sweep::EncodeDouble(result.faded_loss) + "|";
  for (size_t i = 0; i < result.per_window_loss.size(); ++i) {
    if (i > 0) out += ",";
    out += sweep::EncodeDouble(result.per_window_loss[i]);
  }
  return out;
}

EvalResult BatchReference(const GeneratedStream& stream,
                          const SessionOptions& options) {
  Result<PreparedStream> prepared =
      PrepareStream(stream, options.pipeline);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  if (options.max_windows > 0 &&
      prepared->windows.size() > options.max_windows) {
    prepared->windows.resize(options.max_windows);
    prepared->ranges.resize(options.max_windows);
  }
  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner(options.learner, options.learner_config, prepared->task,
                  prepared->num_classes);
  EXPECT_TRUE(learner.ok()) << learner.status().ToString();
  return RunPrequential(learner->get(), *prepared);
}

// Drives a session inline (no engine): offer everything, drain
// synchronously.
EvalResult DriveSessionInline(StreamSession* session) {
  int64_t next_row = 0;
  bool end_sent = false;
  bool finished = false;
  while (!finished) {
    // Interleave offers and drains so the ring never saturates.
    for (int i = 0; i < 16; ++i) {
      if (next_row < session->end_row()) {
        if (session->Offer(next_row, 0.0) == AdmitResult::kAccepted) {
          ++next_row;
        }
      } else if (!end_sent) {
        if (session->OfferEnd(0.0) == AdmitResult::kAccepted) {
          end_sent = true;
        }
      }
    }
    session->ProcessBatch(32, &finished);
    EXPECT_FALSE(session->quarantined()) << session->status().ToString();
    if (session->quarantined()) break;
  }
  return session->result();
}

TEST(ServeSessionTest, InlineDrainMatchesBatchPrequential) {
  std::shared_ptr<const GeneratedStream> stream = MakeStream(0, 7);
  SessionOptions options = FastSessionOptions(/*max_windows=*/3);
  StreamSession session(0, stream, options);
  ASSERT_TRUE(session.Init().ok());
  EXPECT_EQ(session.num_windows(), 3u);
  EXPECT_GT(session.end_row(), 0);

  const EvalResult serve_result = DriveSessionInline(&session);
  const EvalResult batch_result = BatchReference(*stream, options);
  EXPECT_EQ(DumpEval(serve_result), DumpEval(batch_result));
  EXPECT_EQ(session.windows_lost(), 0);
}

TEST(ServeSessionTest, WholeStreamMatchesBatchPrequential) {
  std::shared_ptr<const GeneratedStream> stream = MakeStream(1, 3);
  SessionOptions options = FastSessionOptions(/*max_windows=*/0);
  StreamSession session(0, stream, options);
  ASSERT_TRUE(session.Init().ok());
  const EvalResult serve_result = DriveSessionInline(&session);
  const EvalResult batch_result = BatchReference(*stream, options);
  EXPECT_EQ(DumpEval(serve_result), DumpEval(batch_result));
}

TEST(ServeSessionTest, RingFullYieldsOverloadedAndOfferAfterEndFinished) {
  std::shared_ptr<const GeneratedStream> stream = MakeStream(0, 1);
  SessionOptions options = FastSessionOptions(1);
  options.ring_capacity = 2;
  StreamSession session(0, stream, options);
  ASSERT_TRUE(session.Init().ok());
  EXPECT_EQ(session.Offer(0, 0.0), AdmitResult::kAccepted);
  EXPECT_EQ(session.Offer(1, 0.0), AdmitResult::kAccepted);
  // Ring (capacity 2) is full: structured backpressure, not a crash.
  EXPECT_EQ(session.Offer(2, 0.0), AdmitResult::kOverloaded);

  bool finished = false;
  session.ProcessBatch(16, &finished);
  EXPECT_FALSE(finished);
  EXPECT_EQ(session.OfferEnd(0.0), AdmitResult::kAccepted);
  session.ProcessBatch(16, &finished);
  EXPECT_TRUE(finished);
  EXPECT_TRUE(session.finished());
  // A finished session stops admitting.
  EXPECT_EQ(session.Offer(3, 0.0), AdmitResult::kFinished);
}

TEST(ServeSessionTest, DroppedRecordsShrinkWindowLostWindowSkips) {
  std::shared_ptr<const GeneratedStream> stream = MakeStream(0, 2);
  SessionOptions options = FastSessionOptions(3);
  StreamSession session(0, stream, options);
  ASSERT_TRUE(session.Init().ok());
  // Windows 0..2 are all full-size (only a stream's final window can be
  // short), so the truncated range splits evenly.
  ASSERT_EQ(session.num_windows(), 3u);
  const int64_t w0_end = session.end_row() / 3;
  // Deliver only half of window 0, nothing of window 1, all of window 2.
  bool finished = false;
  for (int64_t row = 0; row < w0_end / 2; ++row) {
    ASSERT_EQ(session.Offer(row, 0.0), AdmitResult::kAccepted);
    session.ProcessBatch(8, &finished);
  }
  for (int64_t row = 2 * w0_end; row < session.end_row(); ++row) {
    ASSERT_EQ(session.Offer(row, 0.0), AdmitResult::kAccepted);
    session.ProcessBatch(8, &finished);
  }
  ASSERT_EQ(session.OfferEnd(0.0), AdmitResult::kAccepted);
  while (!finished) {
    session.ProcessBatch(8, &finished);
    ASSERT_FALSE(session.quarantined()) << session.status().ToString();
  }
  ASSERT_TRUE(session.status().ok()) << session.status().ToString();
  EXPECT_EQ(session.windows_lost(), 1);  // window 1 never arrived
  // Window 0 (partial) trained, window 2 tested+trained: one loss entry.
  EXPECT_EQ(session.result().per_window_loss.size(), 1u);
  EXPECT_GT(session.result().items_processed, 0);
}

// ---------------------------------------------------------------------
// ServeEngine

std::unique_ptr<StreamSession> MakeInitedSession(int64_t id,
                                                 size_t corpus_index,
                                                 SessionOptions options) {
  auto session = std::make_unique<StreamSession>(
      id, MakeStream(corpus_index, static_cast<uint64_t>(id)), options);
  EXPECT_TRUE(session->Init().ok());
  return session;
}

TEST(ServeEngineTest, BlockPolicyServesEverySessionToCompletion) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 4;
  engine_options.quantum = 32;
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < 4; ++i) {
    engine.AddSession(
        MakeInitedSession(i, static_cast<size_t>(i), FastSessionOptions(2)));
  }
  LoadGenOptions load;
  load.producers = 2;
  load.admission = AdmissionPolicy::kBlock;
  const LoadStats stats = RunLoadGenerator(&engine, load);
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  EXPECT_TRUE(engine.failures().empty());
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.accepted, stats.offered);
  EXPECT_EQ(engine.sessions_finished(), 4);
  EXPECT_EQ(engine.inflight(), 0);
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    EXPECT_TRUE(engine.session(i)->finished());
    EXPECT_EQ(engine.session(i)->windows_lost(), 0);
    EXPECT_GT(engine.session(i)->result().items_processed, 0);
  }
  // The per-record latency histogram saw every consumed record.
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto it = snap.histograms.find("serve.record_latency_seconds");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_GT(it->second.count, 0);
  EXPECT_GT(QuantileFromHistogram(it->second, 0.5), 0.0);
}

// Overload acceptance: tiny rings + slowed workers + drop policy must
// yield counted kOverloaded drops and still shut down cleanly. Also part
// of the check-sanitize TSan pass.
TEST(ServeEngineTest, OverloadDropsAreCountedAndShutdownIsClean) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 1;
  engine_options.quantum = 8;
  engine_options.slow_every = 1;  // every activation sleeps...
  engine_options.slow_ms = 5;     // ...so producers outrun the drain
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < 2; ++i) {
    SessionOptions options = FastSessionOptions(2);
    options.ring_capacity = 4;
    engine.AddSession(MakeInitedSession(i, static_cast<size_t>(i), options));
  }
  LoadGenOptions load;
  load.producers = 1;
  load.admission = AdmissionPolicy::kDrop;
  const LoadStats stats = RunLoadGenerator(&engine, load);
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  EXPECT_TRUE(engine.failures().empty());
  EXPECT_GT(stats.dropped, 0) << "expected the overload regime";
  EXPECT_EQ(engine.sessions_finished(), 2);
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto drops = snap.volatile_counters.find("serve.drops_overloaded");
  ASSERT_NE(drops, snap.volatile_counters.end());
  EXPECT_EQ(drops->second, stats.dropped);
  // Every session still reached its end sentinel and produced a result
  // over whatever records survived admission.
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    EXPECT_TRUE(engine.session(i)->finished());
    EXPECT_TRUE(engine.session(i)->status().ok());
  }
}

TEST(ServeEngineTest, GlobalInflightCapRejectsWithDropsInflight) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 1;
  engine_options.max_inflight = 1;
  engine_options.slow_every = 1;  // hold the worker so records queue
  engine_options.slow_ms = 100;
  ServeEngine engine(engine_options);
  engine.AddSession(MakeInitedSession(0, 0, FastSessionOptions(1)));
  EXPECT_EQ(engine.Offer(0, 0, 0.0), AdmitResult::kAccepted);
  // The worker sleeps before draining, so the first record is still in
  // flight: the global cap rejects the immediately-following offer.
  EXPECT_EQ(engine.Offer(0, 1, 0.0), AdmitResult::kOverloaded);
  // Drain: once the worker wakes the sentinel goes through.
  for (;;) {
    const AdmitResult admit = engine.OfferEnd(0, 0.0);
    if (admit == AdmitResult::kAccepted ||
        admit == AdmitResult::kFinished) {
      break;
    }
    std::this_thread::yield();
  }
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto it = snap.volatile_counters.find("serve.drops_inflight");
  ASSERT_NE(it, snap.volatile_counters.end());
  EXPECT_GE(it->second, 1);
}

// ---------------------------------------------------------------------
// Load generator determinism

TEST(ServeLoadGenTest, DeliveryStatsAreReproducibleUnderBlockPolicy) {
  LoadStats first;
  LoadStats second;
  for (LoadStats* stats : {&first, &second}) {
    ServerOptions engine_options;
    engine_options.workers = 2;
    ServeEngine engine(engine_options);
    for (int64_t i = 0; i < 3; ++i) {
      engine.AddSession(
          MakeInitedSession(i, static_cast<size_t>(i),
                            FastSessionOptions(2)));
    }
    LoadGenOptions load;
    load.seed = 99;
    load.producers = 2;
    load.admission = AdmissionPolicy::kBlock;
    *stats = RunLoadGenerator(&engine, load);
    ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
    ASSERT_TRUE(engine.failures().empty());
  }
  // Under kBlock every scheduled record is delivered, so the stats are
  // a pure function of the seed and the stream shapes.
  EXPECT_EQ(first.offered, second.offered);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.dropped, 0);
  EXPECT_EQ(second.dropped, 0);
  EXPECT_GT(first.offered, 0);
}

// ---------------------------------------------------------------------
// oebench_serve CLI contract: exec the real binary.

const char* ServeBin() { return std::getenv("OEBENCH_SERVE_BIN"); }

int RunServeCli(const std::string& args) {
  std::string command = std::string("\"") + ServeBin() + "\" " + args +
                        " >/dev/null 2>/dev/null";
  int raw = std::system(command.c_str());
  EXPECT_NE(raw, -1);
  EXPECT_TRUE(WIFEXITED(raw)) << "signal-terminated: " << command;
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

#define SKIP_WITHOUT_SERVE_BIN()                                        \
  do {                                                                  \
    if (ServeBin() == nullptr ||                                        \
        !IoEnv::Default()->FileExists(ServeBin())) {                    \
      GTEST_SKIP() << "OEBENCH_SERVE_BIN not set / not built; run via " \
                      "ctest or the check-serve target";                \
    }                                                                   \
  } while (0)

TEST(ServeCliTest, UsageErrorsExitTwo) {
  SKIP_WITHOUT_SERVE_BIN();
  EXPECT_EQ(RunServeCli("--no-such-flag"), 2);
  EXPECT_EQ(RunServeCli("bare-argument"), 2);
  EXPECT_EQ(RunServeCli("--streams=0"), 2);
  EXPECT_EQ(RunServeCli("--streams"), 2);  // missing value
  EXPECT_EQ(RunServeCli("--workers=0"), 2);
  EXPECT_EQ(RunServeCli("--rate=0"), 2);
  EXPECT_EQ(RunServeCli("--rate=abc"), 2);
  EXPECT_EQ(RunServeCli("--duration-windows=-1"), 2);
  EXPECT_EQ(RunServeCli("--ring-capacity=1"), 2);
  EXPECT_EQ(RunServeCli("--producers=0"), 2);
  EXPECT_EQ(RunServeCli("--quantum=0"), 2);
  EXPECT_EQ(RunServeCli("--max-inflight=-1"), 2);
  EXPECT_EQ(RunServeCli("--admission=bogus"), 2);
  EXPECT_EQ(RunServeCli("--paced=1"), 2);  // --paced takes no value
  EXPECT_EQ(RunServeCli("--scale=-1"), 2);
  EXPECT_EQ(RunServeCli("--seed=abc"), 2);
  EXPECT_EQ(RunServeCli("--learner=NoSuchLearner"), 2);
  EXPECT_EQ(RunServeCli("--chaos-slow=5"), 2);
  EXPECT_EQ(RunServeCli("--chaos-slow=0:10"), 2);
  EXPECT_EQ(RunServeCli("--deterministic-metrics"), 2);
}

TEST(ServeCliTest, TinyRunExitsZeroAndWritesMetrics) {
  SKIP_WITHOUT_SERVE_BIN();
  const std::string metrics =
      ::testing::TempDir() + "/serve_cli_metrics.json";
  std::remove(metrics.c_str());
  EXPECT_EQ(RunServeCli("--streams=2 --workers=2 --duration-windows=1 "
                        "--scale=0 --epochs=1 --metrics-out=\"" +
                        metrics + "\""),
            0);
  Result<std::string> text = IoEnv::Default()->ReadFile(metrics);
  ASSERT_TRUE(text.ok());
  MetricsSnapshot snap;
  ASSERT_TRUE(ParseMetricsJson(*text, &snap).ok());
  EXPECT_GT(snap.counters.at("serve.records"), 0);
  EXPECT_GT(snap.histograms.at("serve.record_latency_seconds").count, 0);
  std::remove(metrics.c_str());
}

TEST(ServeCliTest, UnwritableMetricsPathExitsOne) {
  SKIP_WITHOUT_SERVE_BIN();
  EXPECT_EQ(RunServeCli("--streams=1 --duration-windows=1 --scale=0 "
                        "--epochs=1 "
                        "--metrics-out=/no/such/dir/metrics.json"),
            1);
}

}  // namespace
}  // namespace serve
}  // namespace oebench
