// The sharded-sweep subsystem's contracts, enforced forever:
//  - shard spans partition the canonical manifest exhaustively and
//    disjointly for every shard count;
//  - a result-log round trip is bit-exact, NaN payloads, infinities,
//    -0.0 and N/A rows included;
//  - a crash-torn log resumes: only tasks without a valid row re-run;
//  - merging n shard logs reproduces the unsharded SweepOutcome
//    byte-for-byte (n = 1, 2, 3), and a shard prepares only the
//    datasets its span owns.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/parallel_eval.h"
#include "streamgen/corpus.h"
#include "sweep/manifest.h"
#include "sweep/merge.h"
#include "sweep/result_log.h"
#include "sweep/shard_runner.h"

namespace oebench {
namespace {

using sweep::LoggedRow;
using sweep::LogHeader;
using sweep::ResultLogWriter;
using sweep::Shard;
using sweep::SweepGrid;
using sweep::TaskManifest;

TaskManifest SmallManifest(int datasets, int learners, int repeats) {
  SweepGrid grid;
  for (int d = 0; d < datasets; ++d) {
    grid.datasets.push_back("data" + std::to_string(d));
  }
  for (int l = 0; l < learners; ++l) {
    grid.learners.push_back("algo" + std::to_string(l));
  }
  grid.repeats = repeats;
  return TaskManifest::Build(std::move(grid));
}

TEST(ManifestTest, TaskKeyAndCanonicalOrder) {
  TaskManifest manifest = SmallManifest(2, 2, 2);
  ASSERT_EQ(manifest.tasks().size(), 8u);
  // Dataset-major, then learner, then repeat — parallel_eval's
  // reassembly order.
  EXPECT_EQ(sweep::TaskKey(manifest.tasks()[0]), "data0|algo0|0");
  EXPECT_EQ(sweep::TaskKey(manifest.tasks()[1]), "data0|algo0|1");
  EXPECT_EQ(sweep::TaskKey(manifest.tasks()[2]), "data0|algo1|0");
  EXPECT_EQ(sweep::TaskKey(manifest.tasks()[4]), "data1|algo0|0");
  EXPECT_EQ(sweep::TaskKey(manifest.tasks()[7]), "data1|algo1|1");
}

TEST(ManifestTest, ShardsPartitionExhaustivelyAndDisjointly) {
  TaskManifest manifest = SmallManifest(7, 3, 3);  // 63 tasks
  const size_t total = manifest.tasks().size();
  ASSERT_EQ(total, 63u);
  for (int n : {1, 2, 3, 4, 5, 7, 10, 62, 63, 64, 200}) {
    SCOPED_TRACE("count=" + std::to_string(n));
    size_t expected_begin = 0;
    std::set<std::string> seen;
    for (int i = 0; i < n; ++i) {
      Shard shard{i, n};
      auto [begin, end] = manifest.ShardSpan(shard);
      // Contiguous: each span starts where the previous ended.
      EXPECT_EQ(begin, expected_begin);
      EXPECT_LE(begin, end);
      expected_begin = end;
      for (const TaskIdentity& task : manifest.ShardTasks(shard)) {
        EXPECT_TRUE(seen.insert(sweep::TaskKey(task)).second)
            << "task assigned to two shards";
      }
      // Balanced: spans differ in size by at most one task.
      size_t size = end - begin;
      EXPECT_GE(size + 1, total / static_cast<size_t>(n));
      EXPECT_LE(size, total / static_cast<size_t>(n) + 1);
    }
    EXPECT_EQ(expected_begin, total);
    EXPECT_EQ(seen.size(), total);
  }
}

TEST(ManifestTest, MoreShardsThanTasksPartitionExactly) {
  // A degenerate 1x1x1 grid split 5 ways: four spans are empty, one
  // holds the task, and the partition properties still hold exactly.
  TaskManifest manifest = SmallManifest(1, 1, 1);
  ASSERT_EQ(manifest.tasks().size(), 1u);
  for (int n : {2, 5, 17}) {
    SCOPED_TRACE("count=" + std::to_string(n));
    size_t expected_begin = 0;
    int nonempty = 0;
    for (int i = 0; i < n; ++i) {
      Shard shard{i, n};
      auto [begin, end] = manifest.ShardSpan(shard);
      EXPECT_EQ(begin, expected_begin);
      expected_begin = end;
      size_t size = end - begin;
      EXPECT_LE(size, 1u);
      if (size == 1) ++nonempty;
      // Empty shards own no datasets and no tasks.
      EXPECT_EQ(manifest.ShardTasks(shard).size(), size);
      EXPECT_EQ(manifest.ShardDatasets(shard).size(), size);
    }
    EXPECT_EQ(expected_begin, 1u);
    EXPECT_EQ(nonempty, 1);
  }
}

TEST(ManifestDeathTest, BuildRejectsDegenerateGrids) {
  SweepGrid zero_repeats;
  zero_repeats.datasets = {"d"};
  zero_repeats.learners = {"l"};
  zero_repeats.repeats = 0;
  EXPECT_DEATH(TaskManifest::Build(std::move(zero_repeats)), "repeats");

  SweepGrid no_datasets;
  no_datasets.learners = {"l"};
  no_datasets.repeats = 1;
  EXPECT_DEATH(TaskManifest::Build(std::move(no_datasets)), "datasets");
}

TEST(ManifestTest, SingleDatasetCorpusPartitionsByRepeatGranularity) {
  // One dataset, several learners/repeats: shard spans cut through the
  // middle of the dataset's task block, so every shard still owns the
  // single dataset (and must prepare it) unless its span is empty.
  TaskManifest manifest = SmallManifest(1, 3, 4);  // 12 tasks, 1 dataset
  ASSERT_EQ(manifest.tasks().size(), 12u);
  for (int n : {1, 2, 3, 5, 12, 20}) {
    SCOPED_TRACE("count=" + std::to_string(n));
    std::set<std::string> seen;
    for (int i = 0; i < n; ++i) {
      Shard shard{i, n};
      std::vector<TaskIdentity> tasks = manifest.ShardTasks(shard);
      for (const TaskIdentity& task : tasks) {
        EXPECT_TRUE(seen.insert(sweep::TaskKey(task)).second);
      }
      std::vector<std::string> owned = manifest.ShardDatasets(shard);
      if (tasks.empty()) {
        EXPECT_TRUE(owned.empty());
      } else {
        EXPECT_EQ(owned, (std::vector<std::string>{"data0"}));
      }
    }
    EXPECT_EQ(seen.size(), 12u);
  }
}

TEST(ManifestTest, ShardDatasetsCoverExactlyTheSpan) {
  TaskManifest manifest = SmallManifest(4, 2, 1);  // 8 tasks, 2 per dataset
  std::vector<std::string> first = manifest.ShardDatasets(Shard{0, 2});
  std::vector<std::string> second = manifest.ShardDatasets(Shard{1, 2});
  EXPECT_EQ(first, (std::vector<std::string>{"data0", "data1"}));
  EXPECT_EQ(second, (std::vector<std::string>{"data2", "data3"}));
}

TEST(ManifestTest, FingerprintSeparatesGrids) {
  uint64_t base = SmallManifest(3, 2, 2).Fingerprint();
  EXPECT_EQ(base, SmallManifest(3, 2, 2).Fingerprint());
  EXPECT_NE(base, SmallManifest(4, 2, 2).Fingerprint());
  EXPECT_NE(base, SmallManifest(3, 3, 2).Fingerprint());
  EXPECT_NE(base, SmallManifest(3, 2, 1).Fingerprint());
}

TEST(ManifestTest, ParseShard) {
  Shard shard;
  EXPECT_TRUE(sweep::ParseShard("0/1", &shard));
  EXPECT_EQ(shard.index, 0);
  EXPECT_EQ(shard.count, 1);
  EXPECT_TRUE(sweep::ParseShard("2/7", &shard));
  EXPECT_EQ(shard.index, 2);
  EXPECT_EQ(shard.count, 7);
  for (const char* bad : {"", "1", "1/", "/2", "2/2", "3/2", "-1/2", "1/-2",
                          "1/2/3", "a/b", "1/2 ", "01x/2"}) {
    EXPECT_FALSE(sweep::ParseShard(bad, &shard)) << bad;
  }
}

TEST(ResultLogTest, DoubleCodecIsBitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           -123456.789,
                           std::numeric_limits<double>::quiet_NaN(),
                           -std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (double value : values) {
    std::string encoded = sweep::EncodeDouble(value);
    EXPECT_EQ(encoded.size(), 16u);
    double decoded = 0.0;
    ASSERT_TRUE(sweep::DecodeDouble(encoded, &decoded)) << encoded;
    EXPECT_EQ(std::bit_cast<uint64_t>(value), std::bit_cast<uint64_t>(decoded))
        << encoded;
  }
  double out = 0.0;
  EXPECT_FALSE(sweep::DecodeDouble("xyz", &out));
  EXPECT_FALSE(sweep::DecodeDouble("0123456789abcde", &out));   // 15 digits
  EXPECT_FALSE(sweep::DecodeDouble("0123456789ABCDEF", &out));  // uppercase
}

TEST(ResultLogTest, DoubleCodecFuzzRoundTripsEveryBitPattern) {
  // Seeded fuzz over the full 64-bit space: whatever bits a double
  // carries — normals, denormals, infinities, NaNs with arbitrary
  // payloads — the encode/decode round trip must reproduce them
  // exactly. This is the invariant bit-identical merges stand on.
  Rng rng(0x0ebe2c4f00d5eedULL);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t bits = rng.NextSeed();
    const double value = std::bit_cast<double>(bits);
    double decoded = 0.0;
    ASSERT_TRUE(sweep::DecodeDouble(sweep::EncodeDouble(value), &decoded));
    ASSERT_EQ(std::bit_cast<uint64_t>(decoded), bits)
        << sweep::EncodeDouble(value);
  }
  // Every single-bit NaN payload, both quiet and signalling halves,
  // both signs — plus the payload-less edge values.
  const uint64_t exponent = 0x7ffULL << 52;
  for (int bit = 0; bit < 52; ++bit) {
    for (uint64_t sign : {0ULL, 1ULL << 63}) {
      const uint64_t bits = sign | exponent | (1ULL << bit);
      double decoded = 0.0;
      ASSERT_TRUE(sweep::DecodeDouble(
          sweep::EncodeDouble(std::bit_cast<double>(bits)), &decoded));
      ASSERT_EQ(std::bit_cast<uint64_t>(decoded), bits);
    }
  }
  const std::vector<uint64_t> edges = {
      std::bit_cast<uint64_t>(0.0), std::bit_cast<uint64_t>(-0.0),
      exponent, (uint64_t{1} << 63) | exponent};
  for (uint64_t bits : edges) {
    double decoded = 0.0;
    ASSERT_TRUE(sweep::DecodeDouble(
        sweep::EncodeDouble(std::bit_cast<double>(bits)), &decoded));
    ASSERT_EQ(std::bit_cast<uint64_t>(decoded), bits);
  }
}

LoggedRow SampleRunRow() {
  LoggedRow row;
  row.task = {"stream-a", "Naive-DT", 1};
  row.result.dataset = "stream-a";
  row.result.learner = "Naive Decision Tree";
  row.result.mean_loss = 0.25;
  row.result.faded_loss = std::numeric_limits<double>::quiet_NaN();
  row.result.throughput = 12345.5;
  row.result.peak_memory_bytes = 987654321;
  row.result.train_seconds = 1.5;
  row.result.test_seconds = 0.5;
  row.result.per_window_loss = {0.5, std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::quiet_NaN(),
                                -0.0};
  return row;
}

void ExpectRowsEqualBitExact(const LoggedRow& a, const LoggedRow& b) {
  EXPECT_EQ(a.task.dataset, b.task.dataset);
  EXPECT_EQ(a.task.learner, b.task.learner);
  EXPECT_EQ(a.task.repeat, b.task.repeat);
  ASSERT_EQ(a.not_applicable, b.not_applicable);
  if (a.not_applicable) return;
  EXPECT_EQ(a.result.learner, b.result.learner);
  EXPECT_EQ(std::bit_cast<uint64_t>(a.result.mean_loss),
            std::bit_cast<uint64_t>(b.result.mean_loss));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.result.faded_loss),
            std::bit_cast<uint64_t>(b.result.faded_loss));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.result.throughput),
            std::bit_cast<uint64_t>(b.result.throughput));
  EXPECT_EQ(a.result.peak_memory_bytes, b.result.peak_memory_bytes);
  ASSERT_EQ(a.result.per_window_loss.size(), b.result.per_window_loss.size());
  for (size_t i = 0; i < a.result.per_window_loss.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a.result.per_window_loss[i]),
              std::bit_cast<uint64_t>(b.result.per_window_loss[i]));
  }
}

TEST(ResultLogTest, RowRoundTripIsBitExact) {
  LoggedRow row = SampleRunRow();
  LoggedRow parsed;
  ASSERT_TRUE(sweep::ParseRow(sweep::FormatRow(row), &parsed));
  ExpectRowsEqualBitExact(row, parsed);

  // Empty window list.
  row.result.per_window_loss.clear();
  ASSERT_TRUE(sweep::ParseRow(sweep::FormatRow(row), &parsed));
  ExpectRowsEqualBitExact(row, parsed);

  // N/A row.
  LoggedRow na;
  na.task = {"stream-b", "ARF", 2};
  na.not_applicable = true;
  ASSERT_TRUE(sweep::ParseRow(sweep::FormatRow(na), &parsed));
  ExpectRowsEqualBitExact(na, parsed);

  // Torn / malformed lines never parse.
  for (const char* bad :
       {"", "run", "run\td\tl", "bogus\td\tl\t0",
        "na\td\tl\tnotanint", "na\td\tl\t0\textra"}) {
    EXPECT_FALSE(sweep::ParseRow(bad, &parsed)) << bad;
  }
  std::string torn = sweep::FormatRow(SampleRunRow());
  torn.resize(torn.size() / 2);
  EXPECT_FALSE(sweep::ParseRow(torn, &parsed));
}

LogHeader TestHeader() {
  LogHeader header;
  header.base_seed = 42;
  header.scale = 0.125;
  header.repeats = 2;
  header.epochs = 3;
  header.manifest_fingerprint = 0xdeadbeefcafef00dULL;
  header.shard = {1, 3};
  return header;
}

void AppendRaw(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

TEST(ResultLogTest, WriterReaderRoundTripAndTornTail) {
  const std::string path = ::testing::TempDir() + "sweep_log_roundtrip.log";
  std::remove(path.c_str());
  LogHeader header = TestHeader();
  LoggedRow run = SampleRunRow();
  {
    Result<std::unique_ptr<ResultLogWriter>> writer =
        ResultLogWriter::Open(path, header, /*resume=*/false);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_TRUE((*writer)->done().empty());
    (*writer)->Append(run.task, run.result);
    (*writer)->AppendNotApplicable({"stream-b", "ARF", 0});
  }
  // Simulate a crash mid-append: a torn, newline-less trailing line.
  AppendRaw(path, "run\tstream-c\tNaive-DT\t0\ttorn");

  Result<sweep::ResultLogContents> contents = sweep::ReadResultLog(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(sweep::CompatibleHeaders(contents->header, header));
  EXPECT_EQ(contents->header.shard.index, 1);
  EXPECT_EQ(contents->header.shard.count, 3);
  ASSERT_EQ(contents->rows.size(), 2u);
  EXPECT_EQ(contents->dropped_lines, 1);
  ExpectRowsEqualBitExact(contents->rows[0], run);
  EXPECT_TRUE(contents->rows[1].not_applicable);

  // Resume: keeps the two valid rows, compacts the torn tail away.
  Result<std::unique_ptr<ResultLogWriter>> resumed =
      ResultLogWriter::Open(path, header, /*resume=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ((*resumed)->done(),
            (std::set<std::string>{"stream-a|Naive-DT|1", "stream-b|ARF|0"}));
  resumed->reset();
  contents = sweep::ReadResultLog(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->rows.size(), 2u);
  EXPECT_EQ(contents->dropped_lines, 0);

  // A different sweep must not be able to resume onto this log.
  LogHeader other = header;
  other.base_seed = 43;
  Result<std::unique_ptr<ResultLogWriter>> rejected =
      ResultLogWriter::Open(path, other, /*resume=*/true);
  EXPECT_FALSE(rejected.ok());
  std::remove(path.c_str());
}

TaskFailure SampleFailure() {
  TaskFailure failure;
  failure.task = {"stream-a", "Naive-DT", 0};
  failure.kind = TaskFailureKind::kNonFinite;
  failure.message = "loss exploded";
  failure.elapsed_seconds = 1.75;
  return failure;
}

TEST(ResultLogTest, FailureRowRoundTripIsBitExact) {
  for (TaskFailureKind kind :
       {TaskFailureKind::kException, TaskFailureKind::kNonFinite,
        TaskFailureKind::kTransient, TaskFailureKind::kPrepare}) {
    TaskFailure failure = SampleFailure();
    failure.kind = kind;
    failure.elapsed_seconds = 0.1;  // not exactly representable
    TaskFailure parsed;
    ASSERT_TRUE(
        sweep::ParseFailureRow(sweep::FormatFailureRow(failure), &parsed));
    EXPECT_EQ(sweep::TaskKey(parsed.task), sweep::TaskKey(failure.task));
    EXPECT_EQ(parsed.kind, failure.kind);
    EXPECT_EQ(parsed.message, failure.message);
    EXPECT_EQ(std::bit_cast<uint64_t>(parsed.elapsed_seconds),
              std::bit_cast<uint64_t>(failure.elapsed_seconds));
  }

  // Tabs and newlines in the message (an exception's what() can hold
  // anything) are sanitised so the record stays one line.
  TaskFailure messy = SampleFailure();
  messy.message = "first\tsecond\nthird\rfourth";
  std::string line = sweep::FormatFailureRow(messy);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  TaskFailure parsed;
  ASSERT_TRUE(sweep::ParseFailureRow(line, &parsed));
  EXPECT_EQ(parsed.message, "first second third fourth");

  const std::string elapsed = sweep::EncodeDouble(1.75);
  const std::vector<std::string> bad_lines = {
      "", "fail",
      "fail\td\tl\t0\texception\t" + elapsed,  // no message field
      "fail\td\tl\t0\tbogus-kind\t" + elapsed + "\tmsg",
      "fail\td\tl\tnotanint\texception\t" + elapsed + "\tmsg",
      "fail\td\tl\t-1\texception\t" + elapsed + "\tmsg",
      "fail\t\tl\t0\texception\t" + elapsed + "\tmsg",
      "fail\td\tl\t0\texception\tnothex\tmsg",
      "run\td\tl\t0\texception\t" + elapsed + "\tmsg"};
  for (const std::string& bad : bad_lines) {
    EXPECT_FALSE(sweep::ParseFailureRow(bad, &parsed)) << bad;
  }
}

TEST(ResultLogTest, ResumeKeepsFailuresAndRetryFailedCompactsThemAway) {
  const std::string path = ::testing::TempDir() + "sweep_log_failures.log";
  std::remove(path.c_str());
  LogHeader header = TestHeader();
  LoggedRow run = SampleRunRow();
  TaskFailure failure = SampleFailure();
  {
    Result<std::unique_ptr<ResultLogWriter>> writer =
        ResultLogWriter::Open(path, header, /*resume=*/false);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)->Append(run.task, run.result).ok());
    ASSERT_TRUE((*writer)->AppendFailure(failure).ok());
  }

  Result<sweep::ResultLogContents> contents = sweep::ReadResultLog(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->header.version, 2);
  ASSERT_EQ(contents->failures.size(), 1u);
  EXPECT_EQ(sweep::TaskKey(contents->failures[0].task),
            "stream-a|Naive-DT|0");

  // A plain resume keeps the failure record and reports it via
  // failed() — disjoint from done() — so known-bad tasks are skipped.
  {
    Result<std::unique_ptr<ResultLogWriter>> resumed =
        ResultLogWriter::Open(path, header, /*resume=*/true);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ((*resumed)->done(),
              (std::set<std::string>{"stream-a|Naive-DT|1"}));
    EXPECT_EQ((*resumed)->failed(),
              (std::set<std::string>{"stream-a|Naive-DT|0"}));
  }
  contents = sweep::ReadResultLog(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->failures.size(), 1u);

  // --retry-failed compacts the failure record away: exactly the
  // failed task becomes pending again.
  {
    Result<std::unique_ptr<ResultLogWriter>> retry = ResultLogWriter::Open(
        path, header, /*resume=*/true, nullptr, /*retry_failed=*/true);
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    EXPECT_EQ((*retry)->done(),
              (std::set<std::string>{"stream-a|Naive-DT|1"}));
    EXPECT_TRUE((*retry)->failed().empty());
  }
  contents = sweep::ReadResultLog(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->failures.empty());
  ASSERT_EQ(contents->rows.size(), 1u);
  ExpectRowsEqualBitExact(contents->rows[0], run);
  std::remove(path.c_str());
}

TEST(ResultLogTest, RunRowSupersedesStaleFailureRecordOnResume) {
  // A --retry-failed rescue that crashed right after re-running the
  // task leaves BOTH a failure record and a valid row for the same
  // key. The row wins: the task counts as done and the stale failure
  // record is compacted away.
  const std::string path = ::testing::TempDir() + "sweep_log_stale.log";
  std::remove(path.c_str());
  LogHeader header = TestHeader();
  LoggedRow run = SampleRunRow();
  TaskFailure failure = SampleFailure();
  failure.task = run.task;  // same identity
  {
    Result<std::unique_ptr<ResultLogWriter>> writer =
        ResultLogWriter::Open(path, header, /*resume=*/false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendFailure(failure).ok());
    ASSERT_TRUE((*writer)->Append(run.task, run.result).ok());
  }
  Result<std::unique_ptr<ResultLogWriter>> resumed =
      ResultLogWriter::Open(path, header, /*resume=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ((*resumed)->done(),
            (std::set<std::string>{"stream-a|Naive-DT|1"}));
  EXPECT_TRUE((*resumed)->failed().empty());
  resumed->reset();
  Result<sweep::ResultLogContents> contents = sweep::ReadResultLog(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->failures.empty());
  ASSERT_EQ(contents->rows.size(), 1u);
  std::remove(path.c_str());
}

TEST(ResultLogTest, V1FilesReadBackExactlyAndFailLinesDrop) {
  const std::string path = ::testing::TempDir() + "sweep_log_v1.log";
  std::remove(path.c_str());
  LogHeader v1 = TestHeader();
  v1.version = 1;
  LoggedRow run = SampleRunRow();
  {
    Result<std::unique_ptr<ResultLogWriter>> writer =
        ResultLogWriter::Open(path, v1, /*resume=*/false);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)->Append(run.task, run.result).ok());
  }
  // A "fail" record inside a v1 file is an unknown record: dropped
  // like any other malformed line, never misparsed as a row.
  AppendRaw(path, sweep::FormatFailureRow(SampleFailure()) + "\n");

  Result<sweep::ResultLogContents> contents = sweep::ReadResultLog(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->header.version, 1);
  ASSERT_EQ(contents->rows.size(), 1u);
  ExpectRowsEqualBitExact(contents->rows[0], run);
  EXPECT_TRUE(contents->failures.empty());
  EXPECT_EQ(contents->dropped_lines, 1);

  // v1 and v2 headers of the same sweep are mutually compatible —
  // old shard logs keep merging with new ones.
  LogHeader v2 = TestHeader();
  EXPECT_EQ(v2.version, 2);
  EXPECT_TRUE(sweep::CompatibleHeaders(contents->header, v2));
  std::remove(path.c_str());
}

TEST(MergeTest, FaultFreeV1AndV2LogsMergeByteIdentically) {
  // The v2 upgrade is invisible for fault-free sweeps: the same rows
  // written through a v1 header and a v2 header merge to byte-equal
  // outcomes.
  TaskManifest manifest = SmallManifest(1, 1, 2);
  std::vector<std::string> dumps;
  for (int version : {1, 2}) {
    LogHeader header = TestHeader();
    header.version = version;
    header.manifest_fingerprint = manifest.Fingerprint();
    const std::string path = ::testing::TempDir() + "sweep_log_v" +
                             std::to_string(version) + "_merge.log";
    std::remove(path.c_str());
    {
      Result<std::unique_ptr<ResultLogWriter>> writer =
          ResultLogWriter::Open(path, header, /*resume=*/false);
      ASSERT_TRUE(writer.ok()) << writer.status().ToString();
      for (int rep = 0; rep < 2; ++rep) {
        LoggedRow run = SampleRunRow();
        run.task = {"data0", "algo0", rep};
        run.result.dataset = "data0";
        ASSERT_TRUE((*writer)->Append(run.task, run.result).ok());
      }
    }
    Result<SweepOutcome> merged =
        sweep::MergeShardLogs(manifest, header, {path});
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    dumps.push_back(sweep::DumpOutcome(*merged));
    std::remove(path.c_str());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

// ---------------------------------------------------------------------
// End-to-end sharding: tiny real sweeps through real log files.

std::vector<CorpusEntry> MixedEntries(int per_task) {
  std::vector<CorpusEntry> out;
  int cls = 0;
  int reg = 0;
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.task == TaskType::kClassification && cls < per_task) {
      out.push_back(entry);
      ++cls;
    } else if (entry.task == TaskType::kRegression && reg < per_task) {
      out.push_back(entry);
      ++reg;
    }
  }
  return out;
}

SweepConfig FastConfig(int threads) {
  SweepConfig config;
  config.base_config.seed = 42;
  config.base_config.epochs = 2;
  config.base_config.hidden_sizes = {8};
  config.base_config.tree_max_depth = 6;
  config.base_config.ensemble_size = 3;
  config.repeats = 2;
  config.threads = threads;
  config.scale = 0.0;
  config.pipeline.imputer = "mean";
  return config;
}

std::string LogPath(const std::string& tag, int index, int count) {
  return ::testing::TempDir() + "sweep_" + tag + "_" +
         std::to_string(index) + "of" + std::to_string(count) + ".log";
}

TEST(SweepShardTest, MergedShardsAreBitIdenticalToUnshardedRun) {
  // Naive-Bayes is N/A on the regression entries, so sharded N/A
  // logging and merge-side N/A reconstruction are exercised too.
  const std::vector<CorpusEntry> entries = MixedEntries(2);
  ASSERT_EQ(entries.size(), 4u);
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT",
                                             "Naive-Bayes"};
  SweepConfig config = FastConfig(2);
  const SweepOutcome baseline =
      ParallelSweepEntries(entries, learners, config);
  const std::string expected = sweep::DumpOutcome(baseline);
  TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);
  LogHeader header = sweep::MakeLogHeader(manifest, config, Shard{});

  for (int n = 1; n <= 3; ++n) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    std::vector<std::string> logs;
    for (int i = 0; i < n; ++i) {
      sweep::ShardRunOptions options;
      options.config = config;
      options.shard = Shard{i, n};
      options.log_path = LogPath("merge", i, n);
      std::remove(options.log_path.c_str());
      Result<sweep::ShardRunStats> stats =
          sweep::RunCorpusShard(entries, learners, options);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats->tasks_executed + stats->na_logged,
                stats->shard_tasks);
      logs.push_back(options.log_path);
    }
    Result<SweepOutcome> merged =
        sweep::MergeShardLogs(manifest, header, logs);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(sweep::DumpOutcome(*merged), expected);
    for (const std::string& log : logs) std::remove(log.c_str());
  }
}

TEST(SweepShardTest, ShardPreparesOnlyItsOwnDatasets) {
  const std::vector<CorpusEntry> entries = MixedEntries(2);
  // Both learners apply to every dataset, so every owned dataset is
  // prepared exactly once and non-owned ones never are.
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT"};
  SweepConfig config = FastConfig(2);
  TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);
  for (int i = 0; i < 2; ++i) {
    sweep::ShardRunOptions options;
    options.config = config;
    options.shard = Shard{i, 2};
    options.log_path = LogPath("prepare", i, 2);
    std::remove(options.log_path.c_str());
    Result<sweep::ShardRunStats> stats =
        sweep::RunCorpusShard(entries, learners, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    size_t owned = manifest.ShardDatasets(options.shard).size();
    EXPECT_EQ(stats->streams_prepared, static_cast<int64_t>(owned));
    EXPECT_LT(owned, entries.size());
    std::remove(options.log_path.c_str());
  }
}

TEST(SweepShardTest, ResumeExecutesOnlyTasksWithoutAValidRow) {
  const std::vector<CorpusEntry> entries = MixedEntries(2);
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT"};
  SweepConfig config = FastConfig(1);  // serial => deterministic row order
  TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);
  const int64_t total = static_cast<int64_t>(manifest.tasks().size());
  const std::string path = LogPath("resume", 0, 1);
  std::remove(path.c_str());

  sweep::ShardRunOptions options;
  options.config = config;
  options.shard = Shard{0, 1};
  options.log_path = path;
  Result<sweep::ShardRunStats> full =
      sweep::RunCorpusShard(entries, learners, options);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->tasks_executed, total);
  const SweepOutcome baseline =
      ParallelSweepEntries(entries, learners, config);

  // Simulate a crash: keep the header + the first two result rows,
  // then a torn half-written line.
  Result<sweep::ResultLogContents> contents = sweep::ReadResultLog(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_GE(contents->rows.size(), 3u);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  LogHeader header = sweep::MakeLogHeader(manifest, config, options.shard);
  {
    Result<std::unique_ptr<ResultLogWriter>> rewrite =
        ResultLogWriter::Open(path, header, /*resume=*/false);
    ASSERT_TRUE(rewrite.ok());
    for (size_t i = 0; i < 2; ++i) {
      (*rewrite)->Append(contents->rows[i].task, contents->rows[i].result);
    }
  }
  std::string torn = sweep::FormatRow(contents->rows[2]);
  torn.resize(torn.size() - 5);
  AppendRaw(path, torn);

  // Resume: exactly the two logged tasks are skipped, the rest re-run,
  // and the merged outcome is still bit-identical to the baseline.
  options.resume = true;
  Result<sweep::ShardRunStats> resumed =
      sweep::RunCorpusShard(entries, learners, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->tasks_resumed, 2);
  EXPECT_EQ(resumed->tasks_executed, total - 2);
  Result<SweepOutcome> merged = sweep::MergeShardLogs(
      manifest, sweep::MakeLogHeader(manifest, config, Shard{}), {path});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(sweep::DumpOutcome(*merged), sweep::DumpOutcome(baseline));

  // Resuming a *finished* shard re-executes nothing.
  Result<sweep::ShardRunStats> again =
      sweep::RunCorpusShard(entries, learners, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->tasks_executed, 0);
  EXPECT_EQ(again->tasks_resumed, total);
  EXPECT_EQ(again->streams_prepared, 0);
  std::remove(path.c_str());
}

TEST(MergeTest, RejectsIncompleteCoverageAndForeignLogs) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT"};
  SweepConfig config = FastConfig(1);
  TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);

  sweep::ShardRunOptions options;
  options.config = config;
  options.shard = Shard{0, 2};
  options.log_path = LogPath("partial", 0, 2);
  std::remove(options.log_path.c_str());
  Result<sweep::ShardRunStats> stats =
      sweep::RunCorpusShard(entries, learners, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  LogHeader header = sweep::MakeLogHeader(manifest, config, Shard{});
  Result<SweepOutcome> incomplete =
      sweep::MergeShardLogs(manifest, header, {options.log_path});
  ASSERT_FALSE(incomplete.ok());
  EXPECT_NE(incomplete.status().ToString().find("incomplete coverage"),
            std::string::npos);

  LogHeader foreign = header;
  foreign.base_seed = 777;
  Result<SweepOutcome> mismatched =
      sweep::MergeShardLogs(manifest, foreign, {options.log_path});
  EXPECT_FALSE(mismatched.ok());
  std::remove(options.log_path.c_str());
}

TEST(MergeTest, SingleDatasetManifestMergesFromManyPartialShardLogs) {
  // A single-dataset grid sharded finer than its task count: 6 tasks
  // over 8 shard logs, so some logs carry nothing but a header.
  // Coverage must still be exact and the merged cells must reassemble
  // per-repeat runs in order. Rows are synthetic — this pins the
  // log/merge layer alone.
  TaskManifest manifest = SmallManifest(1, 2, 3);  // 6 tasks, 1 dataset
  LogHeader header;
  header.base_seed = 9;
  header.scale = 0.5;
  header.repeats = 3;
  header.epochs = 4;
  header.manifest_fingerprint = manifest.Fingerprint();

  auto synthetic_result = [](const TaskIdentity& task) {
    EvalResult result;
    result.dataset = task.dataset;
    result.learner = task.learner + "-display";
    result.mean_loss = 0.125 * (task.repeat + 1);
    result.faded_loss = 0.0625 * (task.repeat + 1);
    result.throughput = 100.0 + task.repeat;
    result.peak_memory_bytes = 1000 + task.repeat;
    result.per_window_loss = {0.5, 0.25 * (task.repeat + 1)};
    return result;
  };

  const int n = 8;
  std::vector<std::string> logs;
  for (int i = 0; i < n; ++i) {
    Shard shard{i, n};
    LogHeader shard_header = header;
    shard_header.shard = shard;
    std::string path = LogPath("singleds", i, n);
    std::remove(path.c_str());
    Result<std::unique_ptr<ResultLogWriter>> writer =
        ResultLogWriter::Open(path, shard_header, /*resume=*/false);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const TaskIdentity& task : manifest.ShardTasks(shard)) {
      ASSERT_TRUE((*writer)->Append(task, synthetic_result(task)).ok());
    }
    logs.push_back(std::move(path));
  }

  Result<SweepOutcome> merged =
      sweep::MergeShardLogs(manifest, header, logs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->tasks_run, 6);
  ASSERT_EQ(merged->rows.size(), 1u);
  ASSERT_EQ(merged->rows[0].cells.size(), 2u);
  for (const SweepCell& cell : merged->rows[0].cells) {
    ASSERT_EQ(cell.runs.size(), 3u);
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(cell.runs[rep].mean_loss, 0.125 * (rep + 1));
      EXPECT_EQ(cell.runs[rep].peak_memory_bytes, 1000 + rep);
    }
  }

  // Dropping a log that carries rows breaks coverage (shard 0's span
  // is empty with 6 tasks over 8 shards, so shard 1 is the first one
  // whose log actually holds a row).
  ASSERT_TRUE(manifest.ShardTasks(Shard{0, n}).empty());
  ASSERT_FALSE(manifest.ShardTasks(Shard{1, n}).empty());
  std::vector<std::string> partial = logs;
  partial.erase(partial.begin() + 1);
  Result<SweepOutcome> incomplete =
      sweep::MergeShardLogs(manifest, header, partial);
  ASSERT_FALSE(incomplete.ok());
  EXPECT_NE(incomplete.status().ToString().find("incomplete coverage"),
            std::string::npos);
  for (const std::string& log : logs) std::remove(log.c_str());
}

}  // namespace
}  // namespace oebench
