// Task-level failure isolation + chaos harness suite (ctest label:
// check-chaos). What it enforces:
//  - ChaosSchedule parsing and the ChaosInjector's determinism
//    contract: ordinal faults fire once per distinct task identity,
//    transient faults are identity-keyed (bit-reproducible at any
//    thread count) and clear on the first in-process retry;
//  - the sweep engine's failure domain: a task that throws, explodes
//    to NaN or stalls costs exactly its cell — structured TaskFailure,
//    quarantined SweepCell — never the pool, never the process;
//  - prepare failures quarantine the whole dataset row with per-task
//    kPrepare records and a clean Status, not an abort;
//  - the wall-clock watchdog reports overlong tasks without killing
//    them, and its RAII Scope survives moves, early release,
//    unregister-after-report, and concurrent watch/release/shutdown;
//  - merge quarantine: failure records count as covered-but-
//    quarantined, a run row supersedes a failure record, strict merges
//    fail, FormatOutcomeTable prints a distinct FAILED marker;
//  - the recovery contract end to end: a chaos run (throw + NaN +
//    slow + transient in one schedule) leaves every shard with a clean
//    Status and a v2 log naming the exact failed tasks, and
//    --retry-failed + merge reproduces the fault-free outcome
//    bit-identically;
//  - oebench_sweep's chaos/recovery CLI: --dry-run, --chaos-schedule,
//    --max-task-failures, --retry-failed, --allow-quarantined
//    (exec'd via OEBENCH_SWEEP_BIN).

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/io_env.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/watchdog.h"
#include "core/chaos.h"
#include "core/evaluator.h"
#include "core/parallel_eval.h"
#include "streamgen/corpus.h"
#include "sweep/manifest.h"
#include "sweep/merge.h"
#include "sweep/result_log.h"
#include "sweep/shard_runner.h"

namespace oebench {
namespace {

using sweep::LogHeader;
using sweep::LoggedRow;
using sweep::ResultLogWriter;
using sweep::Shard;
using sweep::SweepGrid;
using sweep::TaskManifest;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "chaos_" + name;
}

TaskIdentity Task(const std::string& dataset, const std::string& learner,
                  int repeat) {
  return TaskIdentity{dataset, learner, repeat};
}

// ---------------------------------------------------------------------
// ChaosSchedule parsing.

TEST(ChaosScheduleTest, ParsesEveryClauseAndRoundTrips) {
  Result<ChaosSchedule> parsed = ChaosSchedule::Parse(
      "throw-at-task=3,nan-at-task=5,slow-at-task=2:50,transient=7:0.25");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->throw_at_task, 3);
  EXPECT_EQ(parsed->nan_at_task, 5);
  EXPECT_EQ(parsed->slow_at_task, 2);
  EXPECT_EQ(parsed->slow_ms, 50);
  EXPECT_EQ(parsed->transient_seed, 7u);
  EXPECT_EQ(parsed->transient_p, 0.25);
  // ToString is canonical and re-parses to the same schedule.
  Result<ChaosSchedule> again = ChaosSchedule::Parse(parsed->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->ToString(), parsed->ToString());

  Result<ChaosSchedule> throw_only = ChaosSchedule::Parse("throw-at-task=1");
  ASSERT_TRUE(throw_only.ok());
  EXPECT_EQ(throw_only->throw_at_task, 1);
  EXPECT_EQ(throw_only->nan_at_task, 0);
  EXPECT_EQ(throw_only->transient_p, 0.0);
}

TEST(ChaosScheduleTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"bogus=1", "throw-at-task", "throw-at-task=", "=3",
        "throw-at-task=0", "throw-at-task=-1", "throw-at-task=x",
        "nan-at-task=0", "slow-at-task=3", "slow-at-task=0:5",
        "slow-at-task=3:0", "slow-at-task=3:-1", "transient=42",
        "transient=42:1.5", "transient=42:-0.1", "transient=x:0.5",
        "throw-at-task=1,throw-at-task=2", "transient=1:0.5,transient=2:0.5",
        "throw-at-task=1,,nan-at-task=2"}) {
    Result<ChaosSchedule> parsed = ChaosSchedule::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
  }
}

// ---------------------------------------------------------------------
// ChaosInjector semantics.

TEST(ChaosInjectorTest, OrdinalThrowFiresOnTheSameIdentityEveryAttempt) {
  ChaosSchedule schedule;
  schedule.throw_at_task = 2;
  ChaosInjector injector(schedule);

  EXPECT_NO_THROW(injector.OnTaskStart(Task("d", "a", 0)));  // ordinal 1
  EXPECT_THROW(injector.OnTaskStart(Task("d", "a", 1)),      // ordinal 2
               std::runtime_error);
  // A retry of the same identity keeps its ordinal: it throws again —
  // throw-at-task is a *permanent* fault, never cleared by retry.
  EXPECT_THROW(injector.OnTaskStart(Task("d", "a", 1)), std::runtime_error);
  // ...and a different identity gets ordinal 3: unaffected.
  EXPECT_NO_THROW(injector.OnTaskStart(Task("d", "b", 0)));
  EXPECT_EQ(injector.tasks_started(), 3);
  EXPECT_GE(injector.faults_injected(), 2);
}

TEST(ChaosInjectorTest, NanPoisonsExactlyTheScheduledOrdinal) {
  ChaosSchedule schedule;
  schedule.nan_at_task = 1;
  ChaosInjector injector(schedule);
  EvalResult first;
  first.mean_loss = 0.5;
  first.faded_loss = 0.25;
  injector.OnTaskResult(Task("d", "a", 0), &first);  // ordinal 1: poisoned
  EXPECT_TRUE(std::isnan(first.mean_loss));
  EXPECT_TRUE(std::isnan(first.faded_loss));

  EvalResult second;
  second.mean_loss = 0.5;
  second.faded_loss = 0.25;
  injector.OnTaskResult(Task("d", "a", 1), &second);  // ordinal 2: untouched
  EXPECT_EQ(second.mean_loss, 0.5);
  EXPECT_EQ(second.faded_loss, 0.25);
  EXPECT_EQ(injector.faults_injected(), 1);
}

TEST(ChaosInjectorTest, TransientFiresFirstAttemptOnlyAndIsIdentityKeyed) {
  ChaosSchedule schedule;
  schedule.transient_seed = 5;
  schedule.transient_p = 1.0;  // every identity draws a fault

  ChaosInjector injector(schedule);
  EXPECT_THROW(injector.OnTaskStart(Task("d", "a", 0)), TransientTaskError);
  // The in-process retry of the same identity sails through — that is
  // what makes the fault transient.
  EXPECT_NO_THROW(injector.OnTaskStart(Task("d", "a", 0)));
  EXPECT_THROW(injector.OnTaskStart(Task("d", "b", 0)), TransientTaskError);

  // Identity-keyed and seeded: a fresh injector with the same schedule
  // draws the same fate for the same identities, in any order.
  ChaosInjector again(schedule);
  EXPECT_THROW(again.OnTaskStart(Task("d", "b", 0)), TransientTaskError);
  EXPECT_THROW(again.OnTaskStart(Task("d", "a", 0)), TransientTaskError);

  ChaosSchedule quiet;
  quiet.transient_seed = 5;
  quiet.transient_p = 0.0;
  ChaosInjector none(quiet);
  EXPECT_NO_THROW(none.OnTaskStart(Task("d", "a", 0)));
  EXPECT_EQ(none.faults_injected(), 0);
}

// ---------------------------------------------------------------------
// TaskWatchdog: report, never kill.

TEST(TaskWatchdogTest, ReportsOverlongTaskOnceAndSparesFastOnes) {
  std::atomic<int> reports{0};
  std::string reported_label;
  std::mutex mu;
  TaskWatchdog dog(20, [&](const std::string& label, double elapsed) {
    std::lock_guard<std::mutex> lock(mu);
    ++reports;
    reported_label = label;
    EXPECT_GE(elapsed, 0.02);
  });
  {
    TaskWatchdog::Scope fast = dog.Watch("fast-task");
    // Released immediately: never reported.
  }
  {
    TaskWatchdog::Scope slow = dog.Watch("slow-task");
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    // The task is overlong but still *running* — the watchdog must
    // have reported it (once) without doing anything to it.
    EXPECT_EQ(reports.load(), 1);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(reports.load(), 1);  // once per task, not once per scan
  EXPECT_EQ(dog.reports(), 1);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(reported_label, "slow-task");
}

TEST(TaskWatchdogLifecycleTest, MovedScopeKeepsTheTaskWatched) {
  std::atomic<int> reports{0};
  TaskWatchdog dog(20, [&](const std::string& label, double) {
    EXPECT_EQ(label, "moved-task");
    ++reports;
  });
  TaskWatchdog::Scope outer;
  {
    TaskWatchdog::Scope inner = dog.Watch("moved-task");
    outer = std::move(inner);
    // The moved-from Scope dies here; the registration must survive
    // in `outer` — exactly one unregistration, no double-release.
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(reports.load(), 1);  // still watched after the move
  TaskWatchdog::Scope moved_again = std::move(outer);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(reports.load(), 1);  // once per task, moves included
}

TEST(TaskWatchdogLifecycleTest, MoveAssignReleasesTheOverwrittenTask) {
  std::atomic<int> reports{0};
  std::mutex mu;
  std::vector<std::string> labels;
  TaskWatchdog dog(30, [&](const std::string& label, double) {
    std::lock_guard<std::mutex> lock(mu);
    labels.push_back(label);
    ++reports;
  });
  TaskWatchdog::Scope scope = dog.Watch("overwritten");
  // Assigning a new watch over an active Scope must unregister the old
  // task immediately — "overwritten" never reaches the limit.
  scope = dog.Watch("survivor");
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(reports.load(), 1);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], "survivor");
}

TEST(TaskWatchdogLifecycleTest, EarlyDestructionBeatsTheScanner) {
  // A Scope released before the limit is never reported, even though
  // the scanner thread may be mid-scan while we release.
  std::atomic<int> reports{0};
  TaskWatchdog dog(40, [&](const std::string&, double) { ++reports; });
  for (int i = 0; i < 50; ++i) {
    TaskWatchdog::Scope scope = dog.Watch("ephemeral");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(reports.load(), 0);
}

TEST(TaskWatchdogLifecycleTest, UnregisterAfterReportIsSafe) {
  // The scanner marks a task reported while it is still registered;
  // releasing the Scope afterwards must neither crash nor re-report.
  std::atomic<int> reports{0};
  TaskWatchdog dog(15, [&](const std::string&, double) { ++reports; });
  {
    TaskWatchdog::Scope scope = dog.Watch("slow");
    while (reports.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }  // unregister after the report already fired
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(reports.load(), 1);
  EXPECT_EQ(dog.reports(), 1);
}

TEST(TaskWatchdogLifecycleTest, ConcurrentWatchReleaseShutdownRace) {
  // Hammer Watch()/release from many threads while the scanner runs,
  // then destroy the watchdog right after the workers drain — the
  // pattern a pool shutdown produces. Run under check-sanitize TSan,
  // this is where a registration/scan data race would surface.
  std::atomic<int> reports{0};
  for (int round = 0; round < 4; ++round) {
    TaskWatchdog dog(1, [&](const std::string&, double) { ++reports; });
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) {
      workers.emplace_back([&dog, t] {
        for (int i = 0; i < 100; ++i) {
          TaskWatchdog::Scope scope =
              dog.Watch("w" + std::to_string(t));
          if (i % 16 == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          TaskWatchdog::Scope moved = std::move(scope);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    // Watchdog destructor joins the scanner with zero inflight scopes.
  }
  SUCCEED();  // the assertion is "no crash, no TSan report"
}

// ---------------------------------------------------------------------
// The sweep engine's failure domain.

std::vector<CorpusEntry> MixedEntries(int per_task) {
  std::vector<CorpusEntry> out;
  int cls = 0;
  int reg = 0;
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.task == TaskType::kClassification && cls < per_task) {
      out.push_back(entry);
      ++cls;
    } else if (entry.task == TaskType::kRegression && reg < per_task) {
      out.push_back(entry);
      ++reg;
    }
  }
  return out;
}

SweepConfig FastConfig(int threads) {
  SweepConfig config;
  config.base_config.seed = 42;
  config.base_config.epochs = 2;
  config.base_config.hidden_sizes = {8};
  config.base_config.tree_max_depth = 6;
  config.base_config.ensemble_size = 3;
  config.repeats = 2;
  config.threads = threads;
  config.scale = 0.0;
  config.pipeline.imputer = "mean";
  return config;
}

int64_t TotalRuns(const SweepOutcome& outcome) {
  int64_t runs = 0;
  for (const SweepRow& row : outcome.rows) {
    for (const SweepCell& cell : row.cells) {
      runs += static_cast<int64_t>(cell.runs.size());
    }
  }
  return runs;
}

TEST(EngineFailureDomainTest, ThrowQuarantinesOneCellNotTheSweep) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT"};
  SweepConfig config = FastConfig(2);

  ChaosSchedule schedule;
  schedule.throw_at_task = 3;
  ChaosInjector injector(schedule);
  config.chaos = &injector;
  std::vector<TaskFailure> hook_failures;
  std::mutex mu;
  config.on_task_failed = [&](const TaskFailure& failure) {
    std::lock_guard<std::mutex> lock(mu);
    hook_failures.push_back(failure);
  };

  SweepOutcome outcome = ParallelSweepEntries(entries, learners, config);
  ASSERT_EQ(outcome.tasks_failed, 1);
  ASSERT_EQ(outcome.failures.size(), 1u);
  const TaskFailure& failure = outcome.failures[0];
  EXPECT_EQ(failure.kind, TaskFailureKind::kException);
  EXPECT_NE(failure.message.find("injected chaos throw"), std::string::npos);
  EXPECT_GE(failure.elapsed_seconds, 0.0);
  // The failure hook saw the same record the outcome carries.
  ASSERT_EQ(hook_failures.size(), 1u);
  EXPECT_EQ(sweep::TaskKey(hook_failures[0].task),
            sweep::TaskKey(failure.task));

  // Exactly one cell is quarantined and holds one fewer run; every
  // other cell is complete. The failed run still counts as run.
  EXPECT_EQ(outcome.tasks_run, 8);
  EXPECT_EQ(TotalRuns(outcome), 7);
  int64_t quarantined = 0;
  for (const SweepRow& row : outcome.rows) {
    for (const SweepCell& cell : row.cells) {
      if (cell.failed_runs > 0) {
        ++quarantined;
        EXPECT_EQ(cell.failed_runs, 1);
        EXPECT_EQ(cell.runs.size(), 1u);
        EXPECT_EQ(cell.repeated.dataset, failure.task.dataset);
        EXPECT_EQ(cell.repeated.learner, failure.task.learner);
      } else {
        EXPECT_EQ(cell.runs.size(), 2u);
      }
    }
  }
  EXPECT_EQ(quarantined, 1);
}

TEST(EngineFailureDomainTest, NonFiniteMetricsBecomeStructuredFailures) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT"};
  SweepConfig config = FastConfig(1);

  ChaosSchedule schedule;
  schedule.nan_at_task = 1;
  ChaosInjector injector(schedule);
  config.chaos = &injector;

  SweepOutcome outcome = ParallelSweepEntries(entries, learners, config);
  ASSERT_EQ(outcome.tasks_failed, 1);
  EXPECT_EQ(outcome.failures[0].kind, TaskFailureKind::kNonFinite);
  EXPECT_NE(outcome.failures[0].message.find("non-finite metric explosion"),
            std::string::npos);
  // Serial execution: ordinal 1 is the canonical first task.
  EXPECT_EQ(sweep::TaskKey(outcome.failures[0].task),
            entries[0].name + "|Naive-DT|0");
}

TEST(EngineFailureDomainTest, TransientFaultsClearOnInProcessRetry) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT"};
  SweepConfig config = FastConfig(2);
  const std::string expected =
      sweep::DumpOutcome(ParallelSweepEntries(entries, learners, config));

  ChaosSchedule schedule;
  schedule.transient_seed = 5;
  schedule.transient_p = 1.0;  // every task faults on its first attempt
  ChaosInjector injector(schedule);
  config.chaos = &injector;
  SweepOutcome outcome = ParallelSweepEntries(entries, learners, config);
  // Default task_attempts = 2: every fault cleared in-process and the
  // outcome is bit-identical to the chaos-free sweep.
  EXPECT_EQ(outcome.tasks_failed, 0);
  EXPECT_EQ(injector.faults_injected(), 8);
  EXPECT_EQ(sweep::DumpOutcome(outcome), expected);
}

TEST(EngineFailureDomainTest, ExhaustedTransientRetriesRecordFailures) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT"};
  SweepConfig config = FastConfig(1);
  config.task_attempts = 1;  // no in-process retry

  ChaosSchedule schedule;
  schedule.transient_seed = 5;
  schedule.transient_p = 1.0;
  ChaosInjector injector(schedule);
  config.chaos = &injector;
  SweepOutcome outcome = ParallelSweepEntries(entries, learners, config);
  EXPECT_EQ(outcome.tasks_failed, 4);
  for (const TaskFailure& failure : outcome.failures) {
    EXPECT_EQ(failure.kind, TaskFailureKind::kTransient);
    EXPECT_NE(failure.message.find("persisted across 1 attempt"),
              std::string::npos);
  }
}

TEST(EngineFailureDomainTest, TransientFailureSetIsThreadCountInvariant) {
  // Identity-keyed transient faults with retries disabled: the *set* of
  // failed tasks must not depend on scheduling.
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT"};
  std::vector<std::set<std::string>> failed_sets;
  for (int threads : {1, 4}) {
    SweepConfig config = FastConfig(threads);
    config.task_attempts = 1;
    ChaosSchedule schedule;
    schedule.transient_seed = 77;
    schedule.transient_p = 0.5;
    ChaosInjector injector(schedule);
    config.chaos = &injector;
    SweepOutcome outcome = ParallelSweepEntries(entries, learners, config);
    std::set<std::string> failed;
    for (const TaskFailure& failure : outcome.failures) {
      failed.insert(sweep::TaskKey(failure.task));
    }
    EXPECT_EQ(static_cast<int64_t>(failed.size()), outcome.tasks_failed);
    failed_sets.push_back(std::move(failed));
  }
  EXPECT_FALSE(failed_sets[0].empty());
  EXPECT_EQ(failed_sets[0], failed_sets[1]);
}

TEST(EngineFailureDomainTest, WatchdogReportsSlowTaskWithoutFailingIt) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT"};
  SweepConfig config = FastConfig(1);
  config.watchdog_limit_ms = 5;
  std::atomic<int> reports{0};
  std::vector<std::string> reported;
  std::mutex mu;
  config.on_overlong_task = [&](const TaskIdentity& task, double elapsed) {
    std::lock_guard<std::mutex> lock(mu);
    ++reports;
    reported.push_back(sweep::TaskKey(task));
    EXPECT_GT(elapsed, 0.0);
  };

  ChaosSchedule schedule;
  schedule.slow_at_task = 1;
  schedule.slow_ms = 60;
  ChaosInjector injector(schedule);
  config.chaos = &injector;
  SweepOutcome outcome = ParallelSweepEntries(entries, learners, config);
  // Slow is not dead: the stalled task still completed successfully.
  EXPECT_EQ(outcome.tasks_failed, 0);
  EXPECT_EQ(outcome.tasks_run, 4);
  EXPECT_GE(reports.load(), 1);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(std::find(reported.begin(), reported.end(),
                        entries[0].name + "|Naive-DT|0") != reported.end());
}

// ---------------------------------------------------------------------
// Prepare failures: Result-based ParallelPrepare + row quarantine.

CorpusEntry PoisonEntry() {
  CorpusEntry entry;
  entry.name = "poison_entry";
  entry.task = TaskType::kRegression;
  entry.instances = 2000;
  entry.features = 1;  // GenerateStream requires >= 2 numeric features
  return entry;
}

TEST(PrepareFailureTest, ParallelPrepareReturnsPerEntryStatus) {
  std::vector<StreamSpec> specs;
  specs.push_back(SpecFromEntry(MixedEntries(1)[0], 0.0));
  specs.push_back(SpecFromEntry(PoisonEntry(), 0.0));
  std::vector<Result<PreparedStream>> prepared =
      ParallelPrepare(specs, PipelineOptions{}, 2, {"good", "poison_entry"});
  ASSERT_EQ(prepared.size(), 2u);
  ASSERT_TRUE(prepared[0].ok()) << prepared[0].status().ToString();
  EXPECT_EQ(prepared[0]->name, "good");
  ASSERT_FALSE(prepared[1].ok());
  // The Status names the bad entry so callers can report and continue.
  EXPECT_NE(prepared[1].status().message().find("poison_entry"),
            std::string::npos);
}

TEST(PrepareFailureTest, BadEntryQuarantinesItsRowWithCleanStatus) {
  std::vector<CorpusEntry> entries = MixedEntries(1);
  entries.push_back(PoisonEntry());
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT"};
  SweepConfig config = FastConfig(2);

  SweepOutcome outcome = ParallelSweepEntries(entries, learners, config);
  // The poison row: every selected task recorded as kPrepare, cells
  // fully quarantined, zero runs.
  EXPECT_EQ(outcome.tasks_failed, 4);  // 2 learners x 2 repeats
  for (const TaskFailure& failure : outcome.failures) {
    EXPECT_EQ(failure.kind, TaskFailureKind::kPrepare);
    EXPECT_EQ(failure.task.dataset, "poison_entry");
    EXPECT_NE(failure.message.find("poison_entry"), std::string::npos);
  }
  ASSERT_EQ(outcome.rows.size(), 3u);
  const SweepRow& poisoned = outcome.rows[2];
  EXPECT_EQ(poisoned.dataset, "poison_entry");
  for (const SweepCell& cell : poisoned.cells) {
    EXPECT_EQ(cell.failed_runs, 2);
    EXPECT_TRUE(cell.runs.empty());
  }
  // The good rows are untouched; prepare-quarantined tasks never
  // started, so they are not in tasks_run.
  EXPECT_EQ(outcome.tasks_run, 8);
  EXPECT_EQ(TotalRuns(outcome), 8);
  EXPECT_EQ(outcome.streams_prepared, 2);
}

// ---------------------------------------------------------------------
// Merge quarantine.

LogHeader SyntheticHeader(const TaskManifest& manifest) {
  LogHeader header;
  header.base_seed = 9;
  header.scale = 0.5;
  header.repeats = manifest.grid().repeats;
  header.epochs = 2;
  header.manifest_fingerprint = manifest.Fingerprint();
  return header;
}

TaskManifest TinyManifest(int datasets, int learners, int repeats) {
  SweepGrid grid;
  for (int d = 0; d < datasets; ++d) {
    grid.datasets.push_back("data" + std::to_string(d));
  }
  for (int l = 0; l < learners; ++l) {
    grid.learners.push_back("algo" + std::to_string(l));
  }
  grid.repeats = repeats;
  return TaskManifest::Build(std::move(grid));
}

EvalResult SyntheticResult(const TaskIdentity& task, double mean_loss) {
  EvalResult result;
  result.dataset = task.dataset;
  result.learner = task.learner;
  result.mean_loss = mean_loss;
  result.faded_loss = mean_loss / 2.0;
  result.throughput = 1000.0;
  result.peak_memory_bytes = 1 << 20;
  result.per_window_loss = {mean_loss, mean_loss};
  return result;
}

TaskFailure SyntheticFailure(const TaskIdentity& task) {
  TaskFailure failure;
  failure.task = task;
  failure.kind = TaskFailureKind::kException;
  failure.message = "synthetic explosion";
  failure.elapsed_seconds = 0.25;
  return failure;
}

TEST(MergeQuarantineTest, FailureRecordsQuarantineTheirCells) {
  TaskManifest manifest = TinyManifest(2, 2, 2);
  LogHeader header = SyntheticHeader(manifest);
  const std::string path = TempPath("quarantine.log");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<ResultLogWriter>> writer =
        ResultLogWriter::Open(path, header, /*resume=*/false);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const TaskIdentity& task : manifest.tasks()) {
      // data1|algo1: one repeat fails, one runs — a partially
      // quarantined cell.
      if (task.dataset == "data1" && task.learner == "algo1" &&
          task.repeat == 0) {
        ASSERT_TRUE((*writer)->AppendFailure(SyntheticFailure(task)).ok());
      } else {
        ASSERT_TRUE((*writer)->Append(task, SyntheticResult(task, 0.5)).ok());
      }
    }
  }

  Result<sweep::MergeReport> report =
      sweep::MergeShardLogsReport(manifest, header, {path});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->quarantined_cells, 1);
  EXPECT_EQ(report->outcome.tasks_failed, 1);
  ASSERT_EQ(report->outcome.failures.size(), 1u);
  EXPECT_EQ(sweep::TaskKey(report->outcome.failures[0].task),
            "data1|algo1|0");
  EXPECT_EQ(report->outcome.failures[0].kind, TaskFailureKind::kException);
  EXPECT_EQ(report->outcome.failures[0].message, "synthetic explosion");
  const SweepCell& cell = report->outcome.rows[1].cells[1];
  EXPECT_EQ(cell.failed_runs, 1);
  EXPECT_EQ(cell.runs.size(), 1u);

  // The human table flags the cell unmistakably.
  std::string table = sweep::FormatOutcomeTable(report->outcome);
  EXPECT_NE(table.find("FAILED(1)"), std::string::npos);
  // The quarantine report names the task, kind and message.
  std::string quarantine = sweep::FormatQuarantineReport(*report);
  EXPECT_NE(quarantine.find("data1|algo1|0"), std::string::npos);
  EXPECT_NE(quarantine.find("exception"), std::string::npos);
  EXPECT_NE(quarantine.find("synthetic explosion"), std::string::npos);

  // The strict merge refuses quarantined outcomes.
  Result<SweepOutcome> strict =
      sweep::MergeShardLogs(manifest, header, {path});
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("quarantined"),
            std::string::npos);
  EXPECT_NE(strict.status().message().find("data1|algo1|0"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(MergeQuarantineTest, RunRecordSupersedesFailureRecordAcrossLogs) {
  TaskManifest manifest = TinyManifest(1, 1, 1);
  LogHeader header = SyntheticHeader(manifest);
  const TaskIdentity task = manifest.tasks()[0];
  const std::string stale = TempPath("stale.log");
  const std::string rescued = TempPath("rescued.log");
  std::remove(stale.c_str());
  std::remove(rescued.c_str());
  {
    Result<std::unique_ptr<ResultLogWriter>> writer =
        ResultLogWriter::Open(stale, header, /*resume=*/false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendFailure(SyntheticFailure(task)).ok());
  }
  {
    Result<std::unique_ptr<ResultLogWriter>> writer =
        ResultLogWriter::Open(rescued, header, /*resume=*/false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(task, SyntheticResult(task, 0.125)).ok());
  }

  // Alone, the stale log quarantines the task...
  Result<sweep::MergeReport> alone =
      sweep::MergeShardLogsReport(manifest, header, {stale});
  ASSERT_TRUE(alone.ok());
  EXPECT_EQ(alone->outcome.tasks_failed, 1);

  // ...but merged with the rescue (in either order) the run row wins.
  for (const auto& logs :
       {std::vector<std::string>{stale, rescued},
        std::vector<std::string>{rescued, stale}}) {
    Result<sweep::MergeReport> merged =
        sweep::MergeShardLogsReport(manifest, header, logs);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(merged->outcome.tasks_failed, 0);
    EXPECT_EQ(merged->quarantined_cells, 0);
    ASSERT_EQ(merged->outcome.rows[0].cells[0].runs.size(), 1u);
    EXPECT_EQ(merged->outcome.rows[0].cells[0].runs[0].mean_loss, 0.125);
  }
  std::remove(stale.c_str());
  std::remove(rescued.c_str());
}

TEST(MergeQuarantineTest, NonFiniteValuesSurviveMergeAndRenderDistinctly) {
  // The satellite-3 e2e: rows whose deterministic fields hold -0.0,
  // infinities and NaN payloads, written through the log, merged, and
  // rendered — bit-exactly preserved in the outcome, distinct FAILED
  // marker for the quarantined cell in the same table.
  TaskManifest manifest = TinyManifest(2, 1, 1);
  LogHeader header = SyntheticHeader(manifest);
  const std::string path = TempPath("nonfinite.log");
  std::remove(path.c_str());

  EvalResult weird = SyntheticResult(manifest.tasks()[0], 0.0);
  weird.mean_loss = -0.0;
  weird.faded_loss = std::numeric_limits<double>::infinity();
  weird.per_window_loss = {std::numeric_limits<double>::quiet_NaN(),
                           -std::numeric_limits<double>::infinity(), -0.0};
  {
    Result<std::unique_ptr<ResultLogWriter>> writer =
        ResultLogWriter::Open(path, header, /*resume=*/false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(manifest.tasks()[0], weird).ok());
    ASSERT_TRUE(
        (*writer)->AppendFailure(SyntheticFailure(manifest.tasks()[1])).ok());
  }

  Result<sweep::MergeReport> report =
      sweep::MergeShardLogsReport(manifest, header, {path});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->outcome.rows[0].cells[0].runs.size(), 1u);
  const EvalResult& merged = report->outcome.rows[0].cells[0].runs[0];
  EXPECT_EQ(std::bit_cast<uint64_t>(merged.mean_loss),
            std::bit_cast<uint64_t>(-0.0));
  EXPECT_EQ(std::bit_cast<uint64_t>(merged.faded_loss),
            std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity()));
  ASSERT_EQ(merged.per_window_loss.size(), 3u);
  EXPECT_TRUE(std::isnan(merged.per_window_loss[0]));
  EXPECT_EQ(std::bit_cast<uint64_t>(merged.per_window_loss[2]),
            std::bit_cast<uint64_t>(-0.0));

  // The dump keeps the exact bit patterns (-0.0 = 8000000000000000)
  // and the table renders both the weird cell and the FAILED marker.
  std::string dump = sweep::DumpOutcome(report->outcome);
  EXPECT_NE(dump.find("8000000000000000"), std::string::npos);
  std::string table = sweep::FormatOutcomeTable(report->outcome);
  EXPECT_NE(table.find("FAILED(1)"), std::string::npos);
  EXPECT_NE(table.find("data0"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Shard runner: breaker + retry-failed plumbing.

sweep::ShardRunOptions ShardOptions(const SweepConfig& config,
                                    const Shard& shard,
                                    const std::string& log_path) {
  sweep::ShardRunOptions options;
  options.config = config;
  options.shard = shard;
  options.log_path = log_path;
  options.retry.initial_backoff_ms = 0;
  return options;
}

TEST(ShardRunnerChaosTest, BreakerTripsIntoACleanStatus) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT"};
  SweepConfig config = FastConfig(1);
  ChaosSchedule schedule;
  schedule.throw_at_task = 1;
  ChaosInjector injector(schedule);
  config.chaos = &injector;

  const std::string path = TempPath("breaker.log");
  std::remove(path.c_str());
  sweep::ShardRunOptions options = ShardOptions(config, Shard{0, 1}, path);
  options.max_task_failures = 0;  // any failure trips the breaker
  Result<sweep::ShardRunStats> stats =
      sweep::RunCorpusShard(entries, learners, options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(stats.status().message().find("--max-task-failures"),
            std::string::npos);
  EXPECT_NE(stats.status().message().find(path), std::string::npos);

  // With headroom the same sweep finishes cleanly: the failure is
  // logged and quarantine becomes the merge's concern.
  std::remove(path.c_str());
  ChaosInjector fresh(schedule);
  options.config.chaos = &fresh;
  options.max_task_failures = 5;
  stats = sweep::RunCorpusShard(entries, learners, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tasks_failed, 1);
  std::remove(path.c_str());
}

TEST(ShardRunnerChaosTest, RetryFailedRequiresResume) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  SweepConfig config = FastConfig(1);
  sweep::ShardRunOptions options =
      ShardOptions(config, Shard{0, 1}, TempPath("retry_noresume.log"));
  options.retry_failed = true;  // without resume: invalid
  Result<sweep::ShardRunStats> stats =
      sweep::RunCorpusShard(entries, {"Naive-DT"}, options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// The acceptance property: a 2-shard grid under every fault kind at
// once recovers to the bit-exact fault-free outcome.

TEST(ChaosRecoveryTest, EveryFaultKindRecoversToFaultFreeBitIdentically) {
  std::vector<CorpusEntry> entries = MixedEntries(2);
  ASSERT_GE(entries.size(), 3u);
  entries.resize(3);  // 3-dataset grid (classification + regression)
  // Naive-Bayes is N/A on the regression entry: N/A rows interleave
  // with failure records in the logs.
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT",
                                             "Naive-Bayes"};
  SweepConfig config = FastConfig(1);  // serial => ordinals are canonical
  TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);
  LogHeader header = sweep::MakeLogHeader(manifest, config, Shard{});
  const std::string expected =
      sweep::DumpOutcome(ParallelSweepEntries(entries, learners, config));

  // Applicability probe, mirroring the shard runner: the selected
  // (submitted) tasks of a shard in canonical order — chaos ordinals
  // index into exactly this sequence when threads == 1.
  auto selected_tasks = [&](const Shard& shard) {
    std::vector<TaskIdentity> selected;
    for (const TaskIdentity& task : manifest.ShardTasks(shard)) {
      const CorpusEntry* entry = nullptr;
      for (const CorpusEntry& candidate : entries) {
        if (candidate.name == task.dataset) entry = &candidate;
      }
      StreamSpec spec = SpecFromEntry(*entry, config.scale);
      if (MakeLearner(task.learner, config.base_config, spec.task,
                      spec.num_classes)
              .ok()) {
        selected.push_back(task);
      }
    }
    return selected;
  };

  ChaosSchedule schedule;
  schedule.throw_at_task = 1;   // permanent exception
  schedule.nan_at_task = 2;     // non-finite explosion
  schedule.slow_at_task = 3;    // watchdog bait; still succeeds
  schedule.slow_ms = 30;
  schedule.transient_seed = 5;  // clears on in-process retry
  schedule.transient_p = 0.6;
  std::atomic<int> watchdog_reports{0};

  std::vector<std::string> logs;
  for (int i = 0; i < 2; ++i) {
    SCOPED_TRACE("shard=" + std::to_string(i));
    const Shard shard{i, 2};
    const std::string path = TempPath(StrFormat("recovery_%d.log", i));
    std::remove(path.c_str());
    logs.push_back(path);
    std::vector<TaskIdentity> selected = selected_tasks(shard);
    ASSERT_GE(selected.size(), 3u);

    ChaosInjector injector(schedule);
    sweep::ShardRunOptions options = ShardOptions(config, shard, path);
    options.config.chaos = &injector;
    options.config.watchdog_limit_ms = 5;
    options.config.on_overlong_task = [&](const TaskIdentity&, double) {
      ++watchdog_reports;
    };
    // Every fault kind fires, yet the shard's Status is clean: one
    // poison task costs one cell, never the shard.
    Result<sweep::ShardRunStats> stats =
        sweep::RunCorpusShard(entries, learners, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->tasks_failed, 2);  // throw + NaN; transient cleared
    EXPECT_GE(injector.faults_injected(), 3);

    // The v2 log names the exact failed tasks: ordinals 1 and 2 are
    // the first two selected tasks of the shard (serial execution).
    Result<sweep::ResultLogContents> contents = sweep::ReadResultLog(path);
    ASSERT_TRUE(contents.ok()) << contents.status().ToString();
    EXPECT_EQ(contents->header.version, 2);
    ASSERT_EQ(contents->failures.size(), 2u);
    EXPECT_EQ(sweep::TaskKey(contents->failures[0].task),
              sweep::TaskKey(selected[0]));
    EXPECT_EQ(contents->failures[0].kind, TaskFailureKind::kException);
    EXPECT_EQ(sweep::TaskKey(contents->failures[1].task),
              sweep::TaskKey(selected[1]));
    EXPECT_EQ(contents->failures[1].kind, TaskFailureKind::kNonFinite);

    // A plain resume leaves the quarantined tasks alone...
    sweep::ShardRunOptions plain = ShardOptions(config, shard, path);
    plain.resume = true;
    Result<sweep::ShardRunStats> resumed =
        sweep::RunCorpusShard(entries, learners, plain);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed->tasks_executed, 0);
    EXPECT_EQ(resumed->failures_resumed, 2);

    // ...and --retry-failed re-executes exactly them, fault-free.
    sweep::ShardRunOptions retry = ShardOptions(config, shard, path);
    retry.resume = true;
    retry.retry_failed = true;
    Result<sweep::ShardRunStats> rescued =
        sweep::RunCorpusShard(entries, learners, retry);
    ASSERT_TRUE(rescued.ok()) << rescued.status().ToString();
    EXPECT_EQ(rescued->tasks_executed, 2);
    EXPECT_EQ(rescued->failures_resumed, 0);
    EXPECT_EQ(rescued->tasks_failed, 0);
  }
  EXPECT_GE(watchdog_reports.load(), 1);  // the slow task was reported

  // The rescued logs merge strictly — no quarantine left — and the
  // outcome is bit-identical to the fault-free unsharded sweep.
  Result<SweepOutcome> merged =
      sweep::MergeShardLogs(manifest, header, logs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(sweep::DumpOutcome(*merged), expected);
  for (const std::string& log : logs) std::remove(log.c_str());
}

// ---------------------------------------------------------------------
// oebench_sweep CLI: dry-run, chaos, breaker, quarantined merges.

const char* SweepBin() { return std::getenv("OEBENCH_SWEEP_BIN"); }

int RunSweepCli(const std::string& args) {
  std::string command = std::string("\"") + SweepBin() + "\" " + args +
                        " >/dev/null 2>/dev/null";
  int raw = std::system(command.c_str());
  EXPECT_NE(raw, -1);
  EXPECT_TRUE(WIFEXITED(raw)) << "signal-terminated: " << command;
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

#define SKIP_WITHOUT_SWEEP_BIN()                                        \
  do {                                                                  \
    if (SweepBin() == nullptr ||                                        \
        !IoEnv::Default()->FileExists(SweepBin())) {                    \
      GTEST_SKIP() << "OEBENCH_SWEEP_BIN not set / not built; run via " \
                      "ctest or the check-chaos target";                \
    }                                                                   \
  } while (0)

TEST(SweepCliChaosTest, DryRunPrintsThePlanAndRunsNothing) {
  SKIP_WITHOUT_SWEEP_BIN();
  EXPECT_EQ(RunSweepCli("--dry-run --datasets=2"), 0);
  EXPECT_EQ(RunSweepCli("--dry-run --datasets=3 --shard=1/2"), 0);
  EXPECT_EQ(RunSweepCli("--dry-run --spawn=3 --datasets=2"), 0);
  // Invalid grids still exit 2, dry run or not.
  EXPECT_EQ(RunSweepCli("--dry-run --shard=5/2"), 2);
  EXPECT_EQ(RunSweepCli("--dry-run --repeats=0"), 2);
}

TEST(SweepCliChaosTest, FlagValidationExitsTwo) {
  SKIP_WITHOUT_SWEEP_BIN();
  EXPECT_EQ(RunSweepCli("--chaos-schedule=bogus=1"), 2);
  EXPECT_EQ(RunSweepCli("--chaos-schedule=throw-at-task=0"), 2);
  EXPECT_EQ(RunSweepCli("--retry-failed"), 2);  // needs --resume
  EXPECT_EQ(RunSweepCli("--allow-quarantined"), 2);  // needs --merge
  EXPECT_EQ(RunSweepCli("--max-task-failures=-1"), 2);
  EXPECT_EQ(RunSweepCli("--watchdog-ms=0"), 2);
}

TEST(SweepCliChaosTest, ChaosRunQuarantinesThenRetryFailedRecovers) {
  SKIP_WITHOUT_SWEEP_BIN();
  const std::string log = TempPath("cli_chaos.log");
  std::remove(log.c_str());
  std::remove((log + ".tmp").c_str());
  const std::string common =
      "--datasets=2 --repeats=1 --epochs=1 --scale=0 --threads=1 --seed=3 ";
  const std::string shard = common + "--shard=0/1 --log=\"" + log + "\"";
  const std::string merge = common + "--merge \"" + log + "\"";

  // Chaos shard: faults are logged, the shard itself exits 0.
  EXPECT_EQ(RunSweepCli(shard + " --chaos-schedule=throw-at-task=1,"
                                "nan-at-task=2"),
            0);
  // Quarantined merge fails (run failure, not usage) ...
  EXPECT_EQ(RunSweepCli(merge), 1);
  // ... unless the caller accepts a partial table.
  EXPECT_EQ(RunSweepCli(merge + " --allow-quarantined"), 0);
  // The breaker turns the same faults into a failing shard run.
  const std::string breaker_log = TempPath("cli_breaker.log");
  std::remove(breaker_log.c_str());
  EXPECT_EQ(RunSweepCli(common + "--shard=0/1 --log=\"" + breaker_log +
                        "\" --chaos-schedule=throw-at-task=1 "
                        "--max-task-failures=0"),
            1);
  std::remove(breaker_log.c_str());
  // Recovery: re-run exactly the failed tasks, then merge cleanly.
  EXPECT_EQ(RunSweepCli(shard + " --resume --retry-failed"), 0);
  EXPECT_EQ(RunSweepCli(merge), 0);
  std::remove(log.c_str());
  std::remove((log + ".tmp").c_str());
}

}  // namespace
}  // namespace oebench
