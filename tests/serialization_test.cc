// Serialisation round-trips: a saved model must predict exactly like the
// original, and malformed inputs must be rejected with a Status, never a
// crash.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/random.h"
#include "models/serialization.h"

namespace oebench {
namespace {

void MakeData(uint64_t seed, Matrix* x, std::vector<double>* y_reg,
              std::vector<double>* y_cls) {
  Rng rng(seed);
  *x = Matrix(200, 4);
  for (double& v : x->data()) v = rng.Gaussian();
  y_reg->resize(200);
  y_cls->resize(200);
  for (int64_t r = 0; r < 200; ++r) {
    double score = x->At(r, 0) - 0.5 * x->At(r, 1);
    (*y_reg)[static_cast<size_t>(r)] = score;
    (*y_cls)[static_cast<size_t>(r)] = score > 0 ? 1.0 : 0.0;
  }
}

TEST(SerializationTest, MlpRoundTripPredictsIdentically) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(1, &x, &y_reg, &y_cls);
  MlpConfig config;
  config.task = TaskType::kRegression;
  config.hidden_sizes = {8, 4};
  Mlp original(config, 7);
  Rng rng(2);
  for (int e = 0; e < 10; ++e) original.TrainEpoch(x, y_reg, &rng);

  Result<Mlp> restored = MlpFromString(MlpToString(original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (int64_t r = 0; r < 20; ++r) {
    EXPECT_DOUBLE_EQ(restored->PredictValue(x.RowVector(r)),
                     original.PredictValue(x.RowVector(r)));
  }
}

TEST(SerializationTest, MlpClassificationRoundTrip) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(3, &x, &y_reg, &y_cls);
  MlpConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 2;
  config.hidden_sizes = {6};
  Mlp original(config, 8);
  Rng rng(4);
  for (int e = 0; e < 10; ++e) original.TrainEpoch(x, y_cls, &rng);
  Result<Mlp> restored = MlpFromString(MlpToString(original));
  ASSERT_TRUE(restored.ok());
  for (int64_t r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(restored->PredictClass(x.RowVector(r)),
              original.PredictClass(x.RowVector(r)));
  }
}

TEST(SerializationTest, MlpFileRoundTrip) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(5, &x, &y_reg, &y_cls);
  MlpConfig config;
  config.task = TaskType::kRegression;
  config.hidden_sizes = {4};
  Mlp original(config, 9);
  Rng rng(6);
  original.TrainEpoch(x, y_reg, &rng);
  const std::string path = "/tmp/oebench_mlp_test.txt";
  ASSERT_TRUE(SaveMlp(original, path).ok());
  Result<Mlp> restored = LoadMlp(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->PredictValue(x.RowVector(0)),
                   original.PredictValue(x.RowVector(0)));
  std::remove(path.c_str());
}

TEST(SerializationTest, DecisionTreeRoundTrip) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(7, &x, &y_reg, &y_cls);
  for (TaskType task :
       {TaskType::kRegression, TaskType::kClassification}) {
    DecisionTreeConfig config;
    config.task = task;
    config.num_classes = 2;
    DecisionTree original(config);
    original.Fit(x, task == TaskType::kRegression ? y_reg : y_cls);
    std::ostringstream out;
    original.SerializeTo(&out);
    std::istringstream in(out.str());
    Result<DecisionTree> restored = DecisionTree::DeserializeFrom(&in);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->node_count(), original.node_count());
    for (int64_t r = 0; r < x.rows(); ++r) {
      if (task == TaskType::kRegression) {
        EXPECT_DOUBLE_EQ(restored->PredictValue(x.Row(r)),
                         original.PredictValue(x.Row(r)));
      } else {
        EXPECT_EQ(restored->PredictClass(x.Row(r)),
                  original.PredictClass(x.Row(r)));
      }
    }
  }
}

TEST(SerializationTest, GbdtRoundTrip) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(8, &x, &y_reg, &y_cls);
  for (TaskType task :
       {TaskType::kRegression, TaskType::kClassification}) {
    GbdtConfig config;
    config.task = task;
    config.num_classes = 2;
    config.num_rounds = 3;
    Gbdt original(config);
    original.Fit(x, task == TaskType::kRegression ? y_reg : y_cls);
    Result<Gbdt> restored = GbdtFromString(GbdtToString(original));
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->tree_count(), original.tree_count());
    for (int64_t r = 0; r < x.rows(); ++r) {
      EXPECT_DOUBLE_EQ(restored->PredictValue(x.Row(r)),
                       original.PredictValue(x.Row(r)));
    }
  }
}

// ---------------------------------------------------------------------
// Round-trip fuzz: for randomized model shapes and weights — including
// non-finite values, which operator<< prints as "nan"/"inf" tokens that
// plain istream extraction refuses to read back — serialize ->
// deserialize -> re-serialize must reproduce the first byte string
// exactly. Byte-stable serialization is what lets warm-start snapshots
// (sweep/reuse) be compared and cached as opaque strings.

TEST(SerializationFuzzTest, MlpRandomizedByteStableRoundTrip) {
  Rng rng(101);
  for (int trial = 0; trial < 12; ++trial) {
    MlpConfig config;
    config.task =
        trial % 2 == 0 ? TaskType::kRegression : TaskType::kClassification;
    config.num_classes = 2 + static_cast<int>(rng.UniformInt(4));
    const int depth = 1 + static_cast<int>(rng.UniformInt(3));
    config.hidden_sizes.clear();
    for (int l = 0; l < depth; ++l) {
      config.hidden_sizes.push_back(2 + static_cast<int>(rng.UniformInt(6)));
    }
    Mlp model(config, /*seed=*/1000 + static_cast<uint64_t>(trial));
    model.EnsureInitialized(1 + rng.UniformInt(9));
    // Scramble the parameters across many magnitudes so the %.17g
    // printing paths (subnormals, huge values, negative zero) all get
    // exercised.
    std::vector<Matrix> weights = model.weights();
    std::vector<std::vector<double>> biases = model.biases();
    for (Matrix& w : weights) {
      for (double& v : w.data()) {
        v = rng.Gaussian() * std::pow(10.0, rng.Uniform(-12.0, 12.0));
      }
    }
    for (std::vector<double>& b : biases) {
      for (double& v : b) v = rng.Gaussian(0.0, 1e6);
    }
    model.SetParameters(std::move(weights), std::move(biases));

    const std::string first = MlpToString(model);
    Result<Mlp> restored = MlpFromString(first);
    ASSERT_TRUE(restored.ok()) << "trial " << trial << ": "
                               << restored.status().ToString();
    EXPECT_EQ(MlpToString(*restored), first) << "trial " << trial;
  }
}

TEST(SerializationFuzzTest, MlpNonFiniteWeightsRoundTrip) {
  MlpConfig config;
  config.hidden_sizes = {3, 2};
  Mlp model(config, 7);
  model.EnsureInitialized(4);
  std::vector<Matrix> weights = model.weights();
  std::vector<std::vector<double>> biases = model.biases();
  const double specials[] = {
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
  };
  size_t next = 0;
  for (Matrix& w : weights) {
    for (double& v : w.data()) {
      v = specials[next++ % (sizeof(specials) / sizeof(specials[0]))];
    }
  }
  biases[0][0] = std::numeric_limits<double>::quiet_NaN();
  model.SetParameters(std::move(weights), std::move(biases));

  const std::string first = MlpToString(model);
  Result<Mlp> restored = MlpFromString(first);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(MlpToString(*restored), first);
  // -0.0 must keep its sign bit through the trip.
  EXPECT_NE(first.find("-0"), std::string::npos);
}

TEST(SerializationFuzzTest, DecisionTreeRandomizedByteStableRoundTrip) {
  Rng seed_rng(202);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix x;
    std::vector<double> y_reg;
    std::vector<double> y_cls;
    MakeData(300 + static_cast<uint64_t>(trial), &x, &y_reg, &y_cls);
    DecisionTreeConfig config;
    config.task =
        trial % 2 == 0 ? TaskType::kRegression : TaskType::kClassification;
    config.max_depth = 1 + static_cast<int>(seed_rng.UniformInt(10));
    config.min_samples_leaf = 1 + static_cast<int>(seed_rng.UniformInt(4));
    DecisionTree tree(config);
    tree.Fit(x, config.task == TaskType::kRegression ? y_reg : y_cls);

    std::ostringstream first_out;
    tree.SerializeTo(&first_out);
    const std::string first = first_out.str();
    std::istringstream in(first);
    Result<DecisionTree> restored = DecisionTree::DeserializeFrom(&in);
    ASSERT_TRUE(restored.ok()) << "trial " << trial << ": "
                               << restored.status().ToString();
    std::ostringstream second_out;
    restored->SerializeTo(&second_out);
    EXPECT_EQ(second_out.str(), first) << "trial " << trial;
  }
}

TEST(SerializationFuzzTest, DecisionTreeNonFiniteThresholdsRoundTrip) {
  // Crafted text with non-finite node values, as a tree trained on
  // exploded data would serialize. One deserialize->reserialize trip
  // must be byte-stable including the "nan"/"inf" tokens.
  const std::string crafted =
      "decision_tree v1\nreg 2 12 4 2 0\n3\n"
      "0 inf 1 2 nan\n"
      "-1 0 -1 -1 -inf\n"
      "-1 0 -1 -1 -0\n";
  std::istringstream in(crafted);
  Result<DecisionTree> restored = DecisionTree::DeserializeFrom(&in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::ostringstream out;
  restored->SerializeTo(&out);
  std::istringstream in2(out.str());
  Result<DecisionTree> again = DecisionTree::DeserializeFrom(&in2);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  std::ostringstream out2;
  again->SerializeTo(&out2);
  EXPECT_EQ(out2.str(), out.str());
}

TEST(SerializationFuzzTest, GbdtRandomizedByteStableRoundTrip) {
  Rng seed_rng(303);
  for (int trial = 0; trial < 8; ++trial) {
    Matrix x;
    std::vector<double> y_reg;
    std::vector<double> y_cls;
    MakeData(400 + static_cast<uint64_t>(trial), &x, &y_reg, &y_cls);
    GbdtConfig config;
    config.task =
        trial % 2 == 0 ? TaskType::kRegression : TaskType::kClassification;
    config.num_rounds = 1 + static_cast<int>(seed_rng.UniformInt(4));
    config.max_depth = 2 + static_cast<int>(seed_rng.UniformInt(3));
    Gbdt model(config);
    model.Fit(x, config.task == TaskType::kRegression ? y_reg : y_cls);
    const std::string first = GbdtToString(model);
    Result<Gbdt> restored = GbdtFromString(first);
    ASSERT_TRUE(restored.ok()) << "trial " << trial << ": "
                               << restored.status().ToString();
    EXPECT_EQ(GbdtToString(*restored), first) << "trial " << trial;
  }
}

TEST(SerializationFuzzTest, GbdtEmptyEnsembleRoundTrip) {
  // num_rounds = 0: a fitted model with no trees (base score only) must
  // serialize, restore, and predict the bare base score.
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(9, &x, &y_reg, &y_cls);
  GbdtConfig config;
  config.num_rounds = 0;
  Gbdt model(config);
  model.Fit(x, y_reg);
  ASSERT_TRUE(model.fitted());
  const std::string first = GbdtToString(model);
  Result<Gbdt> restored = GbdtFromString(first);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(GbdtToString(*restored), first);
  EXPECT_EQ(restored->tree_count(), 0);
  EXPECT_DOUBLE_EQ(restored->PredictValue(x.Row(0)),
                   model.PredictValue(x.Row(0)));
}

TEST(SerializationTest, RejectsMalformedInput) {
  EXPECT_FALSE(MlpFromString("").ok());
  EXPECT_FALSE(MlpFromString("mlp v9\n").ok());
  EXPECT_FALSE(MlpFromString("mlp v1\nreg 2 0.01 64 0\n1 8\n").ok());
  EXPECT_FALSE(GbdtFromString("nonsense").ok());
  std::istringstream bad_tree("decision_tree v1\nreg 2 12 4 2 0\n1\n");
  EXPECT_FALSE(DecisionTree::DeserializeFrom(&bad_tree).ok());
  // Corrupted child index.
  std::istringstream bad_link(
      "decision_tree v1\nreg 2 12 4 2 0\n1\n0 0.5 7 8 0\n");
  EXPECT_FALSE(DecisionTree::DeserializeFrom(&bad_link).ok());
  EXPECT_FALSE(LoadMlp("/nonexistent/path").ok());
}

}  // namespace
}  // namespace oebench
