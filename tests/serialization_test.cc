// Serialisation round-trips: a saved model must predict exactly like the
// original, and malformed inputs must be rejected with a Status, never a
// crash.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/random.h"
#include "models/serialization.h"

namespace oebench {
namespace {

void MakeData(uint64_t seed, Matrix* x, std::vector<double>* y_reg,
              std::vector<double>* y_cls) {
  Rng rng(seed);
  *x = Matrix(200, 4);
  for (double& v : x->data()) v = rng.Gaussian();
  y_reg->resize(200);
  y_cls->resize(200);
  for (int64_t r = 0; r < 200; ++r) {
    double score = x->At(r, 0) - 0.5 * x->At(r, 1);
    (*y_reg)[static_cast<size_t>(r)] = score;
    (*y_cls)[static_cast<size_t>(r)] = score > 0 ? 1.0 : 0.0;
  }
}

TEST(SerializationTest, MlpRoundTripPredictsIdentically) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(1, &x, &y_reg, &y_cls);
  MlpConfig config;
  config.task = TaskType::kRegression;
  config.hidden_sizes = {8, 4};
  Mlp original(config, 7);
  Rng rng(2);
  for (int e = 0; e < 10; ++e) original.TrainEpoch(x, y_reg, &rng);

  Result<Mlp> restored = MlpFromString(MlpToString(original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (int64_t r = 0; r < 20; ++r) {
    EXPECT_DOUBLE_EQ(restored->PredictValue(x.RowVector(r)),
                     original.PredictValue(x.RowVector(r)));
  }
}

TEST(SerializationTest, MlpClassificationRoundTrip) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(3, &x, &y_reg, &y_cls);
  MlpConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 2;
  config.hidden_sizes = {6};
  Mlp original(config, 8);
  Rng rng(4);
  for (int e = 0; e < 10; ++e) original.TrainEpoch(x, y_cls, &rng);
  Result<Mlp> restored = MlpFromString(MlpToString(original));
  ASSERT_TRUE(restored.ok());
  for (int64_t r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(restored->PredictClass(x.RowVector(r)),
              original.PredictClass(x.RowVector(r)));
  }
}

TEST(SerializationTest, MlpFileRoundTrip) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(5, &x, &y_reg, &y_cls);
  MlpConfig config;
  config.task = TaskType::kRegression;
  config.hidden_sizes = {4};
  Mlp original(config, 9);
  Rng rng(6);
  original.TrainEpoch(x, y_reg, &rng);
  const std::string path = "/tmp/oebench_mlp_test.txt";
  ASSERT_TRUE(SaveMlp(original, path).ok());
  Result<Mlp> restored = LoadMlp(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->PredictValue(x.RowVector(0)),
                   original.PredictValue(x.RowVector(0)));
  std::remove(path.c_str());
}

TEST(SerializationTest, DecisionTreeRoundTrip) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(7, &x, &y_reg, &y_cls);
  for (TaskType task :
       {TaskType::kRegression, TaskType::kClassification}) {
    DecisionTreeConfig config;
    config.task = task;
    config.num_classes = 2;
    DecisionTree original(config);
    original.Fit(x, task == TaskType::kRegression ? y_reg : y_cls);
    std::ostringstream out;
    original.SerializeTo(&out);
    std::istringstream in(out.str());
    Result<DecisionTree> restored = DecisionTree::DeserializeFrom(&in);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->node_count(), original.node_count());
    for (int64_t r = 0; r < x.rows(); ++r) {
      if (task == TaskType::kRegression) {
        EXPECT_DOUBLE_EQ(restored->PredictValue(x.Row(r)),
                         original.PredictValue(x.Row(r)));
      } else {
        EXPECT_EQ(restored->PredictClass(x.Row(r)),
                  original.PredictClass(x.Row(r)));
      }
    }
  }
}

TEST(SerializationTest, GbdtRoundTrip) {
  Matrix x;
  std::vector<double> y_reg;
  std::vector<double> y_cls;
  MakeData(8, &x, &y_reg, &y_cls);
  for (TaskType task :
       {TaskType::kRegression, TaskType::kClassification}) {
    GbdtConfig config;
    config.task = task;
    config.num_classes = 2;
    config.num_rounds = 3;
    Gbdt original(config);
    original.Fit(x, task == TaskType::kRegression ? y_reg : y_cls);
    Result<Gbdt> restored = GbdtFromString(GbdtToString(original));
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->tree_count(), original.tree_count());
    for (int64_t r = 0; r < x.rows(); ++r) {
      EXPECT_DOUBLE_EQ(restored->PredictValue(x.Row(r)),
                       original.PredictValue(x.Row(r)));
    }
  }
}

TEST(SerializationTest, RejectsMalformedInput) {
  EXPECT_FALSE(MlpFromString("").ok());
  EXPECT_FALSE(MlpFromString("mlp v9\n").ok());
  EXPECT_FALSE(MlpFromString("mlp v1\nreg 2 0.01 64 0\n1 8\n").ok());
  EXPECT_FALSE(GbdtFromString("nonsense").ok());
  std::istringstream bad_tree("decision_tree v1\nreg 2 12 4 2 0\n1\n");
  EXPECT_FALSE(DecisionTree::DeserializeFrom(&bad_tree).ok());
  // Corrupted child index.
  std::istringstream bad_link(
      "decision_tree v1\nreg 2 12 4 2 0\n1\n0 0.5 7 8 0\n");
  EXPECT_FALSE(DecisionTree::DeserializeFrom(&bad_link).ok());
  EXPECT_FALSE(LoadMlp("/nonexistent/path").ok());
}

}  // namespace
}  // namespace oebench
