#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "outlier/ecod.h"
#include "outlier/isolation_forest.h"

namespace oebench {
namespace {

/// 500 inliers N(0, I) plus `num_outliers` points at distance ~10.
void MakeContaminated(uint64_t seed, int num_outliers, Matrix* data,
                      std::vector<int64_t>* outlier_rows) {
  Rng rng(seed);
  const int n = 500;
  *data = Matrix(n, 4);
  for (double& v : data->data()) v = rng.Gaussian();
  outlier_rows->clear();
  for (int k = 0; k < num_outliers; ++k) {
    int64_t row = 50 + k * 37;
    for (int64_t c = 0; c < 4; ++c) {
      data->At(row, c) = 10.0 + rng.Gaussian();
    }
    outlier_rows->push_back(row);
  }
}

/// Rank of `row`'s score among all scores (1 = highest).
int ScoreRank(const std::vector<double>& scores, int64_t row) {
  int rank = 1;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (static_cast<int64_t>(i) != row &&
        scores[i] > scores[static_cast<size_t>(row)]) {
      ++rank;
    }
  }
  return rank;
}

TEST(EcodTest, RanksPlantedOutliersHighest) {
  Matrix data;
  std::vector<int64_t> outliers;
  MakeContaminated(1, 5, &data, &outliers);
  Ecod detector;
  Result<std::vector<double>> scores = detector.FitScore(data);
  ASSERT_TRUE(scores.ok());
  for (int64_t row : outliers) {
    EXPECT_LE(ScoreRank(*scores, row), 10);
  }
}

TEST(EcodTest, ScoreOnNewData) {
  Matrix data;
  std::vector<int64_t> outliers;
  MakeContaminated(2, 0, &data, &outliers);
  Ecod detector;
  ASSERT_TRUE(detector.FitScore(data).ok());
  Matrix probe = Matrix::FromRows({{0.0, 0.0, 0.0, 0.0},
                                   {12.0, 12.0, 12.0, 12.0}});
  Result<std::vector<double>> scores = detector.Score(probe);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[1], (*scores)[0]);
}

TEST(EcodTest, RejectsTinyInput) {
  Ecod detector;
  EXPECT_FALSE(detector.FitScore(Matrix(1, 2)).ok());
  EXPECT_FALSE(detector.Score(Matrix(1, 2)).ok());  // not fitted
}

TEST(IsolationForestTest, RanksPlantedOutliersHighest) {
  Matrix data;
  std::vector<int64_t> outliers;
  MakeContaminated(3, 5, &data, &outliers);
  IsolationForest detector;
  Result<std::vector<double>> scores = detector.FitScore(data);
  ASSERT_TRUE(scores.ok());
  for (int64_t row : outliers) {
    EXPECT_LE(ScoreRank(*scores, row), 10);
  }
  // Scores live in (0, 1).
  for (double s : *scores) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForestTest, DeterministicForFixedSeed) {
  Matrix data;
  std::vector<int64_t> outliers;
  MakeContaminated(4, 3, &data, &outliers);
  IsolationForest::Options options;
  options.seed = 77;
  IsolationForest a(options);
  IsolationForest b(options);
  Result<std::vector<double>> sa = a.FitScore(data);
  Result<std::vector<double>> sb = b.FitScore(data);
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_EQ(*sa, *sb);
}

TEST(ThresholdOutliersTest, ThreeSigmaRule) {
  std::vector<double> scores(100, 1.0);
  scores[7] = 100.0;  // extreme
  std::vector<bool> mask = ThresholdOutliers(scores);
  int count = 0;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) {
      ++count;
      EXPECT_EQ(i, 7u);
    }
  }
  EXPECT_EQ(count, 1);
}

TEST(ThresholdOutliersTest, UniformScoresFlagNothing) {
  std::vector<double> scores(50, 0.5);
  std::vector<bool> mask = ThresholdOutliers(scores);
  EXPECT_TRUE(std::none_of(mask.begin(), mask.end(),
                           [](bool b) { return b; }));
}

}  // namespace
}  // namespace oebench
