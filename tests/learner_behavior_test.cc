// Behavioural tests of the continual-learning machinery itself: EWC's
// anchor actually restrains parameter movement, LwF's distillation pulls
// the model toward its predecessor, iCaRL's replay retains old-concept
// skill, SEA replaces its weakest member, and ARF recovers from an
// abrupt drift faster than a frozen model.

#include <gtest/gtest.h>

#include <cmath>

#include "core/arf.h"
#include "core/evaluator.h"
#include "core/ewc.h"
#include "core/icarl.h"
#include "core/lwf.h"
#include "core/naive_nn.h"
#include "core/sea.h"
#include "models/hoeffding_tree.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

/// Two-concept regression stream: y = +x0 in the first half, y = -x0 in
/// the second half.
PreparedStream TwoConceptStream(uint64_t seed) {
  StreamSpec spec;
  spec.name = "two_concept";
  spec.task = TaskType::kRegression;
  spec.num_instances = 2000;
  spec.num_numeric_features = 4;
  spec.window_size = 200;
  spec.drift_pattern = DriftPattern::kAbrupt;
  spec.drift_magnitude = 3.0;
  spec.noise_level = 0.05;
  spec.seed = seed;
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  EXPECT_TRUE(prepared.ok());
  return *prepared;
}

double ParameterDistance(const Mlp& a, const Mlp& b) {
  double sum = 0.0;
  for (size_t l = 0; l < a.weights().size(); ++l) {
    for (size_t i = 0; i < a.weights()[l].data().size(); ++i) {
      double d = a.weights()[l].data()[i] - b.weights()[l].data()[i];
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

TEST(EwcBehaviorTest, StrongerLambdaRestrainsParameterMovement) {
  PreparedStream stream = TwoConceptStream(1);
  auto run = [&](double lambda) {
    LearnerConfig config;
    config.epochs = 5;
    config.hidden_sizes = {8};
    config.ewc_lambda = lambda;
    EwcLearner learner(config);
    learner.Begin(stream);
    // Train on the first concept, snapshot, then train on the drifted
    // concept and measure how far parameters moved.
    learner.TrainWindow(stream.windows[0]);
    learner.TrainWindow(stream.windows[1]);
    std::vector<Matrix> before = learner.ParametersForTest();
    learner.TrainWindow(stream.windows.back());
    std::vector<Matrix> after = learner.ParametersForTest();
    double sum = 0.0;
    for (size_t l = 0; l < before.size(); ++l) {
      for (size_t i = 0; i < before[l].data().size(); ++i) {
        double d = after[l].data()[i] - before[l].data()[i];
        sum += d * d;
      }
    }
    return std::sqrt(sum);
  };
  // 1e6 is strong but still inside the stable regime (the paper reports
  // factors beyond ~1e5 "lead to loss explosions", which we reproduce —
  // at 1e8 parameters go NaN, so that regime is not comparable).
  double weak = run(1.0);
  double strong = run(1e6);
  EXPECT_LT(strong, weak);
}

TEST(LwfBehaviorTest, DistillationPullsTowardPreviousModel) {
  PreparedStream stream = TwoConceptStream(2);
  auto run = [&](double lambda) {
    LearnerConfig config;
    config.epochs = 5;
    config.hidden_sizes = {8};
    config.lwf_lambda = lambda;
    config.seed = 5;
    LwfLearner learner(config);
    learner.Begin(stream);
    learner.TrainWindow(stream.windows[0]);
    // Predictions of the previous model on the last window.
    std::vector<double> prev_preds;
    const WindowData& window = stream.windows.back();
    // Train on the drifted concept; with huge lambda the outputs should
    // stay close to the pre-training outputs.
    std::vector<double> before;
    for (int64_t r = 0; r < window.features.rows(); ++r) {
      before.push_back(
          learner.ModelForTest().PredictValue(window.features.RowVector(r)));
    }
    learner.TrainWindow(window);
    double moved = 0.0;
    for (int64_t r = 0; r < window.features.rows(); ++r) {
      double d = learner.ModelForTest().PredictValue(
                     window.features.RowVector(r)) -
                 before[static_cast<size_t>(r)];
      moved += d * d;
    }
    return moved;
  };
  double weak = run(0.0);
  double strong = run(3.0);  // strong yet stable distillation pull
  EXPECT_LT(strong, weak);
}

TEST(IcarlBehaviorTest, ReplayRetainsOldConceptBetterThanNaive) {
  // Classification stream with an abrupt label flip; after training
  // through the flip, replay should keep more skill on the *old* concept
  // than naive training does.
  StreamSpec spec;
  spec.name = "retain";
  spec.task = TaskType::kClassification;
  spec.num_classes = 2;
  spec.num_instances = 2400;
  spec.num_numeric_features = 4;
  spec.window_size = 300;
  spec.drift_pattern = DriftPattern::kAbrupt;
  spec.drift_magnitude = 3.0;
  spec.noise_level = 0.05;
  spec.seed = 3;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  ASSERT_TRUE(prepared.ok());

  LearnerConfig config;
  config.epochs = 5;
  config.hidden_sizes = {8};
  config.buffer_size = 200;

  IcarlLearner icarl(config);
  NaiveNnLearner naive(config);
  icarl.Begin(*prepared);
  naive.Begin(*prepared);
  for (const WindowData& window : prepared->windows) {
    icarl.TrainWindow(window);
    naive.TrainWindow(window);
  }
  // Old-concept data = window 0.
  double icarl_old = icarl.TestLoss(prepared->windows[0]);
  double naive_old = naive.TestLoss(prepared->windows[0]);
  EXPECT_LE(icarl_old, naive_old + 0.05);
}

TEST(SeaBehaviorTest, CandidateReplacesWorstMember) {
  PreparedStream stream = TwoConceptStream(4);
  LearnerConfig config;
  config.ensemble_size = 2;
  SeaLearner learner(SeaBase::kDt, config);
  learner.Begin(stream);
  // Fill the ensemble with pre-drift members.
  learner.TrainWindow(stream.windows[0]);
  learner.TrainWindow(stream.windows[1]);
  double before = learner.TestLoss(stream.windows.back());
  // Several post-drift windows: replacement should adapt the ensemble.
  for (size_t w = stream.windows.size() - 4; w < stream.windows.size() - 1;
       ++w) {
    learner.TrainWindow(stream.windows[w]);
  }
  double after = learner.TestLoss(stream.windows.back());
  EXPECT_LT(after, before);
  EXPECT_EQ(learner.ensemble_size(), 2);
}

TEST(ArfBehaviorTest, RecoversAfterAbruptDrift) {
  StreamSpec spec;
  spec.name = "arf_drift";
  spec.task = TaskType::kClassification;
  spec.num_classes = 2;
  spec.num_instances = 4000;
  spec.num_numeric_features = 4;
  spec.window_size = 250;
  spec.drift_pattern = DriftPattern::kAbrupt;
  spec.drift_magnitude = 4.0;
  spec.noise_level = 0.05;
  spec.seed = 6;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  ASSERT_TRUE(prepared.ok());

  LearnerConfig config;
  config.ensemble_size = 3;
  ArfLearner learner(config);
  EvalResult result = RunPrequential(&learner, *prepared);
  // The final windows (well after the drift) should be classified far
  // better than chance — the forest replaced its drifted members.
  double late = result.per_window_loss.back();
  EXPECT_LT(late, 0.35);
}

TEST(MlpCopyTest, CopiedModelPredictsIdentically) {
  PreparedStream stream = TwoConceptStream(8);
  LearnerConfig config;
  config.epochs = 2;
  config.hidden_sizes = {8};
  NaiveNnLearner learner(config);
  learner.Begin(stream);
  learner.TrainWindow(stream.windows[0]);
  Mlp copy = learner.ModelForTest();
  const WindowData& window = stream.windows[1];
  for (int64_t r = 0; r < std::min<int64_t>(20, window.features.rows());
       ++r) {
    EXPECT_DOUBLE_EQ(
        copy.PredictValue(window.features.RowVector(r)),
        learner.ModelForTest().PredictValue(window.features.RowVector(r)));
  }
  (void)ParameterDistance;
}

}  // namespace
}  // namespace oebench
