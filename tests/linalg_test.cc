#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "linalg/vector_ops.h"

namespace oebench {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(MatrixTest, ConstructAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.At(0, 1), -2.0);
}

TEST(MatrixTest, MatMul) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50);
}

TEST(MatrixTest, TransposeAndIdentity) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix at = a.Transposed();
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at.cols(), 2);
  EXPECT_DOUBLE_EQ(at.At(2, 1), 6);
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(a.MatMul(id.MatMul(id)).data(), a.data());
}

TEST(MatrixTest, AddSubScale) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 5}});
  EXPECT_DOUBLE_EQ(a.Add(b).At(0, 1), 7);
  EXPECT_DOUBLE_EQ(b.Sub(a).At(0, 0), 2);
  EXPECT_DOUBLE_EQ(a.Scale(3.0).At(0, 1), 6);
}

TEST(MatrixTest, ColumnStatsSkipNan) {
  Matrix m = Matrix::FromRows({{1, kNan}, {3, 4}, {5, kNan}});
  std::vector<double> mean = m.ColumnMeans();
  EXPECT_DOUBLE_EQ(mean[0], 3.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
  std::vector<double> sd = m.ColumnStdDevs();
  EXPECT_NEAR(sd[0], std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
}

TEST(MatrixTest, SelectRowsAndCols) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix rows = m.SelectRows({2, 0});
  EXPECT_DOUBLE_EQ(rows.At(0, 0), 7);
  EXPECT_DOUBLE_EQ(rows.At(1, 2), 3);
  Matrix cols = m.SelectCols({1});
  EXPECT_EQ(cols.cols(), 1);
  EXPECT_DOUBLE_EQ(cols.At(2, 0), 8);
}

TEST(MatrixTest, SliceAndVStack) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix top = m.Slice(0, 1);
  Matrix rest = m.Slice(1, 3);
  Matrix back = Matrix::VStack(top, rest);
  EXPECT_EQ(back.data(), m.data());
}

TEST(VectorOpsTest, DotNormDistance) {
  std::vector<double> a = {1, 2, 2};
  std::vector<double> b = {0, 2, 2};
  EXPECT_DOUBLE_EQ(Dot(a, b), 8);
  EXPECT_DOUBLE_EQ(Norm(a), 3);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 1);
}

TEST(VectorOpsTest, NanEuclidean) {
  std::vector<double> a = {1, kNan, 3};
  std::vector<double> b = {2, 5, kNan};
  // Only coordinate 0 usable: dist = sqrt(3/1 * 1) = sqrt(3).
  EXPECT_NEAR(NanEuclideanDistance(a, b), std::sqrt(3.0), 1e-12);
  std::vector<double> c = {kNan, kNan, kNan};
  EXPECT_TRUE(std::isinf(NanEuclideanDistance(a, c)));
}

TEST(VectorOpsTest, MeanVarianceQuantile) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
}

TEST(VectorOpsTest, SoftmaxAndArgMax) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  SoftmaxInPlace(&v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_GT(v[2], v[1]);
  EXPECT_EQ(ArgMax(v), 2);
}

TEST(EigenTest, DiagonalizesSymmetricMatrix) {
  Matrix a = Matrix::FromRows({{2, 1, 0}, {1, 3, 1}, {0, 1, 2}});
  EigenDecomposition eig = SymmetricEigen(a);
  ASSERT_EQ(eig.values.size(), 3u);
  // Eigenvalues sorted descending, A v = lambda v.
  EXPECT_GE(eig.values[0], eig.values[1]);
  EXPECT_GE(eig.values[1], eig.values[2]);
  for (int k = 0; k < 3; ++k) {
    std::vector<double> v(3);
    for (int i = 0; i < 3; ++i) v[static_cast<size_t>(i)] = eig.vectors.At(i, k);
    for (int i = 0; i < 3; ++i) {
      double av = 0.0;
      for (int j = 0; j < 3; ++j) av += a.At(i, j) * v[static_cast<size_t>(j)];
      EXPECT_NEAR(av, eig.values[static_cast<size_t>(k)] *
                          v[static_cast<size_t>(i)],
                  1e-9);
    }
  }
  // Trace preserved.
  EXPECT_NEAR(eig.values[0] + eig.values[1] + eig.values[2], 7.0, 1e-9);
}

TEST(EigenTest, SolveLinearSystem) {
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  std::vector<double> x = SolveLinearSystem(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(EigenTest, SolveSingularReturnsZeros) {
  Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  std::vector<double> x = SolveLinearSystem(a, {1, 2});
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(PcaTest, RecoversDominantDirection) {
  // Data stretched along (1, 1)/sqrt(2).
  Rng rng(7);
  Matrix data(500, 2);
  for (int64_t r = 0; r < data.rows(); ++r) {
    double main = rng.Gaussian() * 5.0;
    double minor = rng.Gaussian() * 0.3;
    data.At(r, 0) = main + minor;
    data.At(r, 1) = main - minor;
  }
  Pca pca;
  ASSERT_TRUE(pca.Fit(data, 2).ok());
  EXPECT_GT(pca.explained_variance_ratio()[0], 0.95);
  double c0 = pca.components().At(0, 0);
  double c1 = pca.components().At(1, 0);
  EXPECT_NEAR(std::abs(c0), std::abs(c1), 0.05);

  Matrix projected = pca.Transform(data);
  EXPECT_EQ(projected.cols(), 2);
  // Projected first component variance dominates.
  std::vector<double> sd = projected.ColumnStdDevs();
  EXPECT_GT(sd[0], 5.0 * sd[1]);
}

TEST(PcaTest, RejectsDegenerateInput) {
  Matrix one_row(1, 3);
  Pca pca;
  EXPECT_FALSE(pca.Fit(one_row, 2).ok());
}

}  // namespace
}  // namespace oebench
