// Classification-path coverage for the statistics pipeline (the
// regression path is covered in stats_test.cc): Gaussian-NB-driven
// concept drift detection, per-column aggregation invariants, and
// profile facets on a classification stream.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/drift_stats.h"
#include "stats/profile.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

PreparedStream MakeClsStream(DriftPattern pattern, uint64_t seed) {
  StreamSpec spec;
  spec.name = "cls_stats";
  spec.task = TaskType::kClassification;
  spec.num_classes = 3;
  spec.num_instances = 2400;
  spec.num_numeric_features = 5;
  spec.num_categorical_features = 1;
  spec.window_size = 200;
  spec.drift_pattern = pattern;
  spec.drift_magnitude = pattern == DriftPattern::kNone ? 0.0 : 3.0;
  spec.noise_level = 0.1;
  spec.seed = seed;
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok());
  PipelineOptions options;
  options.imputer = "mean";
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  EXPECT_TRUE(prepared.ok());
  return *prepared;
}

TEST(ConceptDriftClassificationTest, NbPipelineFlagsConceptFlip) {
  PreparedStream drifted = MakeClsStream(DriftPattern::kAbrupt, 61);
  PreparedStream flat = MakeClsStream(DriftPattern::kNone, 62);
  auto total = [](const std::vector<DetectorStats>& all) {
    double sum = 0.0;
    for (const DetectorStats& s : all) {
      sum += s.drift_ratio_avg + s.warning_ratio_avg;
    }
    return sum;
  };
  double drift_score = total(ComputeConceptDriftStats(drifted));
  double flat_score = total(ComputeConceptDriftStats(flat));
  EXPECT_GT(drift_score, flat_score);
  EXPECT_GT(drift_score, 0.0);
}

TEST(ConceptDriftClassificationTest, FourDetectorsReported) {
  PreparedStream stream = MakeClsStream(DriftPattern::kGradual, 63);
  std::vector<DetectorStats> stats = ComputeConceptDriftStats(stream);
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats[0].detector, "ddm");
  EXPECT_EQ(stats[1].detector, "eddm");
  EXPECT_EQ(stats[2].detector, "adwin_accuracy");
  EXPECT_EQ(stats[3].detector, "perm");
  for (const DetectorStats& s : stats) {
    EXPECT_GE(s.drift_ratio_avg, 0.0);
    EXPECT_LE(s.drift_ratio_avg, 1.0);
  }
}

TEST(DataDriftAggregationTest, MaxAtLeastAvgOverColumns) {
  PreparedStream stream = MakeClsStream(DriftPattern::kGradual, 64);
  for (const DetectorStats& s : ComputeDataDriftStats(stream)) {
    EXPECT_GE(s.drift_ratio_max, s.drift_ratio_avg) << s.detector;
    EXPECT_GE(s.warning_ratio_max, s.warning_ratio_avg) << s.detector;
  }
}

TEST(ProfileClassificationTest, FacetsAndTaskFlag) {
  StreamSpec spec;
  spec.name = "cls_profile";
  spec.task = TaskType::kClassification;
  spec.num_classes = 4;
  spec.num_instances = 1600;
  spec.num_numeric_features = 5;
  spec.window_size = 160;
  spec.seed = 65;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<DatasetProfile> profile = ProfileDataset(*stream);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->is_classification, 1.0);
  std::vector<double> basic = profile->BasicFacet();
  EXPECT_NEAR(basic[0], std::log10(1600.0), 1e-9);
  EXPECT_DOUBLE_EQ(basic[1], 5.0);  // feature count after encoding
  EXPECT_DOUBLE_EQ(basic[2], 10.0);  // windows
  EXPECT_DOUBLE_EQ(basic[3], 1.0);
}

}  // namespace
}  // namespace oebench
