#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "drift/adwin.h"
#include "drift/cdbd.h"
#include "drift/ddm.h"
#include "drift/ecdd.h"
#include "drift/eddm.h"
#include "drift/hdddm.h"
#include "drift/hddm_a.h"
#include "drift/kdq_tree.h"
#include "drift/ks_test.h"
#include "drift/page_hinkley.h"
#include "drift/pca_cd.h"
#include "drift/perm.h"

namespace oebench {
namespace {

Matrix GaussianBatch(Rng* rng, int64_t n, int64_t d, double mean,
                     double stddev = 1.0) {
  Matrix m(n, d);
  for (double& v : m.data()) v = rng->Gaussian(mean, stddev);
  return m;
}

std::vector<double> GaussianVector(Rng* rng, int64_t n, double mean,
                                   double stddev = 1.0) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng->Gaussian(mean, stddev);
  return v;
}

// ------------------------------------------------------------ KS test

TEST(KsTest, StatisticZeroForIdenticalSamples) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KsStatistic(a, a), 0.0);
}

TEST(KsTest, StatisticOneForDisjointSamples) {
  EXPECT_DOUBLE_EQ(KsStatistic({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(KsTest, PValueMonotoneInStatistic) {
  double p_small = KsPValue(0.05, 200, 200);
  double p_large = KsPValue(0.5, 200, 200);
  EXPECT_GT(p_small, 0.5);
  EXPECT_LT(p_large, 1e-6);
  EXPECT_GT(p_small, p_large);
}

TEST(KsWindowDetectorTest, FlagsShiftedWindow) {
  Rng rng(1);
  KsWindowDetector detector(0.05);
  EXPECT_EQ(detector.Update(GaussianVector(&rng, 300, 0.0)),
            DriftSignal::kStable);
  EXPECT_EQ(detector.Update(GaussianVector(&rng, 300, 2.0)),
            DriftSignal::kDrift);
  EXPECT_LT(detector.last_p_value(), 0.05);
}

TEST(KsWindowDetectorTest, QuietOnStationaryStream) {
  Rng rng(2);
  KsWindowDetector detector(0.01);
  int drifts = 0;
  for (int w = 0; w < 20; ++w) {
    if (detector.Update(GaussianVector(&rng, 200, 0.0)) ==
        DriftSignal::kDrift) {
      ++drifts;
    }
  }
  EXPECT_LE(drifts, 2);
}

// ------------------------------------------------------------- HDDDM

TEST(HdddmTest, DetectsAbruptShift) {
  Rng rng(3);
  Hdddm detector;
  for (int w = 0; w < 6; ++w) {
    EXPECT_NE(detector.Update(GaussianBatch(&rng, 200, 3, 0.0)),
              DriftSignal::kDrift);
  }
  EXPECT_EQ(detector.Update(GaussianBatch(&rng, 200, 3, 3.0)),
            DriftSignal::kDrift);
}

TEST(HdddmTest, QuietOnStationary) {
  Rng rng(4);
  Hdddm detector;
  int drifts = 0;
  for (int w = 0; w < 25; ++w) {
    if (detector.Update(GaussianBatch(&rng, 200, 3, 0.0)) ==
        DriftSignal::kDrift) {
      ++drifts;
    }
  }
  EXPECT_LE(drifts, 2);
}

// ----------------------------------------------------------- kdq-tree

TEST(KdqTreeTest, DetectsDistributionChange) {
  Rng rng(5);
  KdqTreeDetector detector;
  EXPECT_EQ(detector.Update(GaussianBatch(&rng, 400, 4, 0.0)),
            DriftSignal::kStable);
  EXPECT_EQ(detector.Update(GaussianBatch(&rng, 400, 4, 2.5)),
            DriftSignal::kDrift);
  EXPECT_GT(detector.last_divergence(), 0.0);
}

TEST(KdqTreeTest, QuietOnStationary) {
  Rng rng(6);
  KdqTreeDetector detector;
  int drifts = 0;
  for (int w = 0; w < 12; ++w) {
    if (detector.Update(GaussianBatch(&rng, 300, 4, 0.0)) ==
        DriftSignal::kDrift) {
      ++drifts;
    }
  }
  EXPECT_LE(drifts, 2);
}

// --------------------------------------------------------------- CDBD

TEST(CdbdTest, DetectsConfidenceShift) {
  Rng rng(7);
  Cdbd detector;
  for (int w = 0; w < 6; ++w) {
    detector.Update(GaussianVector(&rng, 300, 0.0));
  }
  EXPECT_EQ(detector.Update(GaussianVector(&rng, 300, 4.0)),
            DriftSignal::kDrift);
}

// ------------------------------------------------------------- PCA-CD

TEST(PcaCdTest, DetectsCovarianceRotation) {
  Rng rng(8);
  PcaCd detector;
  for (int w = 0; w < 5; ++w) {
    detector.Update(GaussianBatch(&rng, 300, 4, 0.0));
  }
  // Shift the mean strongly; projections change distribution.
  DriftSignal last = DriftSignal::kStable;
  for (int w = 0; w < 4; ++w) {
    last = detector.Update(GaussianBatch(&rng, 300, 4, 3.0));
    if (last == DriftSignal::kDrift) break;
  }
  EXPECT_EQ(last, DriftSignal::kDrift);
}

// -------------------------------------------------------------- ADWIN

TEST(AdwinTest, WindowGrowsOnStationaryStream) {
  Adwin adwin(0.002);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) adwin.Update(rng.Gaussian(0.5, 0.1));
  EXPECT_GT(adwin.WindowSize(), 1500);
  EXPECT_NEAR(adwin.Mean(), 0.5, 0.02);
}

TEST(AdwinTest, CutsWindowOnMeanShift) {
  Adwin adwin(0.002);
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) adwin.Update(rng.Gaussian(0.2, 0.05));
  bool cut = false;
  for (int i = 0; i < 1000; ++i) {
    cut = adwin.Update(rng.Gaussian(0.8, 0.05)) || cut;
  }
  EXPECT_TRUE(cut);
  // Window should have shed the old regime.
  EXPECT_NEAR(adwin.Mean(), 0.8, 0.1);
}

TEST(AdwinAccuracyDetectorTest, SignalsOnErrorRateJump) {
  AdwinAccuracyDetector detector;
  Rng rng(11);
  bool drift = false;
  for (int i = 0; i < 1500; ++i) {
    detector.Update(rng.Bernoulli(0.1) ? 1.0 : 0.0);
  }
  for (int i = 0; i < 1500; ++i) {
    if (detector.Update(rng.Bernoulli(0.6) ? 1.0 : 0.0) ==
        DriftSignal::kDrift) {
      drift = true;
      break;
    }
  }
  EXPECT_TRUE(drift);
}

// ---------------------------------------------------- error detectors

struct ErrorDetectorCase {
  std::string name;
  std::function<std::unique_ptr<StreamErrorDetector>()> make;
};

class ErrorDetectorParamTest
    : public ::testing::TestWithParam<ErrorDetectorCase> {};

TEST_P(ErrorDetectorParamTest, FiresOnErrorJumpAndQuietWhenStable) {
  // Quiet phase: 2% errors. Then jump to 70%.
  std::unique_ptr<StreamErrorDetector> detector = GetParam().make();
  Rng rng(12);
  int early_drifts = 0;
  for (int i = 0; i < 2000; ++i) {
    if (detector->Update(rng.Bernoulli(0.02) ? 1.0 : 0.0) ==
        DriftSignal::kDrift) {
      ++early_drifts;
    }
  }
  // Sequential detectors tolerate a couple of false alarms over 2000
  // quiet samples; what matters is the overwhelming asymmetry vs the
  // post-jump behaviour below.
  EXPECT_LE(early_drifts, 3) << GetParam().name;
  bool fired = false;
  for (int i = 0; i < 2000; ++i) {
    if (detector->Update(rng.Bernoulli(0.7) ? 1.0 : 0.0) ==
        DriftSignal::kDrift) {
      fired = true;
      break;
    }
  }
  EXPECT_TRUE(fired) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllErrorDetectors, ErrorDetectorParamTest,
    ::testing::Values(
        ErrorDetectorCase{"ddm",
                          [] {
                            return std::unique_ptr<StreamErrorDetector>(
                                new Ddm());
                          }},
        ErrorDetectorCase{"eddm",
                          [] {
                            return std::unique_ptr<StreamErrorDetector>(
                                new Eddm());
                          }},
        ErrorDetectorCase{"adwin",
                          [] {
                            return std::unique_ptr<StreamErrorDetector>(
                                new AdwinAccuracyDetector());
                          }},
        ErrorDetectorCase{"page_hinkley",
                          [] {
                            return std::unique_ptr<StreamErrorDetector>(
                                new PageHinkley(0.005, 20.0));
                          }},
        ErrorDetectorCase{"ecdd",
                          [] {
                            return std::unique_ptr<StreamErrorDetector>(
                                new Ecdd());
                          }},
        ErrorDetectorCase{"hddm_a",
                          [] {
                            return std::unique_ptr<StreamErrorDetector>(
                                new HddmA());
                          }}),
    [](const ::testing::TestParamInfo<ErrorDetectorCase>& info) {
      return info.param.name;
    });

// --------------------------------------------------------------- PERM

TEST(PermTest, DetectsConceptChangeInRegression) {
  Rng rng(13);
  auto make_window = [&rng](double slope, Matrix* x,
                            std::vector<double>* y) {
    *x = Matrix(200, 2);
    y->resize(200);
    for (int i = 0; i < 200; ++i) {
      x->At(i, 0) = rng.Gaussian();
      x->At(i, 1) = rng.Gaussian();
      (*y)[static_cast<size_t>(i)] =
          slope * x->At(i, 0) + 0.05 * rng.Gaussian();
    }
  };
  PermDetector detector(PermDetector::LinearRegressionEval());
  Matrix x;
  std::vector<double> y;
  make_window(1.0, &x, &y);
  EXPECT_EQ(detector.Update(x, y), DriftSignal::kStable);
  make_window(1.0, &x, &y);
  EXPECT_NE(detector.Update(x, y), DriftSignal::kDrift);
  make_window(-1.0, &x, &y);  // concept flip
  EXPECT_EQ(detector.Update(x, y), DriftSignal::kDrift);
  EXPECT_LT(detector.last_p_value(), 0.05);
}

TEST(PermTest, ClassificationEvalWorks) {
  Rng rng(14);
  auto make_window = [&rng](double sign, Matrix* x,
                            std::vector<double>* y) {
    *x = Matrix(200, 2);
    y->resize(200);
    for (int i = 0; i < 200; ++i) {
      int cls = static_cast<int>(rng.UniformInt(2));
      x->At(i, 0) = sign * (cls == 0 ? -2.0 : 2.0) + rng.Gaussian() * 0.5;
      x->At(i, 1) = rng.Gaussian();
      (*y)[static_cast<size_t>(i)] = cls;
    }
  };
  PermDetector detector(PermDetector::GaussianNbEval(2));
  Matrix x;
  std::vector<double> y;
  make_window(1.0, &x, &y);
  detector.Update(x, y);
  make_window(-1.0, &x, &y);  // labels flip sides
  EXPECT_EQ(detector.Update(x, y), DriftSignal::kDrift);
}

TEST(DriftSignalTest, Names) {
  EXPECT_STREQ(DriftSignalToString(DriftSignal::kStable), "stable");
  EXPECT_STREQ(DriftSignalToString(DriftSignal::kWarning), "warning");
  EXPECT_STREQ(DriftSignalToString(DriftSignal::kDrift), "drift");
}

}  // namespace
}  // namespace oebench
