#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "models/decision_tree.h"
#include "models/gbdt.h"
#include "models/hoeffding_tree.h"
#include "models/linear_model.h"
#include "models/mlp.h"
#include "models/naive_bayes.h"

namespace oebench {
namespace {

/// Linearly separable 2-class data around two Gaussian blobs.
void MakeBlobs(int n, uint64_t seed, Matrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    int cls = i % 2;
    double cx = cls == 0 ? -2.0 : 2.0;
    x->At(i, 0) = cx + rng.Gaussian() * 0.6;
    x->At(i, 1) = cx + rng.Gaussian() * 0.6;
    (*y)[static_cast<size_t>(i)] = cls;
  }
}

/// y = 2 x0 - x1 + 0.5 with mild noise.
void MakeLinear(int n, uint64_t seed, Matrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    x->At(i, 0) = rng.Gaussian();
    x->At(i, 1) = rng.Gaussian();
    (*y)[static_cast<size_t>(i)] =
        2.0 * x->At(i, 0) - x->At(i, 1) + 0.5 + 0.01 * rng.Gaussian();
  }
}

TEST(MlpTest, PaperHiddenLayouts) {
  EXPECT_EQ(PaperMlpHidden(3), (std::vector<int>{32, 16, 8}));
  EXPECT_EQ(PaperMlpHidden(5), (std::vector<int>{32, 32, 16, 16, 8}));
  EXPECT_EQ(PaperMlpHidden(7),
            (std::vector<int>{32, 32, 32, 16, 16, 16, 8}));
}

TEST(MlpTest, LearnsLinearRegression) {
  Matrix x;
  std::vector<double> y;
  MakeLinear(400, 1, &x, &y);
  MlpConfig config;
  config.task = TaskType::kRegression;
  config.hidden_sizes = {16, 8};
  config.learning_rate = 0.01;
  Mlp mlp(config, 7);
  Rng rng(2);
  double first_loss = mlp.TrainEpoch(x, y, &rng);
  for (int e = 0; e < 60; ++e) mlp.TrainEpoch(x, y, &rng);
  double final_loss = mlp.EvaluateLoss(x, y);
  EXPECT_LT(final_loss, 0.1);
  EXPECT_LT(final_loss, first_loss);
}

TEST(MlpTest, LearnsBlobClassification) {
  Matrix x;
  std::vector<double> y;
  MakeBlobs(400, 3, &x, &y);
  MlpConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 2;
  config.hidden_sizes = {16, 8};
  Mlp mlp(config, 7);
  Rng rng(4);
  for (int e = 0; e < 40; ++e) mlp.TrainEpoch(x, y, &rng);
  int correct = 0;
  for (int64_t r = 0; r < x.rows(); ++r) {
    if (mlp.PredictClass(x.RowVector(r)) ==
        static_cast<int>(y[static_cast<size_t>(r)])) {
      ++correct;
    }
  }
  EXPECT_GT(correct, 380);
  std::vector<double> proba = mlp.PredictProba(x.RowVector(0));
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

TEST(MlpTest, XorNeedsHiddenLayer) {
  Matrix x = Matrix::FromRows({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  std::vector<double> y = {0, 1, 1, 0};
  MlpConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 2;
  config.hidden_sizes = {8};
  config.learning_rate = 0.1;
  config.batch_size = 4;
  Mlp mlp(config, 21);
  Rng rng(22);
  for (int e = 0; e < 2000; ++e) mlp.TrainEpoch(x, y, &rng);
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(mlp.PredictClass(x.RowVector(r)),
              static_cast<int>(y[static_cast<size_t>(r)]));
  }
}

TEST(MlpTest, ParameterCountMatchesArchitecture) {
  MlpConfig config;
  config.task = TaskType::kRegression;
  config.hidden_sizes = {32, 16, 8};
  Mlp mlp(config, 1);
  mlp.EnsureInitialized(10);
  // 10*32+32 + 32*16+16 + 16*8+8 + 8*1+1 = 352+528+136+9 = 1025.
  EXPECT_EQ(mlp.ParameterCount(), 1025);
  EXPECT_EQ(mlp.MemoryBytes(), 1025 * 8);
}

TEST(MlpTest, FisherIsNonNegativeAndShaped) {
  Matrix x;
  std::vector<double> y;
  MakeLinear(50, 5, &x, &y);
  MlpConfig config;
  config.task = TaskType::kRegression;
  config.hidden_sizes = {4};
  Mlp mlp(config, 9);
  Rng rng(10);
  mlp.TrainEpoch(x, y, &rng);
  std::vector<Matrix> wsq;
  std::vector<std::vector<double>> bsq;
  mlp.ComputeSquaredGradients(x, y, &wsq, &bsq);
  ASSERT_EQ(wsq.size(), mlp.weights().size());
  double total = 0.0;
  for (const Matrix& m : wsq) {
    for (double v : m.data()) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(DecisionTreeTest, ClassifiesBlobs) {
  Matrix x;
  std::vector<double> y;
  MakeBlobs(300, 6, &x, &y);
  DecisionTreeConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 2;
  DecisionTree tree(config);
  tree.Fit(x, y);
  int correct = 0;
  for (int64_t r = 0; r < x.rows(); ++r) {
    if (tree.PredictClass(x.Row(r)) ==
        static_cast<int>(y[static_cast<size_t>(r)])) {
      ++correct;
    }
  }
  EXPECT_GT(correct, 290);
  EXPECT_GT(tree.node_count(), 0);
  std::vector<double> proba = tree.PredictProba(x.Row(0));
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
}

TEST(DecisionTreeTest, RegressesStep) {
  // Step function: y = 1 when x > 0 else -1; a depth-1 tree nails it.
  Rng rng(8);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (int i = 0; i < 200; ++i) {
    x.At(i, 0) = rng.Uniform(-1.0, 1.0);
    y[static_cast<size_t>(i)] = x.At(i, 0) > 0 ? 1.0 : -1.0;
  }
  DecisionTreeConfig config;
  config.task = TaskType::kRegression;
  config.max_depth = 3;
  DecisionTree tree(config);
  tree.Fit(x, y);
  std::vector<double> probe_hi = {0.5};
  std::vector<double> probe_lo = {-0.5};
  EXPECT_NEAR(tree.PredictValue(probe_hi), 1.0, 1e-9);
  EXPECT_NEAR(tree.PredictValue(probe_lo), -1.0, 1e-9);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Matrix x;
  std::vector<double> y;
  MakeLinear(300, 9, &x, &y);
  DecisionTreeConfig config;
  config.task = TaskType::kRegression;
  config.max_depth = 2;
  DecisionTree tree(config);
  tree.Fit(x, y);
  // Depth-2 binary tree has at most 3 internal + 4 leaf nodes.
  EXPECT_LE(tree.node_count(), 7);
}

TEST(DecisionTreeTest, SampleWeightsShiftLeafValues) {
  Matrix x = Matrix::FromRows({{0.0}, {0.0}});
  std::vector<double> y = {0.0, 10.0};
  DecisionTreeConfig config;
  config.task = TaskType::kRegression;
  DecisionTree tree(config);
  tree.Fit(x, y, {1.0, 3.0});
  std::vector<double> probe = {0.0};
  EXPECT_NEAR(tree.PredictValue(probe), 7.5, 1e-9);
}

TEST(GbdtTest, RegressionBeatsSingleRound) {
  Matrix x;
  std::vector<double> y;
  MakeLinear(400, 11, &x, &y);
  GbdtConfig config1;
  config1.task = TaskType::kRegression;
  config1.num_rounds = 1;
  Gbdt one(config1);
  one.Fit(x, y);
  GbdtConfig config10 = config1;
  config10.num_rounds = 10;
  Gbdt ten(config10);
  ten.Fit(x, y);
  auto mse = [&](const Gbdt& model) {
    double total = 0.0;
    for (int64_t r = 0; r < x.rows(); ++r) {
      double diff = model.PredictValue(x.Row(r)) -
                    y[static_cast<size_t>(r)];
      total += diff * diff;
    }
    return total / static_cast<double>(x.rows());
  };
  EXPECT_LT(mse(ten), mse(one));
  EXPECT_LT(mse(ten), 0.5);
}

TEST(GbdtTest, MulticlassClassification) {
  // Three blobs along a line.
  Rng rng(12);
  Matrix x(300, 2);
  std::vector<double> y(300);
  for (int i = 0; i < 300; ++i) {
    int cls = i % 3;
    x.At(i, 0) = 3.0 * cls + rng.Gaussian() * 0.5;
    x.At(i, 1) = rng.Gaussian();
    y[static_cast<size_t>(i)] = cls;
  }
  GbdtConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 3;
  config.num_rounds = 5;
  Gbdt model(config);
  model.Fit(x, y);
  int correct = 0;
  for (int64_t r = 0; r < x.rows(); ++r) {
    if (model.PredictClass(x.Row(r)) ==
        static_cast<int>(y[static_cast<size_t>(r)])) {
      ++correct;
    }
  }
  EXPECT_GT(correct, 285);
  std::vector<double> proba = model.PredictProba(x.Row(0));
  double sum = 0.0;
  for (double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LinearRegressionTest, RecoversCoefficients) {
  Matrix x;
  std::vector<double> y;
  MakeLinear(500, 13, &x, &y);
  LinearRegression model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.weights()[0], 2.0, 0.02);
  EXPECT_NEAR(model.weights()[1], -1.0, 0.02);
  EXPECT_NEAR(model.intercept(), 0.5, 0.02);
  EXPECT_LT(model.EvaluateMse(x, y), 0.01);
}

TEST(LinearRegressionTest, RejectsMismatchedSizes) {
  Matrix x(3, 2);
  std::vector<double> y = {1.0};
  LinearRegression model;
  EXPECT_FALSE(model.Fit(x, y).ok());
}

TEST(GaussianNbTest, ClassifiesBlobs) {
  Matrix x;
  std::vector<double> y;
  MakeBlobs(300, 14, &x, &y);
  GaussianNb model(2);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(model.EvaluateErrorRate(x, y), 0.03);
}

TEST(HoeffdingTreeTest, LearnsIncrementallyAndSplits) {
  Rng rng(15);
  HoeffdingTreeConfig config;
  config.num_classes = 2;
  config.grace_period = 30;
  HoeffdingTree tree(config, 16);
  // Stream 3000 samples of separable blobs.
  int correct_late = 0;
  int late_total = 0;
  for (int i = 0; i < 3000; ++i) {
    int cls = static_cast<int>(rng.UniformInt(2));
    double row[2] = {cls == 0 ? -2.0 + rng.Gaussian() * 0.6
                              : 2.0 + rng.Gaussian() * 0.6,
                     rng.Gaussian()};
    if (i > 2000) {
      ++late_total;
      if (tree.PredictClass(row, 2) == cls) ++correct_late;
    }
    tree.Learn(row, 2, cls);
  }
  EXPECT_GT(tree.node_count(), 1);  // it actually split
  EXPECT_GT(static_cast<double>(correct_late) / late_total, 0.9);
}

TEST(HoeffdingTreeTest, PureStreamStaysSingleLeaf) {
  HoeffdingTreeConfig config;
  config.num_classes = 2;
  HoeffdingTree tree(config, 17);
  Rng rng(18);
  for (int i = 0; i < 500; ++i) {
    double row[2] = {rng.Gaussian(), rng.Gaussian()};
    tree.Learn(row, 2, 1);  // single class
  }
  EXPECT_EQ(tree.node_count(), 1);
  double row[2] = {0.0, 0.0};
  EXPECT_EQ(tree.PredictClass(row, 2), 1);
}

}  // namespace
}  // namespace oebench
