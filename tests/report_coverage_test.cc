// Coverage for the remaining report-facing pieces: the per-window drift
// statistics series, RepresentativeInfo <-> corpus integrity, spec
// window maths, and the profile facets' invariance to scale.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/outlier_stats.h"
#include "stats/profile.h"
#include "streamgen/corpus.h"
#include "streamgen/representative.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

TEST(RepresentativeIntegrityTest, EveryInfoPointsIntoCorpus) {
  for (const RepresentativeInfo& info : RepresentativeDatasets()) {
    bool found = false;
    for (const CorpusEntry& entry : Corpus()) {
      if (entry.name == info.corpus_name) {
        found = true;
        // Table 3's levels must agree with Table 9's corpus levels.
        EXPECT_EQ(static_cast<int>(entry.drift),
                  static_cast<int>(info.drift))
            << info.short_name;
        EXPECT_EQ(static_cast<int>(entry.anomaly),
                  static_cast<int>(info.anomaly))
            << info.short_name;
        EXPECT_EQ(static_cast<int>(entry.missing),
                  static_cast<int>(info.missing))
            << info.short_name;
      }
    }
    EXPECT_TRUE(found) << info.corpus_name;
  }
}

TEST(OutlierStatsSeriesTest, PerWindowSeriesMatchesWindowCount) {
  StreamSpec spec;
  spec.name = "series";
  spec.num_instances = 1500;
  spec.num_numeric_features = 4;
  spec.window_size = 150;
  spec.point_anomaly_rate = 0.02;
  spec.point_anomaly_magnitude = 15.0;
  spec.seed = 81;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  ASSERT_TRUE(prepared.ok());
  std::vector<OutlierStats> stats = ComputeOutlierStats(*prepared);
  for (const OutlierStats& s : stats) {
    ASSERT_EQ(s.ratio_per_window.size(), prepared->windows.size())
        << s.detector;
    double max_seen = 0.0;
    for (double ratio : s.ratio_per_window) {
      EXPECT_GE(ratio, 0.0);
      EXPECT_LE(ratio, 1.0);
      max_seen = std::max(max_seen, ratio);
    }
    EXPECT_DOUBLE_EQ(max_seen, s.anomaly_ratio_max);
  }
}

TEST(SpecWindowMathTest, WindowSizeScalesWithInstances) {
  const CorpusEntry& entry = Corpus()[0];
  StreamSpec small = SpecFromEntry(entry, 0.001);
  StreamSpec large = SpecFromEntry(entry, 0.01);
  EXPECT_GE(small.window_size, 30);
  EXPECT_GE(large.window_size, small.window_size);
  EXPECT_LE(small.num_instances, large.num_instances);
}

TEST(ProfileScaleStabilityTest, QualitativeScoresStableAcrossScale) {
  // The selection pipeline depends on profiles being comparable across
  // dataset sizes; the qualitative scores of the same spec at two scales
  // must stay in the same ballpark.
  const CorpusEntry* entry = nullptr;
  for (const CorpusEntry& e : Corpus()) {
    if (e.name == "beijing_air_shunyi") entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  auto profile_at = [&](double scale) {
    Result<GeneratedStream> stream =
        GenerateStream(SpecFromEntry(*entry, scale));
    EXPECT_TRUE(stream.ok());
    Result<DatasetProfile> profile = ProfileDataset(*stream);
    EXPECT_TRUE(profile.ok());
    return *profile;
  };
  DatasetProfile small = profile_at(0.0);   // clamped 1200 rows
  DatasetProfile big = profile_at(0.1);     // ~3500 rows
  // High-missing stays high-missing.
  EXPECT_GT(small.MissingScore(), 0.08);
  EXPECT_GT(big.MissingScore(), 0.08);
  EXPECT_NEAR(small.MissingScore(), big.MissingScore(), 0.08);
}

}  // namespace
}  // namespace oebench
