// Tests for §4.3 step 2 helpers: sort-by-time, drop time columns, and
// the time-column name heuristic.

#include <gtest/gtest.h>

#include "preprocess/time_ordering.h"

namespace oebench {
namespace {

Table MakeTable() {
  Table table;
  Column ts = Column::Numeric("timestamp");
  Column value = Column::Numeric("value");
  Column tag = Column::Categorical("tag");
  const double times[] = {3, 1, 2, 1};
  const double values[] = {30, 10, 20, 11};
  const char* tags[] = {"c", "a", "b", "a2"};
  for (int i = 0; i < 4; ++i) {
    ts.AppendNumeric(times[i]);
    value.AppendNumeric(values[i]);
    tag.AppendCategory(tags[i]);
  }
  EXPECT_TRUE(table.AddColumn(std::move(ts)).ok());
  EXPECT_TRUE(table.AddColumn(std::move(value)).ok());
  EXPECT_TRUE(table.AddColumn(std::move(tag)).ok());
  return table;
}

TEST(SortByColumnTest, NumericStableSort) {
  Result<Table> sorted = SortByColumn(MakeTable(), "timestamp");
  ASSERT_TRUE(sorted.ok());
  const Column& value = sorted->column(1);
  EXPECT_DOUBLE_EQ(value.NumericAt(0), 10);   // t=1 first occurrence
  EXPECT_DOUBLE_EQ(value.NumericAt(1), 11);   // t=1 second (stable)
  EXPECT_DOUBLE_EQ(value.NumericAt(2), 20);
  EXPECT_DOUBLE_EQ(value.NumericAt(3), 30);
}

TEST(SortByColumnTest, MissingKeysSortLast) {
  Table table;
  Column ts = Column::Numeric("t");
  ts.AppendMissingNumeric();
  ts.AppendNumeric(5.0);
  ts.AppendNumeric(1.0);
  ASSERT_TRUE(table.AddColumn(std::move(ts)).ok());
  Result<Table> sorted = SortByColumn(table, "t");
  ASSERT_TRUE(sorted.ok());
  EXPECT_DOUBLE_EQ(sorted->column(0).NumericAt(0), 1.0);
  EXPECT_DOUBLE_EQ(sorted->column(0).NumericAt(1), 5.0);
  EXPECT_TRUE(sorted->column(0).IsMissing(2));
}

TEST(SortByColumnTest, CategoricalSortByLabel) {
  Result<Table> sorted = SortByColumn(MakeTable(), "tag");
  ASSERT_TRUE(sorted.ok());
  const Column& tag = sorted->column(2);
  EXPECT_EQ(tag.CategoryName(tag.CodeAt(0)), "a");
  EXPECT_EQ(tag.CategoryName(tag.CodeAt(1)), "a2");
  EXPECT_EQ(tag.CategoryName(tag.CodeAt(3)), "c");
}

TEST(SortByColumnTest, UnknownColumnRejected) {
  EXPECT_FALSE(SortByColumn(MakeTable(), "nope").ok());
}

TEST(DropColumnsTest, RemovesNamedColumnsOnly) {
  Result<Table> dropped = DropColumns(MakeTable(), {"timestamp"});
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->num_columns(), 2);
  EXPECT_FALSE(dropped->ColumnIndex("timestamp").ok());
  EXPECT_TRUE(dropped->ColumnIndex("value").ok());
  EXPECT_FALSE(DropColumns(MakeTable(), {"typo"}).ok());
}

TEST(GuessTimeColumnsTest, FindsTimeLikeNames) {
  Table table;
  ASSERT_TRUE(table.AddColumn(Column::Numeric("Timestamp")).ok());
  ASSERT_TRUE(table.AddColumn(Column::Numeric("pm25")).ok());
  ASSERT_TRUE(table.AddColumn(Column::Numeric("record_DATE")).ok());
  ASSERT_TRUE(table.AddColumn(Column::Numeric("holiday")).ok());
  std::vector<std::string> guessed = GuessTimeColumns(table);
  ASSERT_EQ(guessed.size(), 3u);  // holiday contains "day"
  EXPECT_EQ(guessed[0], "Timestamp");
  EXPECT_EQ(guessed[1], "record_DATE");
  EXPECT_EQ(guessed[2], "holiday");
}

TEST(TimeOrderingIntegrationTest, SortThenDropPipeline) {
  Table table = MakeTable();
  Result<Table> sorted = SortByColumn(table, "timestamp");
  ASSERT_TRUE(sorted.ok());
  Result<Table> cleaned =
      DropColumns(*sorted, GuessTimeColumns(*sorted));
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ(cleaned->num_columns(), 2);
  EXPECT_DOUBLE_EQ(cleaned->column(0).NumericAt(0), 10.0);
}

}  // namespace
}  // namespace oebench
