// bench_util's flag parser and formatting helpers. ParseFlags is the
// front door of every bench binary: it must accept both --flag=value
// and --flag value, validate values strictly (no atoi silently reading
// "2.7" as 2), and exit with usage + status 2 on anything it does not
// understand — a typo'd flag must never silently run a default sweep.

#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace oebench {
namespace {

bench::BenchFlags Parse(std::vector<std::string> args) {
  std::vector<std::string> storage;
  storage.emplace_back("bench_under_test");
  for (std::string& arg : args) storage.push_back(std::move(arg));
  std::vector<char*> argv;
  for (std::string& arg : storage) argv.push_back(arg.data());
  return bench::ParseFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseFlagsTest, DefaultsAndBothValueForms) {
  bench::BenchFlags defaults = Parse({});
  EXPECT_EQ(defaults.scale, 0.08);
  EXPECT_EQ(defaults.repeats, 3);
  EXPECT_EQ(defaults.seed, 1u);
  EXPECT_GE(defaults.threads, 1);
  EXPECT_EQ(defaults.epochs, 0);
  EXPECT_EQ(defaults.shard.index, 0);
  EXPECT_EQ(defaults.shard.count, 1);
  EXPECT_FALSE(defaults.resume);
  EXPECT_FALSE(defaults.merge);

  bench::BenchFlags flags =
      Parse({"--scale=0.5", "--repeats", "4", "--seed=7", "--threads", "3",
             "--epochs=9", "--datasets=12", "--shard", "1/3",
             "--log", "shard1.log", "--resume"});
  EXPECT_EQ(flags.scale, 0.5);
  EXPECT_EQ(flags.repeats, 4);
  EXPECT_EQ(flags.seed, 7u);
  EXPECT_EQ(flags.threads, 3);
  EXPECT_EQ(flags.epochs, 9);
  EXPECT_EQ(flags.datasets, 12);
  EXPECT_EQ(flags.shard.index, 1);
  EXPECT_EQ(flags.shard.count, 3);
  EXPECT_EQ(flags.log_path, "shard1.log");
  EXPECT_TRUE(flags.resume);
}

TEST(ParseFlagsTest, EpochsZeroIsTheUseDefaultSentinel) {
  // Regression: --epochs used int_value(1), so the documented "0 keeps
  // the bench's default" value was rejected at the front door.
  bench::BenchFlags flags = Parse({"--epochs=0"});
  EXPECT_EQ(flags.epochs, 0);
  EXPECT_EXIT(Parse({"--epochs=-1"}), ::testing::ExitedWithCode(2),
              "--epochs needs an integer >= 0");
}

TEST(ParseFlagsTest, MetricsFlagsParse) {
  bench::BenchFlags flags =
      Parse({"--metrics-out=m.json", "--deterministic-metrics"});
  EXPECT_EQ(flags.metrics_out, "m.json");
  EXPECT_TRUE(flags.deterministic_metrics);
  EXPECT_TRUE(flags.metrics_in.empty());

  flags = Parse({"--merge", "a.log", "b.log", "--metrics-out", "roll.json",
                 "--metrics-in=a.json", "--metrics-in", "b.json"});
  EXPECT_EQ(flags.metrics_out, "roll.json");
  EXPECT_EQ(flags.metrics_in,
            (std::vector<std::string>{"a.json", "b.json"}));
}

TEST(ParseFlagsDeathTest, RejectsContradictoryModeCombos) {
  // Each combo silently did something surprising before: merge ran no
  // shard yet accepted shard-execution flags, and --fault-schedule
  // without --log injected faults into an environment nothing used.
  EXPECT_EXIT(Parse({"--merge", "a.log", "--shard=0/2"}),
              ::testing::ExitedWithCode(2),
              "--merge cannot be combined with --shard");
  EXPECT_EXIT(Parse({"--merge", "a.log", "--log", "b.log"}),
              ::testing::ExitedWithCode(2),
              "--merge cannot be combined with --log");
  EXPECT_EXIT(Parse({"--merge", "a.log", "--resume"}),
              ::testing::ExitedWithCode(2),
              "--merge cannot be combined with --resume");
  EXPECT_EXIT(Parse({"--dry-run", "--merge", "a.log"}),
              ::testing::ExitedWithCode(2),
              "--dry-run cannot be combined with --merge");
  EXPECT_EXIT(Parse({"--fault-schedule=fail-sync=1"}),
              ::testing::ExitedWithCode(2),
              "--fault-schedule requires --log");
  EXPECT_EXIT(Parse({"--deterministic-metrics"}),
              ::testing::ExitedWithCode(2),
              "--deterministic-metrics only applies to --metrics-out");
  EXPECT_EXIT(Parse({"--metrics-in=a.json", "--metrics-out=b.json"}),
              ::testing::ExitedWithCode(2),
              "--metrics-in only applies to --merge");
  EXPECT_EXIT(Parse({"--merge", "a.log", "--metrics-in=a.json"}),
              ::testing::ExitedWithCode(2),
              "--metrics-in needs --metrics-out");
}

TEST(ParseFlagsTest, MergeConsumesLogPaths) {
  bench::BenchFlags flags = Parse({"--merge", "a.log", "b.log"});
  EXPECT_TRUE(flags.merge);
  EXPECT_EQ(flags.merge_logs, (std::vector<std::string>{"a.log", "b.log"}));

  flags = Parse({"--threads=2", "--merge=a.log", "b.log"});
  EXPECT_EQ(flags.threads, 2);
  EXPECT_EQ(flags.merge_logs, (std::vector<std::string>{"a.log", "b.log"}));
}

TEST(ParseFlagsDeathTest, RejectsBadInput) {
  EXPECT_EXIT(Parse({"--bogus"}), ::testing::ExitedWithCode(2),
              "unknown flag --bogus");
  EXPECT_EXIT(Parse({"--threads=abc"}), ::testing::ExitedWithCode(2),
              "--threads needs an integer");
  // atoi would have read 2 out of "2.7"; strict parsing must not.
  EXPECT_EXIT(Parse({"--repeats=2.7"}), ::testing::ExitedWithCode(2),
              "--repeats needs an integer");
  EXPECT_EXIT(Parse({"--threads=0"}), ::testing::ExitedWithCode(2),
              "--threads needs an integer >= 1");
  EXPECT_EXIT(Parse({"--seed=-1"}), ::testing::ExitedWithCode(2),
              "--seed needs an unsigned integer");
  EXPECT_EXIT(Parse({"--scale=-0.1"}), ::testing::ExitedWithCode(2),
              "--scale needs a number >= 0");
  EXPECT_EXIT(Parse({"stray"}), ::testing::ExitedWithCode(2),
              "unexpected argument 'stray'");
  EXPECT_EXIT(Parse({"--resume=1"}), ::testing::ExitedWithCode(2),
              "--resume takes no value");
  EXPECT_EXIT(Parse({"--shard=3/2"}), ::testing::ExitedWithCode(2),
              "--shard needs I/N");
  EXPECT_EXIT(Parse({"--merge"}), ::testing::ExitedWithCode(2),
              "--merge needs at least one");
  EXPECT_EXIT(Parse({"--seed"}), ::testing::ExitedWithCode(2),
              "--seed needs a value");
}

TEST(StrictParseTest, IntegerParsersConsumeTheWholeToken) {
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("", &i));
  EXPECT_FALSE(ParseInt64("2.7", &i));
  EXPECT_FALSE(ParseInt64("12abc", &i));
  EXPECT_FALSE(ParseInt64("99999999999999999999", &i));  // overflow
  uint64_t u = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &u));
  EXPECT_EQ(u, std::numeric_limits<uint64_t>::max());
  EXPECT_FALSE(ParseUint64("-1", &u));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &u));  // overflow
}

TEST(SparkTest, HandlesNonFiniteValues) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(bench::Spark({}), "");
  EXPECT_EQ(bench::Spark({nan, nan, inf}), "!!!");
  // The scale comes from the finite values only; a leading NaN must
  // not poison min/max (the old code folded it into both).
  EXPECT_EQ(bench::Spark({nan, 0.0, 1.0}), "!▁█");
  EXPECT_EQ(bench::Spark({0.0, 1.0, inf, 0.5}), "▁█!▄");
}

TEST(SparkTest, ConstantSeriesRendersMidScale) {
  // Regression: a constant nonzero series has hi == lo, and the old
  // code rendered it as all-▁ — indistinguishable from all-zero data.
  // A flat nonzero series now renders mid-scale; all-zero stays ▁.
  EXPECT_EQ(bench::Spark({1.0}), "▄");
  EXPECT_EQ(bench::Spark({2.0, 2.0, 2.0}), "▄▄▄");
  EXPECT_EQ(bench::Spark({-0.5, -0.5}), "▄▄");
  EXPECT_EQ(bench::Spark({0.0, 0.0}), "▁▁");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(bench::Spark({nan, 3.0, 3.0}), "!▄▄");
}

TEST(FormatLossTest, NotApplicableAndMeanStd) {
  RepeatedResult result;
  result.not_applicable = true;
  EXPECT_EQ(bench::FormatLoss(result), "N/A");
  result.not_applicable = false;
  result.loss_mean = 0.25;
  result.loss_stddev = 0.0625;
  EXPECT_EQ(bench::FormatLoss(result), "0.250±0.062");
}

}  // namespace
}  // namespace oebench
