#include <gtest/gtest.h>

#include "stats/drift_stats.h"
#include "stats/missing_stats.h"
#include "stats/outlier_stats.h"
#include "stats/profile.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

GeneratedStream MakeStream(DriftPattern pattern, double drift_magnitude,
                           double anomaly_rate, double missing_rate,
                           uint64_t seed = 31) {
  StreamSpec spec;
  spec.name = "stats_test";
  spec.task = TaskType::kRegression;
  spec.num_instances = 2400;
  spec.num_numeric_features = 5;
  spec.window_size = 200;
  spec.drift_pattern = pattern;
  spec.drift_magnitude = drift_magnitude;
  spec.point_anomaly_rate = anomaly_rate;
  spec.point_anomaly_magnitude = 20.0;
  spec.base_missing_rate = missing_rate;
  spec.seed = seed;
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok());
  return *stream;
}

PreparedStream Prepare(const GeneratedStream& stream) {
  PipelineOptions options;
  options.imputer = "mean";
  Result<PreparedStream> prepared = PrepareStream(stream, options);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  return *prepared;
}

TEST(MissingStatsTest, CountsCraftedTable) {
  Table table;
  Column a = Column::Numeric("a");
  Column b = Column::Numeric("b");
  for (int i = 0; i < 10; ++i) {
    if (i < 3) {
      a.AppendMissingNumeric();
    } else {
      a.AppendNumeric(i);
    }
    b.AppendNumeric(i);
  }
  ASSERT_TRUE(table.AddColumn(std::move(a)).ok());
  ASSERT_TRUE(table.AddColumn(std::move(b)).ok());
  std::vector<WindowRange> ranges = {{0, 5}, {5, 10}};
  MissingValueStats stats = ComputeMissingValueStats(table, ranges, "");
  EXPECT_NEAR(stats.row_ratio, 0.3, 1e-12);
  EXPECT_NEAR(stats.column_ratio, 0.5, 1e-12);
  EXPECT_NEAR(stats.cell_ratio, 3.0 / 20.0, 1e-12);
  ASSERT_EQ(stats.valid_ratio_per_window.size(), 2u);
  EXPECT_NEAR(stats.valid_ratio_per_window[0][0], 0.4, 1e-12);
  EXPECT_NEAR(stats.valid_ratio_per_window[1][0], 1.0, 1e-12);
  EXPECT_NEAR(stats.valid_ratio_per_window[0][1], 1.0, 1e-12);
}

TEST(DriftStatsTest, DriftedStreamScoresHigherThanStationary) {
  GeneratedStream drifted =
      MakeStream(DriftPattern::kAbrupt, 3.0, 0.0, 0.0);
  GeneratedStream stationary = MakeStream(DriftPattern::kNone, 0.0, 0.0,
                                          0.0, 32);
  PreparedStream prepared_drift = Prepare(drifted);
  PreparedStream prepared_flat = Prepare(stationary);

  auto total_drift = [](const std::vector<DetectorStats>& all) {
    double sum = 0.0;
    for (const DetectorStats& s : all) sum += s.drift_ratio_avg;
    return sum;
  };
  double drift_score = total_drift(ComputeDataDriftStats(prepared_drift));
  double flat_score = total_drift(ComputeDataDriftStats(prepared_flat));
  EXPECT_GT(drift_score, flat_score);
  EXPECT_GT(drift_score, 0.05);
}

TEST(DriftStatsTest, ConceptDriftDetectedOnConceptFlip) {
  GeneratedStream drifted =
      MakeStream(DriftPattern::kAbrupt, 3.0, 0.0, 0.0, 33);
  PreparedStream prepared = Prepare(drifted);
  std::vector<DetectorStats> stats = ComputeConceptDriftStats(prepared);
  ASSERT_EQ(stats.size(), 4u);  // ddm, eddm, adwin, perm
  double total = 0.0;
  for (const DetectorStats& s : stats) {
    total += s.drift_ratio_avg + s.warning_ratio_avg;
  }
  EXPECT_GT(total, 0.0);
}

TEST(OutlierStatsTest, AnomalousStreamScoresHigher) {
  GeneratedStream dirty =
      MakeStream(DriftPattern::kNone, 0.0, 0.03, 0.0, 34);
  GeneratedStream clean =
      MakeStream(DriftPattern::kNone, 0.0, 0.0, 0.0, 35);
  std::vector<OutlierStats> dirty_stats =
      ComputeOutlierStats(Prepare(dirty));
  std::vector<OutlierStats> clean_stats =
      ComputeOutlierStats(Prepare(clean));
  ASSERT_EQ(dirty_stats.size(), 2u);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_GE(dirty_stats[d].anomaly_ratio_avg,
              clean_stats[d].anomaly_ratio_avg)
        << dirty_stats[d].detector;
    EXPECT_GT(dirty_stats[d].anomaly_ratio_avg, 0.0);
  }
}

TEST(ProfileTest, EndToEndProfileHasAllFacets) {
  GeneratedStream stream =
      MakeStream(DriftPattern::kGradual, 1.0, 0.01, 0.05, 36);
  Result<DatasetProfile> profile = ProfileDataset(stream);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->name, "stats_test");
  EXPECT_EQ(profile->BasicFacet().size(), 4u);
  EXPECT_EQ(profile->MissingFacet().size(), 3u);
  EXPECT_EQ(profile->DataDriftFacet().size(), 20u);  // 5 detectors x 4
  EXPECT_EQ(profile->ConceptDriftFacet().size(), 8u);  // 4 detectors x 2
  EXPECT_EQ(profile->OutlierFacet().size(), 4u);  // 2 detectors x 2
  EXPECT_GT(profile->missing.cell_ratio, 0.02);
  EXPECT_GE(profile->DriftScore(), 0.0);
  EXPECT_GE(profile->AnomalyScore(), 0.0);
}

}  // namespace
}  // namespace oebench
