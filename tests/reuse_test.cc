// Units of the computation-reuse layer (sweep/reuse, DESIGN.md
// "Computation reuse"): the --reuse flag grammar, exact cache keys (no
// aliasing between preprocessing configs), the memory-bounded
// single-flight cache, the snapshot store, learner state round-trips,
// the epochs-1-donor fork identity that warm-start rests on, and the
// engine-level regression of re-referenced datasets in one manifest.
// The end-to-end bit-identity proofs live in reuse_equivalence_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "core/learner.h"
#include "core/parallel_eval.h"
#include "preprocess/pipeline.h"
#include "streamgen/corpus.h"
#include "streamgen/representative.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"
#include "sweep/reuse.h"

namespace oebench {
namespace {

PreparedStream MakeSmallStream(const std::string& short_name = "ROOM",
                               double scale = 0.02,
                               const PipelineOptions& options = {}) {
  StreamSpec spec = RepresentativeSpec(short_name, scale);
  Result<GeneratedStream> generated = GenerateStream(spec);
  OE_CHECK(generated.ok()) << generated.status().ToString();
  Result<PreparedStream> prepared = PrepareStream(*generated, options);
  OE_CHECK(prepared.ok()) << prepared.status().ToString();
  prepared->name = short_name;
  return std::move(*prepared);
}

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global()->GetCounter(name)->value();
}

TEST(ReuseSpecTest, ParseAndFormat) {
  ReuseOptions options;
  ASSERT_TRUE(sweep::ParseReuseSpec("off", &options).ok());
  EXPECT_FALSE(options.prepare);
  EXPECT_FALSE(options.warmstart);
  EXPECT_EQ(sweep::FormatReuseSpec(options), "off");

  ASSERT_TRUE(sweep::ParseReuseSpec("prepare", &options).ok());
  EXPECT_TRUE(options.prepare);
  EXPECT_FALSE(options.warmstart);
  EXPECT_EQ(sweep::FormatReuseSpec(options), "prepare");

  ASSERT_TRUE(sweep::ParseReuseSpec("warmstart", &options).ok());
  EXPECT_FALSE(options.prepare);
  EXPECT_TRUE(options.warmstart);
  EXPECT_EQ(sweep::FormatReuseSpec(options), "warmstart");

  ASSERT_TRUE(sweep::ParseReuseSpec("prepare,warmstart", &options).ok());
  EXPECT_TRUE(options.prepare);
  EXPECT_TRUE(options.warmstart);
  EXPECT_EQ(sweep::FormatReuseSpec(options), "prepare,warmstart");

  // Order-insensitive parse, canonical rendering.
  ASSERT_TRUE(sweep::ParseReuseSpec("warmstart,prepare", &options).ok());
  EXPECT_TRUE(options.prepare && options.warmstart);
  EXPECT_EQ(sweep::FormatReuseSpec(options), "prepare,warmstart");

  // The byte budget is not the spec's concern.
  options.cache_bytes = 123;
  ASSERT_TRUE(sweep::ParseReuseSpec("off", &options).ok());
  EXPECT_EQ(options.cache_bytes, 123);

  EXPECT_FALSE(sweep::ParseReuseSpec("bogus", &options).ok());
  EXPECT_FALSE(sweep::ParseReuseSpec("prepare,bogus", &options).ok());
  EXPECT_FALSE(sweep::ParseReuseSpec("prepare warmstart", &options).ok());
}

TEST(ReuseKeyTest, SameConfigSameKey) {
  StreamSpec a = RepresentativeSpec("ROOM", 0.02);
  StreamSpec b = RepresentativeSpec("ROOM", 0.02);
  EXPECT_EQ(sweep::SpecCacheKey(a), sweep::SpecCacheKey(b));
  PipelineOptions options;
  EXPECT_EQ(sweep::PreparedCacheKey(a, options, "ROOM"),
            sweep::PreparedCacheKey(b, options, "ROOM"));
}

TEST(ReuseKeyTest, DifferentPipelineConfigNeverAliases) {
  // The satellite's collision case: same dataset name, different
  // preprocessing config must be a distinct cache entry.
  StreamSpec spec = RepresentativeSpec("ROOM", 0.02);
  PipelineOptions base;
  PipelineOptions window;
  window.window_factor = 2.0;
  PipelineOptions shuffled;
  shuffled.shuffle = true;
  EXPECT_NE(sweep::PipelineCacheKey(base), sweep::PipelineCacheKey(window));
  EXPECT_NE(sweep::PipelineCacheKey(base), sweep::PipelineCacheKey(shuffled));
  EXPECT_NE(sweep::PreparedCacheKey(spec, base, "ROOM"),
            sweep::PreparedCacheKey(spec, window, "ROOM"));
  // Same pipeline, different display name: the name lands in result
  // rows, so it participates too.
  EXPECT_NE(sweep::PreparedCacheKey(spec, base, "ROOM"),
            sweep::PreparedCacheKey(spec, base, "ROOM2"));
}

TEST(ReuseKeyTest, SpecFieldsAllCovered) {
  // Every generation-relevant field must perturb the key. (Two *scales*
  // can legitimately collide when instance counts round to the same
  // value — the key encodes the resolved spec, not the scale knob.)
  const StreamSpec base = RepresentativeSpec("ROOM", 0.02);
  StreamSpec mutated = base;
  mutated.seed += 1;
  EXPECT_NE(sweep::SpecCacheKey(base), sweep::SpecCacheKey(mutated));
  mutated = base;
  mutated.num_instances += 1;
  EXPECT_NE(sweep::SpecCacheKey(base), sweep::SpecCacheKey(mutated));
  mutated = base;
  mutated.noise_level += 0.125;
  EXPECT_NE(sweep::SpecCacheKey(base), sweep::SpecCacheKey(mutated));
  mutated = base;
  mutated.window_size += 1;
  EXPECT_NE(sweep::SpecCacheKey(base), sweep::SpecCacheKey(mutated));
}

TEST(PreparedStreamCacheTest, HitReturnsSameBuffer) {
  sweep::PreparedStreamCache cache;
  StreamSpec spec = RepresentativeSpec("ROOM", 0.02);
  const int64_t hits_before = CounterValue("reuse.prepare_hits");
  const int64_t misses_before = CounterValue("reuse.prepare_misses");
  auto first = cache.GetOrPrepare(spec, {}, "ROOM");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.GetOrPrepare(spec, {}, "ROOM");
  ASSERT_TRUE(second.ok());
  // COW sharing: both callers hold the *same* immutable buffer.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ((*first)->name, "ROOM");
  EXPECT_EQ(CounterValue("reuse.prepare_misses"), misses_before + 1);
  EXPECT_EQ(CounterValue("reuse.prepare_hits"), hits_before + 1);
  EXPECT_GT(cache.bytes_held(), 0);
}

TEST(PreparedStreamCacheTest, GenerationSharedAcrossPipelines) {
  // fig11's shape: five window factors over one spec generate once.
  sweep::PreparedStreamCache cache;
  StreamSpec spec = RepresentativeSpec("ROOM", 0.02);
  const int64_t gen_misses_before = CounterValue("reuse.generate_misses");
  const int64_t gen_hits_before = CounterValue("reuse.generate_hits");
  PipelineOptions half;
  half.window_factor = 0.5;
  PipelineOptions twice;
  twice.window_factor = 2.0;
  ASSERT_TRUE(cache.GetOrPrepare(spec, half, "ROOM").ok());
  ASSERT_TRUE(cache.GetOrPrepare(spec, twice, "ROOM").ok());
  EXPECT_EQ(CounterValue("reuse.generate_misses"), gen_misses_before + 1);
  EXPECT_EQ(CounterValue("reuse.generate_hits"), gen_hits_before + 1);
}

TEST(PreparedStreamCacheTest, EvictsUnderByteBudget) {
  sweep::PreparedStreamCache cache;
  StreamSpec room = RepresentativeSpec("ROOM", 0.02);
  auto first = cache.GetOrPrepare(room, {}, "ROOM");
  ASSERT_TRUE(first.ok());
  const int64_t one_entry = cache.bytes_held();
  ASSERT_GT(one_entry, 0);

  // Budget for roughly one entry: inserting a second prepared stream
  // must evict something rather than grow without bound.
  cache.set_byte_budget(one_entry + one_entry / 2);
  auto second = cache.GetOrPrepare(RepresentativeSpec("AIR", 0.02), {}, "AIR");
  ASSERT_TRUE(second.ok());
  EXPECT_LE(cache.bytes_held(), one_entry + one_entry / 2);
  // The evicted buffer stays alive for existing holders.
  EXPECT_EQ((*first)->name, "ROOM");
  EXPECT_FALSE((*first)->windows.empty());

  // A budget nothing fits under: entries are handed out but dropped
  // uncached, and the cache never deadlocks on them.
  cache.set_byte_budget(1);
  EXPECT_EQ(cache.bytes_held(), 0);
  auto oversized = cache.GetOrPrepare(room, {}, "ROOM");
  ASSERT_TRUE(oversized.ok());
  EXPECT_EQ(cache.bytes_held(), 0);
  EXPECT_FALSE((*oversized)->windows.empty());
}

TEST(PreparedStreamCacheTest, ClearDropsEntries) {
  sweep::PreparedStreamCache cache;
  ASSERT_TRUE(cache.GetOrPrepare(RepresentativeSpec("ROOM", 0.02), {}, "ROOM")
                  .ok());
  ASSERT_GT(cache.bytes_held(), 0);
  cache.Clear();
  EXPECT_EQ(cache.bytes_held(), 0);
}

TEST(PreparedStreamCacheTest, ConcurrentRequestsSingleFlight) {
  // N concurrent requesters of one key: exactly one prepare runs, the
  // rest wait and count as hits, and everyone gets the same buffer.
  // Run under TSan via the check-sanitize tree.
  sweep::PreparedStreamCache cache;
  StreamSpec spec = RepresentativeSpec("ROOM", 0.02);
  const int64_t hits_before = CounterValue("reuse.prepare_hits");
  const int64_t misses_before = CounterValue("reuse.prepare_misses");
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const PreparedStream>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &spec, &results, t] {
      auto result = cache.GetOrPrepare(spec, {}, "ROOM");
      OE_CHECK(result.ok()) << result.status().ToString();
      results[static_cast<size_t>(t)] = *result;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<size_t>(t)].get(), results[0].get());
  }
  EXPECT_EQ(CounterValue("reuse.prepare_misses"), misses_before + 1);
  EXPECT_EQ(CounterValue("reuse.prepare_hits"),
            hits_before + (kThreads - 1));
}

TEST(SnapshotStoreTest, KeyPutGetClear) {
  // Length-prefixed fields, so "AB"+"C" can never alias "A"+"BC", and
  // the exact run seed is embedded — a snapshot can never leak across
  // seeds.
  EXPECT_EQ(sweep::SnapshotStore::Key("ROOM", "Naive-NN", 7, "window0"),
            "dataset=4:ROOM|learner=8:Naive-NN|seed=7|stage=7:window0|");
  EXPECT_NE(sweep::SnapshotStore::Key("ROOM", "Naive-NN", 7, "window0"),
            sweep::SnapshotStore::Key("ROOM", "Naive-NN", 8, "window0"));
  sweep::SnapshotStore store;
  sweep::LearnerSnapshot snapshot;
  snapshot.payload = "payload-bytes";
  snapshot.windows_trained = 1;
  snapshot.peak_memory_bytes = 42;
  const std::string key =
      sweep::SnapshotStore::Key("ROOM", "Naive-NN", 7, "window0");
  sweep::LearnerSnapshot out;
  EXPECT_FALSE(store.Get(key, &out));
  store.Put(key, snapshot);
  ASSERT_TRUE(store.Get(key, &out));
  EXPECT_EQ(out.payload, "payload-bytes");
  EXPECT_EQ(out.windows_trained, 1u);
  EXPECT_EQ(out.peak_memory_bytes, 42);
  EXPECT_EQ(store.bytes_held(),
            static_cast<int64_t>(snapshot.payload.size()));
  // Replacing a key accounts the delta, not the sum.
  snapshot.payload = "x";
  store.Put(key, snapshot);
  EXPECT_EQ(store.bytes_held(), 1);
  store.Clear();
  EXPECT_EQ(store.bytes_held(), 0);
  EXPECT_FALSE(store.Get(key, &out));
}

TEST(RngStateTest, RoundTripContinuesBitIdentically) {
  // Mid-sequence save/restore, including after an odd number of
  // Gaussian draws (normal_distribution caches a spare deviate — state
  // that must survive the round trip for warm-start bit-identity).
  Rng original(99);
  for (int i = 0; i < 7; ++i) original.Gaussian();
  for (int i = 0; i < 3; ++i) original.Uniform();
  std::ostringstream out;
  original.SaveState(&out);
  std::istringstream in(out.str());
  Rng restored(0);
  ASSERT_TRUE(restored.LoadState(&in));
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(original.Gaussian(), restored.Gaussian());
    ASSERT_EQ(original.Uniform(), restored.Uniform());
    ASSERT_EQ(original.UniformInt(1000), restored.UniformInt(1000));
  }
}

std::string SaveStateString(const StreamLearner& learner) {
  std::ostringstream out;
  Status saved = learner.SaveState(&out);
  OE_CHECK(saved.ok()) << saved.ToString();
  return out.str();
}

std::unique_ptr<StreamLearner> MustMakeLearner(const std::string& name,
                                               const LearnerConfig& config,
                                               const PreparedStream& stream) {
  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner(name, config, stream.task, stream.num_classes);
  OE_CHECK(learner.ok()) << learner.status().ToString();
  return std::move(*learner);
}

TEST(LearnerStateTest, StateRoundTripContinuesIdentically) {
  // SaveState -> fresh learner + Begin + LoadState must put the copy in
  // the exact state of the original: training both one more window and
  // re-saving yields byte-identical state (model *and* RNG continue).
  PreparedStream stream = MakeSmallStream();
  ASSERT_GE(stream.windows.size(), 2u);
  for (const char* name : {"Naive-NN", "Naive-DT", "Naive-GBDT"}) {
    LearnerConfig config;
    config.seed = 5;
    config.epochs = 2;
    std::unique_ptr<StreamLearner> original =
        MustMakeLearner(name, config, stream);
    ASSERT_TRUE(original->SupportsSnapshot()) << name;
    original->Begin(stream);
    original->TrainWindow(stream.windows[0]);

    std::unique_ptr<StreamLearner> restored =
        MustMakeLearner(name, config, stream);
    restored->Begin(stream);
    std::istringstream in(SaveStateString(*original));
    Status loaded = restored->LoadState(&in);
    ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.ToString();
    EXPECT_EQ(SaveStateString(*restored), SaveStateString(*original))
        << name;

    original->TrainWindow(stream.windows[1]);
    restored->TrainWindow(stream.windows[1]);
    EXPECT_EQ(SaveStateString(*restored), SaveStateString(*original))
        << name << " diverged one window after the round trip";
  }
}

TEST(LearnerStateTest, LoadBeforeBeginOrGarbageIsStatusNotCrash) {
  PreparedStream stream = MakeSmallStream();
  LearnerConfig config;
  std::unique_ptr<StreamLearner> learner =
      MustMakeLearner("Naive-NN", config, stream);
  std::ostringstream out;
  EXPECT_FALSE(learner->SaveState(&out).ok());  // before Begin
  learner->Begin(stream);
  std::istringstream garbage("not a snapshot");
  EXPECT_FALSE(learner->LoadState(&garbage).ok());
  std::istringstream empty("");
  EXPECT_FALSE(learner->LoadState(&empty).ok());
}

TEST(LearnerStateTest, EpochsOneDonorEqualsEpochsKLearner) {
  // The identity warm-start rests on: k windows of an epochs=1 learner
  // over window 0 leave the exact state of one window of an epochs=k
  // learner (the persistent per-learner RNG consumes the same draws in
  // the same order). Byte-compared via SaveState.
  PreparedStream stream = MakeSmallStream();
  for (int k : {1, 3, 5}) {
    LearnerConfig donor_config;
    donor_config.seed = 11;
    donor_config.epochs = 1;
    std::unique_ptr<StreamLearner> donor =
        MustMakeLearner("Naive-NN", donor_config, stream);
    ASSERT_TRUE(donor->SupportsEpochFork());
    donor->Begin(stream);
    for (int epoch = 0; epoch < k; ++epoch) {
      donor->TrainWindow(stream.windows[0]);
    }

    LearnerConfig cold_config = donor_config;
    cold_config.epochs = k;
    std::unique_ptr<StreamLearner> cold =
        MustMakeLearner("Naive-NN", cold_config, stream);
    cold->Begin(stream);
    cold->TrainWindow(stream.windows[0]);

    // The donor's state carries epochs=1 in no way that matters: only
    // model parameters and RNG position, both identical.
    EXPECT_EQ(SaveStateString(*donor), SaveStateString(*cold))
        << "k=" << k;
  }
}

TEST(ParallelSweepTest, ReReferencedDatasetSurvivesBufferRelease) {
  // Regression: the engine used to release a dataset's stream buffers
  // as its tasks drained, even when a *later* entry in the same
  // manifest referenced the same dataset again. With the dedup fix the
  // re-reference shares the first prepare (one cache hit, no second
  // prepare) and produces identical cells. Duplicate names cannot come
  // from TaskManifest::Build (it rejects them), so drive
  // ParallelSweepEntries directly — its entries are positional.
  std::vector<CorpusEntry> corpus = Corpus();
  std::vector<CorpusEntry> entries = {corpus[0], corpus[1], corpus[0]};
  SweepConfig config;
  config.repeats = 2;
  config.threads = 2;
  config.scale = 0.02;
  config.base_config.epochs = 2;
  const int64_t hits_before = CounterValue("reuse.prepare_hits");
  SweepOutcome outcome = ParallelSweepEntries(
      entries, {"Naive-NN", "Naive-DT"}, config);
  ASSERT_EQ(outcome.rows.size(), 3u);
  EXPECT_EQ(outcome.streams_prepared, 2);  // A and B, not A twice
  EXPECT_EQ(CounterValue("reuse.prepare_hits"), hits_before + 1);
  EXPECT_EQ(outcome.tasks_failed, 0);

  const SweepRow& first = outcome.rows[0];
  const SweepRow& again = outcome.rows[2];
  EXPECT_EQ(first.dataset, again.dataset);
  ASSERT_EQ(first.cells.size(), again.cells.size());
  for (size_t c = 0; c < first.cells.size(); ++c) {
    const SweepCell& a = first.cells[c];
    const SweepCell& b = again.cells[c];
    EXPECT_EQ(sweep::EncodeDouble(a.repeated.loss_mean),
              sweep::EncodeDouble(b.repeated.loss_mean));
    EXPECT_EQ(sweep::EncodeDouble(a.repeated.loss_stddev),
              sweep::EncodeDouble(b.repeated.loss_stddev));
    EXPECT_EQ(a.repeated.peak_memory_bytes, b.repeated.peak_memory_bytes);
    EXPECT_EQ(a.repeated.not_applicable, b.repeated.not_applicable);
    EXPECT_EQ(a.failed_runs, b.failed_runs);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t r = 0; r < a.runs.size(); ++r) {
      EXPECT_EQ(sweep::EncodeDouble(a.runs[r].mean_loss),
                sweep::EncodeDouble(b.runs[r].mean_loss));
      ASSERT_EQ(a.runs[r].per_window_loss.size(),
                b.runs[r].per_window_loss.size());
      for (size_t w = 0; w < a.runs[r].per_window_loss.size(); ++w) {
        EXPECT_EQ(sweep::EncodeDouble(a.runs[r].per_window_loss[w]),
                  sweep::EncodeDouble(b.runs[r].per_window_loss[w]));
      }
    }
  }
}

}  // namespace
}  // namespace oebench
