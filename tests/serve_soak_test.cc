// Long-soak chaos harness for the serving daemon (check-soak): minutes
// of offered load with a sinusoidally drifting rate, every serve chaos
// kind active (throw-at-activation, nan-at-record, transient), adaptive
// admission shedding, deadline/watchdog armed — asserting the run never
// hangs, per-stream delivery conservation (offered == accepted +
// dropped + shed for every stream), and a stable quarantine report
// (exactly the injected streams, at any worker count).
//
// Two tiers: an always-run smoke (~10-30 s, unpaced replay of the same
// schedule) keeps the invariants in the tier-1 run; the full paced soak
// plus the under-fault bit-identity sweep run when OEBENCH_SLOW_TESTS=1
// (the check-soak target sets it).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/chaos.h"
#include "core/evaluator.h"
#include "serve/admission.h"
#include "serve/failure.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/session.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"

namespace oebench {
namespace serve {
namespace {

bool SlowTestsEnabled() {
  return std::getenv("OEBENCH_SLOW_TESTS") != nullptr;
}

constexpr int kStreams = 5;
// Ordinals are 1-based registration order: session 1 throws, session 2
// explodes to NaN; the transient shower clears on the in-process retry.
constexpr const char* kChaosSpec =
    "throw-at-activation=2,nan-at-record=3,transient=7:0.4";

std::shared_ptr<const GeneratedStream> MakeStream(size_t corpus_index,
                                                  uint64_t salt) {
  const CorpusEntry& entry = Corpus()[corpus_index];
  StreamSpec spec = SpecFromEntry(entry, /*scale=*/0.0, salt);
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return std::make_shared<const GeneratedStream>(std::move(*stream));
}

SessionOptions SoakSessionOptions(size_t ring_capacity = 1024) {
  SessionOptions options;
  options.max_windows = 3;
  options.learner = "Naive-DT";
  options.learner_config.epochs = 1;
  options.ring_capacity = ring_capacity;
  return options;
}

std::string DumpEval(const EvalResult& result) {
  std::string out = result.learner + "|" + result.dataset + "|" +
                    std::to_string(result.items_processed) + "|" +
                    sweep::EncodeDouble(result.mean_loss) + "|" +
                    sweep::EncodeDouble(result.faded_loss) + "|";
  for (size_t i = 0; i < result.per_window_loss.size(); ++i) {
    if (i > 0) out += ",";
    out += sweep::EncodeDouble(result.per_window_loss[i]);
  }
  return out;
}

EvalResult BatchReference(const GeneratedStream& stream,
                          const SessionOptions& options) {
  Result<PreparedStream> prepared = PrepareStream(stream, options.pipeline);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  if (options.max_windows > 0 &&
      prepared->windows.size() > options.max_windows) {
    prepared->windows.resize(options.max_windows);
    prepared->ranges.resize(options.max_windows);
  }
  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner(options.learner, options.learner_config, prepared->task,
                  prepared->num_classes);
  EXPECT_TRUE(learner.ok()) << learner.status().ToString();
  return RunPrequential(learner->get(), *prepared);
}

struct SoakOutcome {
  bool wait_ok = false;
  LoadStats stats;
  /// Sorted (session_id, kind) quarantine set.
  std::vector<std::pair<int64_t, SessionFailureKind>> failures;
  /// Per-session result dumps; empty string for quarantined sessions.
  std::vector<std::string> dumps;
};

struct SoakConfig {
  int workers = 4;
  bool paced = false;
  double rate = 20000.0;
  double drift_amplitude = 0.8;
  double drift_period_seconds = 0.5;
  AdmissionPolicy policy = AdmissionPolicy::kDrop;
  bool adaptive = true;
  size_t ring_capacity = 64;
  int64_t slow_every = 4;  // throttle workers so overload really happens
  int64_t slow_ms = 1;
  uint64_t seed = 1234;
  /// Record-batch admission size (1 = per-record offers).
  int64_t batch_records = 1;
};

SoakOutcome RunSoak(const SoakConfig& config) {
  ServeChaosInjector injector(*ChaosSchedule::Parse(kChaosSpec));
  AdmissionOptions admission_options;
  admission_options.shed_depth = 32;
  admission_options.resume_depth = 16;
  AdmissionController admission(admission_options);

  ServerOptions engine_options;
  engine_options.workers = config.workers;
  engine_options.quantum = 32;
  engine_options.slow_every = config.slow_every;
  engine_options.slow_ms = config.slow_ms;
  engine_options.chaos = &injector;
  engine_options.admission = config.adaptive ? &admission : nullptr;
  engine_options.watchdog_limit_ms = 10000;
  engine_options.session_deadline_ms = 30000;
  engine_options.max_session_failures = kStreams;  // never trips here
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < kStreams; ++i) {
    auto session = std::make_unique<StreamSession>(
        i, MakeStream(static_cast<size_t>(i), static_cast<uint64_t>(i)),
        SoakSessionOptions(config.ring_capacity));
    EXPECT_TRUE(session->Init().ok());
    engine.AddSession(std::move(session));
  }

  LoadGenOptions load;
  load.seed = config.seed;
  load.rate = config.rate;
  load.producers = 2;
  load.paced = config.paced;
  load.admission = config.policy;
  load.rate_drift_amplitude = config.drift_amplitude;
  load.rate_drift_period_seconds = config.drift_period_seconds;
  load.batch_records = config.batch_records;

  SoakOutcome outcome;
  outcome.stats = RunLoadGenerator(&engine, load);
  outcome.wait_ok = engine.WaitAllFinished(/*timeout_seconds=*/600.0);
  for (const SessionFailure& failure : engine.failures()) {
    outcome.failures.emplace_back(failure.session_id, failure.kind);
  }
  std::sort(outcome.failures.begin(), outcome.failures.end());
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    outcome.dumps.push_back(engine.session(i)->quarantined()
                                ? std::string()
                                : DumpEval(engine.session(i)->result()));
  }
  return outcome;
}

// `lossless` = no record was dropped or shed (block policy): then the
// quarantine set is exactly determined by the schedule. Under a lossy
// policy the NaN injectee can legitimately escape quarantine — if every
// record of its tested windows was dropped, the explosion detector sees
// absence of data, not an explosion — so only the throw injectee is
// guaranteed, and the set must still be a subset of the injected
// streams.
void CheckSoakInvariants(const SoakOutcome& outcome, bool lossless) {
  // No hang: every session wound down (quarantined streams drained to
  // their sentinels like healthy ones).
  ASSERT_TRUE(outcome.wait_ok);
  // Conservation: every offered record is accounted for, per stream.
  ASSERT_EQ(outcome.stats.per_stream.size(),
            static_cast<size_t>(kStreams));
  int64_t offered_sum = 0;
  for (const StreamLoadStats& s : outcome.stats.per_stream) {
    EXPECT_EQ(s.offered, s.accepted + s.dropped + s.shed)
        << "stream " << s.idx << " leaked records";
    offered_sum += s.offered;
  }
  EXPECT_EQ(offered_sum, outcome.stats.offered);
  EXPECT_GT(outcome.stats.offered, 0);
  // Quarantine report: ordinal 2 == session 1 (exception), ordinal 3 ==
  // session 2 (non-finite explosion); nothing outside the injected set.
  const std::vector<std::pair<int64_t, SessionFailureKind>> expected = {
      {1, SessionFailureKind::kException},
      {2, SessionFailureKind::kNonFinite},
  };
  if (lossless) {
    EXPECT_EQ(outcome.failures, expected);
  } else {
    ASSERT_GE(outcome.failures.size(), 1u);
    ASSERT_LE(outcome.failures.size(), 2u);
    EXPECT_EQ(outcome.failures[0], expected[0]);
    if (outcome.failures.size() == 2u) {
      EXPECT_EQ(outcome.failures[1], expected[1]);
    }
  }
  // Healthy siblings produced trustworthy results; the throw injectee
  // never does.
  for (size_t i = 0; i < outcome.dumps.size(); ++i) {
    if (i == 1) {
      EXPECT_TRUE(outcome.dumps[i].empty());
    } else if (i != 2) {
      EXPECT_FALSE(outcome.dumps[i].empty()) << "session " << i;
    }
  }
}

// Always-run smoke: the full chaos + drift + shedding stack, unpaced so
// the whole schedule replays in seconds. Keeps the soak's invariants in
// the tier-1 run and in the check-sanitize TSan/ASan passes.
TEST(ServeSoakSmokeTest, DriftingOverloadWithAllChaosKindsConserves) {
  MetricsRegistry::Global()->Reset();
  SoakConfig config;
  const SoakOutcome outcome = RunSoak(config);
  CheckSoakInvariants(outcome, /*lossless=*/false);
}

// Lossless variant: with block admission nothing is dropped or shed, so
// every injected fault must land and the quarantine report is exactly
// the injected streams.
TEST(ServeSoakSmokeTest, LosslessReplayQuarantinesExactlyInjectedStreams) {
  MetricsRegistry::Global()->Reset();
  SoakConfig config;
  config.policy = AdmissionPolicy::kBlock;
  config.adaptive = false;
  config.ring_capacity = 1024;
  const SoakOutcome outcome = RunSoak(config);
  CheckSoakInvariants(outcome, /*lossless=*/true);
  EXPECT_EQ(outcome.stats.dropped, 0);
  EXPECT_EQ(outcome.stats.shed, 0);
  EXPECT_EQ(outcome.stats.accepted, outcome.stats.offered);
}

TEST(ServeSoakSmokeTest, QuarantineReportIsWorkerCountInvariant) {
  MetricsRegistry::Global()->Reset();
  SoakConfig one;
  one.workers = 1;
  const SoakOutcome first = RunSoak(one);
  MetricsRegistry::Global()->Reset();
  SoakConfig four;
  four.workers = 4;
  const SoakOutcome second = RunSoak(four);
  ASSERT_TRUE(first.wait_ok);
  ASSERT_TRUE(second.wait_ok);
  // Record *sets* differ under drop policy (drops depend on timing) but
  // the quarantine report is a pure function of the chaos schedule.
  EXPECT_EQ(first.failures, second.failures);
}

// Record-batch admission under the full chaos stack: batching changes
// only how records enter the rings, so the per-stream conservation
// invariant (offered == accepted + dropped + shed, exactly) and the
// quarantine report must hold just like in the per-record runs.
TEST(ServeSoakSmokeTest, BatchedAdmissionConservesUnderChaos) {
  MetricsRegistry::Global()->Reset();
  SoakConfig config;
  config.batch_records = 16;
  const SoakOutcome outcome = RunSoak(config);
  CheckSoakInvariants(outcome, /*lossless=*/false);
}

TEST(ServeSoakSmokeTest, BatchedLosslessReplayBalancesExactly) {
  MetricsRegistry::Global()->Reset();
  SoakConfig config;
  config.batch_records = 16;
  config.policy = AdmissionPolicy::kBlock;
  config.adaptive = false;
  config.ring_capacity = 1024;
  const SoakOutcome outcome = RunSoak(config);
  CheckSoakInvariants(outcome, /*lossless=*/true);
  EXPECT_EQ(outcome.stats.dropped, 0);
  EXPECT_EQ(outcome.stats.shed, 0);
  EXPECT_EQ(outcome.stats.accepted, outcome.stats.offered);
}

// Lossless so the invariance is exact: under a lossy policy the NaN
// injectee's poisoned window can itself be dropped, which makes the
// quarantine set timing-dependent (see CheckSoakInvariants).
TEST(ServeSoakSmokeTest, BatchedQuarantineReportIsWorkerCountInvariant) {
  std::vector<SoakOutcome> outcomes;
  for (int workers : {1, 4}) {
    MetricsRegistry::Global()->Reset();
    SoakConfig config;
    config.workers = workers;
    config.batch_records = 16;
    config.policy = AdmissionPolicy::kBlock;
    config.adaptive = false;
    config.ring_capacity = 1024;
    outcomes.push_back(RunSoak(config));
    ASSERT_TRUE(outcomes.back().wait_ok);
    CheckSoakInvariants(outcomes.back(), /*lossless=*/true);
  }
  EXPECT_EQ(outcomes[0].failures, outcomes[1].failures);
}

// Full soak: the same stack, paced against the wall clock so the
// drifting offered rate sweeps several overload/trough cycles over
// minutes of load. OEBENCH_SLOW_TESTS=1 only (check-soak sets it).
TEST(ServeSoakFullTest, PacedMinutesOfDriftingLoadStaysConservative) {
  if (!SlowTestsEnabled()) {
    GTEST_SKIP() << "full soak runs under OEBENCH_SLOW_TESTS=1 "
                    "(check-soak target)";
  }
  MetricsRegistry::Global()->Reset();
  // Pace the largest stream over ~90 s of virtual time; the drift
  // period then yields several full overload cycles.
  int64_t max_rows = 0;
  for (int64_t i = 0; i < kStreams; ++i) {
    StreamSession probe(i, MakeStream(static_cast<size_t>(i),
                                      static_cast<uint64_t>(i)),
                        SoakSessionOptions());
    ASSERT_TRUE(probe.Init().ok());
    max_rows = std::max(max_rows, probe.end_row());
  }
  constexpr double kTargetSeconds = 90.0;
  SoakConfig config;
  config.paced = true;
  config.rate = std::max(1.0, static_cast<double>(max_rows) /
                                  kTargetSeconds);
  config.drift_amplitude = 0.9;
  config.drift_period_seconds = kTargetSeconds / 4.0;
  config.slow_every = 0;  // pacing provides the load shape
  config.slow_ms = 0;
  const auto start = std::chrono::steady_clock::now();
  const SoakOutcome outcome = RunSoak(config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  CheckSoakInvariants(outcome, /*lossless=*/false);
  // It must actually have soaked: the paced schedule stretches the run
  // to wall-clock minutes, not a burst replay.
  EXPECT_GE(elapsed, kTargetSeconds / 3.0);
}

// Under-fault bit-identity: with block admission (no drops, no
// shedding) every NON-quarantined session's result dump is byte-equal
// to batch RunPrequential, at 1 and 4 workers, while chaos quarantines
// the injected streams. OEBENCH_SLOW_TESTS=1 only.
TEST(ServeSoakFullTest, FaultedRunKeepsHealthyStreamsBitIdentical) {
  if (!SlowTestsEnabled()) {
    GTEST_SKIP() << "full soak runs under OEBENCH_SLOW_TESTS=1 "
                    "(check-soak target)";
  }
  std::vector<std::string> batch;
  for (int64_t i = 0; i < kStreams; ++i) {
    std::shared_ptr<const GeneratedStream> stream =
        MakeStream(static_cast<size_t>(i), static_cast<uint64_t>(i));
    batch.push_back(DumpEval(BatchReference(*stream, SoakSessionOptions())));
  }
  for (int workers : {1, 4}) {
    MetricsRegistry::Global()->Reset();
    SoakConfig config;
    config.workers = workers;
    config.policy = AdmissionPolicy::kBlock;
    config.adaptive = false;
    config.ring_capacity = 1024;
    config.slow_every = 0;
    config.slow_ms = 0;
    const SoakOutcome outcome = RunSoak(config);
    ASSERT_TRUE(outcome.wait_ok);
    ASSERT_EQ(outcome.dumps.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (i == 1 || i == 2) continue;  // the quarantined injectees
      EXPECT_EQ(outcome.dumps[i], batch[i])
          << "stream " << i << " diverged from batch at " << workers
          << " workers";
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace oebench
