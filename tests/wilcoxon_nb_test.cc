// Tests for the Wilcoxon rank-sum detector and the incremental
// Naive-Bayes stream learner.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/naive_bayes_learner.h"
#include "drift/wilcoxon.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

TEST(WilcoxonTest, ZeroForIdenticalSamples) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_NEAR(WilcoxonZScore(a, a), 0.0, 1e-9);
  EXPECT_NEAR(WilcoxonPValue(0.0), 1.0, 1e-9);
}

TEST(WilcoxonTest, LargeForShiftedSamples) {
  Rng rng(1);
  std::vector<double> a(300);
  std::vector<double> b(300);
  for (double& v : a) v = rng.Gaussian();
  for (double& v : b) v = rng.Gaussian(1.5, 1.0);
  double z = WilcoxonZScore(a, b);
  EXPECT_LT(z, -5.0);  // a's ranks sit well below b's
  EXPECT_LT(WilcoxonPValue(z), 1e-6);
}

TEST(WilcoxonTest, TieHandling) {
  // Heavily tied integer data still yields a finite, sane statistic.
  std::vector<double> a = {1, 1, 1, 2, 2, 3};
  std::vector<double> b = {2, 2, 3, 3, 3, 4};
  double z = WilcoxonZScore(a, b);
  EXPECT_TRUE(std::isfinite(z));
  EXPECT_LT(z, 0.0);
  // Fully tied pool: degenerate variance handled.
  std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(WilcoxonZScore(c, c), 0.0);
}

TEST(WilcoxonDetectorTest, FlagsShiftQuietWhenStable) {
  Rng rng(2);
  WilcoxonWindowDetector detector;
  auto batch = [&rng](double mean) {
    std::vector<double> v(250);
    for (double& x : v) x = rng.Gaussian(mean, 1.0);
    return v;
  };
  EXPECT_EQ(detector.Update(batch(0.0)), DriftSignal::kStable);
  int drifts = 0;
  for (int w = 0; w < 15; ++w) {
    if (detector.Update(batch(0.0)) == DriftSignal::kDrift) ++drifts;
  }
  EXPECT_LE(drifts, 2);
  EXPECT_EQ(detector.Update(batch(1.0)), DriftSignal::kDrift);
  EXPECT_LT(detector.last_p_value(), 0.05);
  detector.Reset();
  EXPECT_EQ(detector.Update(batch(5.0)), DriftSignal::kStable);  // primes
}

TEST(WilcoxonDetectorTest, InsensitiveToPureScaleChange) {
  // Rank-sum tests location; a variance-only change must not alarm —
  // the documented contrast with KS.
  Rng rng(3);
  WilcoxonWindowDetector detector(0.01);
  std::vector<double> narrow(400);
  std::vector<double> wide(400);
  for (double& v : narrow) v = rng.Gaussian(0.0, 0.5);
  for (double& v : wide) v = rng.Gaussian(0.0, 3.0);
  detector.Update(narrow);
  EXPECT_NE(detector.Update(wide), DriftSignal::kDrift);
}

PreparedStream MakeClsStream(uint64_t seed) {
  StreamSpec spec;
  spec.name = "nb_learner";
  spec.task = TaskType::kClassification;
  spec.num_classes = 3;
  spec.num_instances = 2000;
  spec.num_numeric_features = 5;
  spec.window_size = 200;
  spec.drift_pattern = DriftPattern::kGradual;
  spec.drift_magnitude = 1.0;
  spec.noise_level = 0.1;
  spec.seed = seed;
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  EXPECT_TRUE(prepared.ok());
  return *prepared;
}

TEST(NaiveBayesLearnerTest, LearnsAndBeatsChance) {
  PreparedStream stream = MakeClsStream(4);
  LearnerConfig config;
  NaiveBayesLearner learner(config);
  EvalResult result = RunPrequential(&learner, stream);
  EXPECT_LT(result.mean_loss, 0.5);  // chance = 0.67 for 3 classes
  EXPECT_GT(result.peak_memory_bytes, 0);
  // NB statistics are tiny: far below even the MLP.
  EXPECT_LT(result.peak_memory_bytes, 4096);
}

TEST(NaiveBayesLearnerTest, DecayForgetsOldConcept) {
  // After an abrupt concept flip, a fast-decay NB must beat a
  // remember-everything NB on the post-drift half.
  StreamSpec spec;
  spec.name = "nb_decay";
  spec.task = TaskType::kClassification;
  spec.num_classes = 2;
  spec.num_instances = 2400;
  spec.num_numeric_features = 4;
  spec.window_size = 200;
  spec.drift_pattern = DriftPattern::kAbrupt;
  spec.drift_magnitude = 4.0;
  spec.noise_level = 0.05;
  spec.seed = 5;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  ASSERT_TRUE(prepared.ok());
  LearnerConfig config;
  auto post_drift_loss = [&](double decay) {
    NaiveBayesLearner learner(config, decay);
    EvalResult result = RunPrequential(&learner, *prepared);
    double post = 0.0;
    size_t half = result.per_window_loss.size() / 2;
    for (size_t w = half; w < result.per_window_loss.size(); ++w) {
      post += result.per_window_loss[w];
    }
    return post / static_cast<double>(result.per_window_loss.size() - half);
  };
  EXPECT_LT(post_drift_loss(0.5), post_drift_loss(1.0));
}

TEST(NaiveBayesLearnerTest, RejectsRegression) {
  LearnerConfig config;
  EXPECT_FALSE(
      MakeLearner("Naive-Bayes", config, TaskType::kRegression, 2).ok());
  EXPECT_TRUE(MakeLearner("Naive-Bayes", config,
                          TaskType::kClassification, 3)
                  .ok());
}

}  // namespace
}  // namespace oebench
