// Edge-case and robustness tests across the substrates: degenerate
// inputs, boundary window layouts, ADWIN memory bounds, dictionary
// growth, and evaluator behaviour on pathological streams.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/recommendation.h"
#include "drift/adwin.h"
#include "models/decision_tree.h"
#include "models/gbdt.h"
#include "models/hoeffding_tree.h"
#include "outlier/isolation_forest.h"
#include "preprocess/one_hot.h"
#include "preprocess/pipeline.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

TEST(AdwinEdgeTest, MemoryStaysLogarithmic) {
  Adwin adwin;
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) adwin.Update(rng.Gaussian());
  // Exponential histogram: memory grows with log(n), far below raw
  // storage of 50k doubles.
  EXPECT_LT(adwin.MemoryBytes(), 16 * 1024);
  EXPECT_GT(adwin.WindowSize(), 10000);
}

TEST(AdwinEdgeTest, ConstantStreamNeverCuts) {
  Adwin adwin;
  bool cut = false;
  for (int i = 0; i < 5000; ++i) cut = adwin.Update(1.0) || cut;
  EXPECT_FALSE(cut);
  EXPECT_DOUBLE_EQ(adwin.Mean(), 1.0);
}

TEST(DecisionTreeEdgeTest, SingleSampleBecomesLeaf) {
  DecisionTreeConfig config;
  config.task = TaskType::kRegression;
  DecisionTree tree(config);
  Matrix x = Matrix::FromRows({{1.0, 2.0}});
  tree.Fit(x, {5.0});
  EXPECT_EQ(tree.node_count(), 1);
  std::vector<double> probe = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(tree.PredictValue(probe), 5.0);
}

TEST(DecisionTreeEdgeTest, ConstantFeaturesBecomeLeaf) {
  DecisionTreeConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 2;
  DecisionTree tree(config);
  Matrix x(20, 3, 1.0);  // all rows identical
  std::vector<double> y(20);
  for (int i = 0; i < 20; ++i) y[static_cast<size_t>(i)] = i % 2;
  tree.Fit(x, y);
  EXPECT_EQ(tree.node_count(), 1);
}

TEST(GbdtEdgeTest, ConstantTargetPredictsConstant) {
  GbdtConfig config;
  config.task = TaskType::kRegression;
  Gbdt model(config);
  Rng rng(2);
  Matrix x(30, 2);
  for (double& v : x.data()) v = rng.Gaussian();
  model.Fit(x, std::vector<double>(30, 7.5));
  std::vector<double> probe = {0.3, -0.1};
  EXPECT_NEAR(model.PredictValue(probe.data()), 7.5, 1e-9);
}

TEST(HoeffdingEdgeTest, WeightedSamplesCountMore) {
  HoeffdingTreeConfig config;
  config.num_classes = 2;
  HoeffdingTree tree(config, 3);
  double row[1] = {0.0};
  tree.Learn(row, 1, 0, 1.0);
  tree.Learn(row, 1, 1, 10.0);  // heavier class-1 evidence
  EXPECT_EQ(tree.PredictClass(row, 1), 1);
}

TEST(IsolationForestEdgeTest, ConstantDataScoresUniformly) {
  IsolationForest forest;
  Matrix data(50, 3, 2.0);
  ASSERT_TRUE(forest.Fit(data).ok());
  Result<std::vector<double>> scores = forest.Score(data);
  ASSERT_TRUE(scores.ok());
  for (double s : *scores) {
    EXPECT_NEAR(s, (*scores)[0], 1e-12);
  }
}

TEST(OneHotEdgeTest, TransformRejectsSchemaDrift) {
  Table fit_table;
  ASSERT_TRUE(fit_table.AddColumn(Column::Numeric("a")).ok());
  OneHotEncoder encoder;
  ASSERT_TRUE(encoder.Fit(fit_table).ok());
  // Renamed column: refuse rather than silently mis-encode.
  Table renamed;
  ASSERT_TRUE(renamed.AddColumn(Column::Numeric("b")).ok());
  EXPECT_FALSE(encoder.Transform(renamed).ok());
  // Changed type: also refuse.
  Table retyped;
  ASSERT_TRUE(retyped.AddColumn(Column::Categorical("a")).ok());
  EXPECT_FALSE(encoder.Transform(retyped).ok());
  // Not fitted: precondition error.
  OneHotEncoder fresh;
  EXPECT_FALSE(fresh.Transform(fit_table).ok());
}

TEST(PipelineEdgeTest, AllMissingFeatureSurvivesKnn) {
  StreamSpec spec;
  spec.name = "all_missing";
  spec.num_instances = 1000;
  spec.num_numeric_features = 4;
  spec.window_size = 100;
  spec.dropouts.push_back({0, 0.0, 1.0, 1.0});  // never observed
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  for (const WindowData& window : prepared->windows) {
    for (double v : window.features.data()) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST(PipelineEdgeTest, TinyWindowFactorClampsToUsableWindows) {
  StreamSpec spec;
  spec.name = "tiny_window";
  spec.num_instances = 1000;
  spec.num_numeric_features = 4;
  spec.window_size = 100;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  PipelineOptions options;
  options.window_factor = 1e-6;  // would be <1 row; clamps to 10
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->windows.size(), 100u);
}

TEST(EvaluatorEdgeTest, SingleWindowStreamHasNoTestLoss) {
  StreamSpec spec;
  spec.name = "one_window";
  spec.num_instances = 200;
  spec.num_numeric_features = 3;
  spec.window_size = 200;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  ASSERT_TRUE(prepared.ok());
  ASSERT_EQ(prepared->windows.size(), 1u);
  LearnerConfig config;
  config.epochs = 1;
  Result<std::unique_ptr<StreamLearner>> learner = MakeLearner(
      "Naive-DT", config, prepared->task, prepared->num_classes);
  ASSERT_TRUE(learner.ok());
  EvalResult result = RunPrequential(learner->get(), *prepared);
  EXPECT_TRUE(result.per_window_loss.empty());
  EXPECT_TRUE(std::isinf(result.mean_loss));  // no evaluated window
}

TEST(ColumnEdgeTest, EmptySliceAndCounts) {
  Column col = Column::Numeric("x");
  col.AppendNumeric(1.0);
  Column empty = col.Slice(0, 0);
  EXPECT_EQ(empty.size(), 0);
  EXPECT_EQ(empty.CountMissing(), 0);
}

TEST(MatrixEdgeTest, EmptyMatrixOperations) {
  Matrix empty;
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.size(), 0);
  EXPECT_DOUBLE_EQ(empty.FrobeniusNorm(), 0.0);
  Matrix stacked = Matrix::VStack(empty, Matrix(2, 3, 1.0));
  EXPECT_EQ(stacked.rows(), 2);
}

TEST(RecommendationEdgeTest, AllNotApplicableYieldsNone) {
  std::vector<RepeatedResult> results(1);
  results[0].not_applicable = true;
  EXPECT_EQ(BestAlgorithm(results), "(none)");
  EXPECT_EQ(BestAlgorithm({}), "(none)");
}

}  // namespace
}  // namespace oebench
