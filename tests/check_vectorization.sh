#!/usr/bin/env bash
# Asserts that the OE_SIMD_LOOP kernels actually vectorize: compiles
# tests/simd_probe.cc with the compiler's vectorization-report flag and
# greps the build log for a loop-vectorized remark. Exit 77 = ctest
# SKIP, for compilers where no report flag is available.
#
# usage: check_vectorization.sh <probe.cc> <include-dir>
set -u

CXX="${CXX:-c++}"
SRC="$1"
INCDIR="$2"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Match against the full --version text: GCC's first line is the
# driver name ("c++ (Debian 12.2.0...)"), with "Free Software
# Foundation" only on the second.
ID="$("$CXX" --version 2>/dev/null)"
case "$ID" in
  *clang*)
    FLAGS="-Rpass=loop-vectorize"
    PATTERN="vectorized loop"
    ;;
  *g++*|*GCC*|*"Free Software Foundation"*)
    FLAGS="-fopt-info-vec"
    PATTERN="loop vectorized"
    ;;
  *)
    echo "SKIP: no vectorization-report flag known for compiler:" \
         "$(echo "${ID:-<unknown>}" | head -1)"
    exit 77
    ;;
esac

OUT="$("$CXX" -std=c++20 -O3 -fopenmp-simd -fno-trapping-math \
       -DOEBENCH_OPENMP_SIMD=1 $FLAGS \
       -I"$INCDIR" -c "$SRC" -o "$TMP/probe.o" 2>&1)"
STATUS=$?
if [ $STATUS -ne 0 ]; then
  if echo "$OUT" | grep -qi "unrecognized\|unknown.*option"; then
    echo "SKIP: compiler rejects report flags:"
    echo "$OUT" | head -5
    exit 77
  fi
  echo "probe compile failed:"
  echo "$OUT"
  exit 1
fi

if echo "$OUT" | grep -q "$PATTERN"; then
  echo "vectorization confirmed:"
  echo "$OUT" | grep "$PATTERN" | head -5
  exit 0
fi

echo "no '$PATTERN' remark in the build log; kernels are NOT vectorizing."
echo "full compiler output:"
echo "$OUT"
exit 1
