// Remaining coverage: logging levels, enum-to-string helpers, MLP
// gradient hooks in isolation, detector Reset semantics, determinism of
// the stochastic components, and small invariants not covered elsewhere.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/tsne.h"
#include "common/logging.h"
#include "common/random.h"
#include "drift/hdddm.h"
#include "drift/kdq_tree.h"
#include "drift/ks_test.h"
#include "models/mlp.h"
#include "outlier/ecod.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_spec.h"

namespace oebench {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  OE_LOG(Info) << "suppressed at error level";  // must not crash
  SetLogLevel(before);
}

TEST(EnumStringsTest, AllNamed) {
  EXPECT_STREQ(DriftPatternToString(DriftPattern::kNone), "none");
  EXPECT_STREQ(DriftPatternToString(DriftPattern::kIncrementalAbrupt),
               "incremental-abrupt");
  EXPECT_STREQ(LevelToString(Level::kMedHigh), "Medium high");
  EXPECT_STREQ(TaskTypeToString(TaskType::kClassification),
               "classification");
  EXPECT_STREQ(ColumnTypeToString(ColumnType::kCategorical),
               "categorical");
}

TEST(MlpHooksTest, OutputHookShiftsTraining) {
  // With a dominating output hook pulling toward +10, the regression
  // model must end up predicting far above the data's true mean of 0.
  MlpConfig config;
  config.task = TaskType::kRegression;
  config.hidden_sizes = {4};
  config.learning_rate = 0.05;
  Mlp with_hook(config, 1);
  Mlp without_hook(config, 1);
  Rng rng(2);
  Matrix x(100, 2);
  for (double& v : x.data()) v = rng.Gaussian();
  std::vector<double> y(100, 0.0);

  Mlp::GradHooks hooks;
  hooks.output_hook = [](int64_t, const std::vector<double>& output,
                         std::vector<double>* delta) {
    (*delta)[0] += 5.0 * 2.0 * (output[0] - 10.0);  // pull toward 10
  };
  Rng rng_a(3);
  Rng rng_b(3);
  for (int e = 0; e < 40; ++e) {
    with_hook.TrainEpoch(x, y, &rng_a, &hooks);
    without_hook.TrainEpoch(x, y, &rng_b);
  }
  std::vector<double> probe = {0.0, 0.0};
  EXPECT_GT(with_hook.PredictValue(probe), 5.0);
  EXPECT_LT(std::abs(without_hook.PredictValue(probe)), 1.0);
}

TEST(MlpHooksTest, ParamHookCanFreezeTraining) {
  // A param hook that zeroes all gradients must keep parameters fixed.
  MlpConfig config;
  config.task = TaskType::kRegression;
  config.hidden_sizes = {4};
  Mlp mlp(config, 4);
  mlp.EnsureInitialized(2);
  std::vector<Matrix> before = mlp.weights();
  Mlp::GradHooks hooks;
  hooks.param_hook = [](const std::vector<Matrix>&,
                        const std::vector<std::vector<double>>&,
                        std::vector<Matrix>* wg,
                        std::vector<std::vector<double>>* bg) {
    for (Matrix& g : *wg) {
      std::fill(g.data().begin(), g.data().end(), 0.0);
    }
    for (auto& g : *bg) std::fill(g.begin(), g.end(), 0.0);
  };
  Rng rng(5);
  Matrix x(50, 2);
  for (double& v : x.data()) v = rng.Gaussian();
  std::vector<double> y(50, 3.0);
  mlp.TrainEpoch(x, y, &rng, &hooks);
  for (size_t l = 0; l < before.size(); ++l) {
    EXPECT_EQ(mlp.weights()[l].data(), before[l].data());
  }
}

TEST(MlpTest, OutputNormGradientsNonNegative) {
  MlpConfig config;
  config.task = TaskType::kClassification;
  config.num_classes = 3;
  config.hidden_sizes = {6};
  Mlp mlp(config, 6);
  Rng rng(7);
  Matrix x(30, 4);
  for (double& v : x.data()) v = rng.Gaussian();
  mlp.EnsureInitialized(4);
  std::vector<Matrix> w_imp;
  std::vector<std::vector<double>> b_imp;
  mlp.ComputeOutputNormGradients(x, &w_imp, &b_imp);
  double total = 0.0;
  for (const Matrix& m : w_imp) {
    for (double v : m.data()) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(DetectorResetTest, ResetRestoresFreshState) {
  Rng rng(8);
  KsWindowDetector ks;
  std::vector<double> batch(200);
  for (double& v : batch) v = rng.Gaussian();
  ks.Update(batch);
  ks.Reset();
  // After reset the first batch only primes again — never a drift.
  for (double& v : batch) v = rng.Gaussian(5.0, 1.0);
  EXPECT_EQ(ks.Update(batch), DriftSignal::kStable);

  Hdddm hdddm;
  Matrix m(100, 2);
  for (double& v : m.data()) v = rng.Gaussian();
  hdddm.Update(m);
  hdddm.Reset();
  for (double& v : m.data()) v = rng.Gaussian(5.0, 1.0);
  EXPECT_EQ(hdddm.Update(m), DriftSignal::kStable);
}

TEST(DeterminismTest, KdqTreeSameSeedSameDivergence) {
  auto run = [] {
    Rng rng(9);
    KdqTreeDetector detector;
    Matrix a(300, 3);
    Matrix b(300, 3);
    for (double& v : a.data()) v = rng.Gaussian();
    for (double& v : b.data()) v = rng.Gaussian(1.0, 1.0);
    detector.Update(a);
    detector.Update(b);
    return detector.last_divergence();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(DeterminismTest, TsneSameSeedSameEmbedding) {
  Rng rng(10);
  Matrix data(60, 3);
  for (double& v : data.data()) v = rng.Gaussian();
  Tsne::Options options;
  options.perplexity = 10.0;
  options.max_iterations = 50;
  Tsne tsne(options);
  Result<Matrix> a = tsne.Embed(data);
  Result<Matrix> b = tsne.Embed(data);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->data(), b->data());
}

TEST(EcodConsistencyTest, FitScoreEqualsScoreOnSameData) {
  Rng rng(11);
  Matrix data(100, 3);
  for (double& v : data.data()) v = rng.Gaussian();
  Ecod detector;
  Result<std::vector<double>> fit_scores = detector.FitScore(data);
  ASSERT_TRUE(fit_scores.ok());
  Result<std::vector<double>> re_scores = detector.Score(data);
  ASSERT_TRUE(re_scores.ok());
  EXPECT_EQ(*fit_scores, *re_scores);
}

TEST(CorpusSpecTest, WindowCountRoughlyConstantAcrossScales) {
  const CorpusEntry& entry = Corpus()[2];  // electricity
  for (double scale : {0.05, 0.2, 0.8}) {
    StreamSpec spec = SpecFromEntry(entry, scale);
    double windows = static_cast<double>(spec.num_instances) /
                     static_cast<double>(spec.window_size);
    EXPECT_NEAR(windows, 40.0, 1.0) << scale;
  }
}

TEST(MatrixToStringTest, TruncatesLongMatrices) {
  Matrix m(20, 2, 1.0);
  std::string s = m.ToString(4);
  EXPECT_NE(s.find("20x2"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace oebench
