// Unit and stress tests for the fixed-size worker pool behind the
// parallel sweep engine: futures-based Submit, submit-from-many-threads
// safety, exception propagation, queue draining on destruction, and the
// zero-thread inline-execution mode.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

namespace oebench {
namespace {

TEST(ThreadPoolTest, SubmitReturnsEachTasksResult) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 50;
  std::atomic<int> sum{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<int>>> futures(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &futures, &sum, s] {
      for (int i = 0; i < kTasksEach; ++i) {
        futures[static_cast<size_t>(s)].push_back(pool.Submit([&sum, s, i] {
          sum.fetch_add(1, std::memory_order_relaxed);
          return s * kTasksEach + i;
        }));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    for (int i = 0; i < kTasksEach; ++i) {
      EXPECT_EQ(futures[static_cast<size_t>(s)][static_cast<size_t>(i)].get(),
                s * kTasksEach + i);
    }
  }
  EXPECT_EQ(sum.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolTest, ExceptionPropagatesToFuture) {
  ThreadPool pool(2);
  std::future<int> ok = pool.Submit([] { return 7; });
  std::future<int> bad = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  try {
    bad.get();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
  // The pool survives a throwing task; later submissions still run.
  EXPECT_EQ(pool.Submit([] { return 11; }).get(), 11);
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> completed{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(completed.load(), kTasks);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInlineOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  const std::thread::id caller = std::this_thread::get_id();
  std::future<std::thread::id> ran_on =
      pool.Submit([] { return std::this_thread::get_id(); });
  // Inline mode executes during Submit, so the future is already ready.
  ASSERT_EQ(ran_on.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(ran_on.get(), caller);
}

TEST(ThreadPoolTest, ZeroThreadsPropagatesExceptions) {
  ThreadPool pool(0);
  std::future<int> bad = pool.Submit(
      []() -> int { throw std::runtime_error("inline failure"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolStressTest, ManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  std::vector<std::future<void>> futures;
  constexpr int kTasks = 2000;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit(
        [&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kTasks) * (kTasks - 1) / 2);
}

// Sustained contention: several submitter threads keep feeding short
// tasks while the workers are already busy, for many rounds. Every task
// must run exactly once (the sum is exact) and every future must become
// ready within the deadline (a stuck queue fails instead of hanging the
// suite). Part of the check-sanitize TSan pass.
TEST(ThreadPoolStressTest, SustainedContentionFromManySubmitters) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 2500;
  std::atomic<int64_t> executed{0};
  std::vector<std::vector<std::future<void>>> futures(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &futures, &executed, s] {
      futures[static_cast<size_t>(s)].reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures[static_cast<size_t>(s)].push_back(
            pool.Submit([&executed] {
              // A little real work so workers stay busy and the queue
              // keeps a backlog while submissions continue.
              volatile int64_t spin = 0;
              for (int k = 0; k < 64; ++k) spin += k;
              executed.fetch_add(1, std::memory_order_relaxed);
            }));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (std::vector<std::future<void>>& per_submitter : futures) {
    for (std::future<void>& f : per_submitter) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << "task lost or pool deadlocked";
      f.get();
    }
  }
  EXPECT_EQ(executed.load(),
            static_cast<int64_t>(kSubmitters) * kTasksEach);
}

// Workers resubmitting follow-up tasks from inside the pool — the serve
// engine's run-queue pattern (drain a quantum, resubmit yourself). Many
// concurrent chains race on one countdown; the chain that takes it to
// zero signals completion. Declaration order matters: the pool is
// declared last so its destructor (which drains tasks referencing the
// other locals) runs first.
TEST(ThreadPoolStressTest, WorkersCanResubmitFollowUpTasks) {
  constexpr int kChains = 16;
  constexpr int kSteps = 5000;
  std::atomic<int> remaining{kSteps};
  std::promise<void> done;
  std::future<void> done_future = done.get_future();
  std::function<void()> step;
  ThreadPool pool(3);
  step = [&remaining, &done, &pool, &step] {
    const int before = remaining.fetch_sub(1, std::memory_order_relaxed);
    if (before == 1) {
      done.set_value();  // exactly one chain observes the final step
    } else if (before > 1) {
      pool.Submit(step);
    }
  };
  for (int c = 0; c < kChains; ++c) pool.Submit(step);
  ASSERT_EQ(done_future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "resubmission chains stalled";
}

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

}  // namespace
}  // namespace oebench
