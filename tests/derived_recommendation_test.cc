// Tests of the Figure 9 synthesis step: a shallow CART fitted to
// (scenario -> measured winner) outcomes must reproduce a clean pattern
// and generalise it to unseen scenario corners.

#include <gtest/gtest.h>

#include "core/recommendation.h"

namespace oebench {
namespace {

std::vector<ScenarioOutcome> CleanPattern() {
  // Classification -> trees win; regression with high missing -> iCaRL;
  // other regression -> Naive-NN. Several examples of each with varied
  // irrelevant coordinates.
  std::vector<ScenarioOutcome> outcomes;
  for (Level drift : {Level::kLow, Level::kMedHigh, Level::kHigh}) {
    for (Level anomaly : {Level::kLow, Level::kHigh}) {
      outcomes.push_back({TaskType::kClassification, drift, anomaly,
                          Level::kLow, "SEA-DT"});
      outcomes.push_back({TaskType::kRegression, drift, anomaly,
                          Level::kHigh, "iCaRL"});
      outcomes.push_back({TaskType::kRegression, drift, anomaly,
                          Level::kLow, "Naive-NN"});
    }
  }
  return outcomes;
}

TEST(DerivedRecommendationTest, ReproducesCleanPattern) {
  Result<DerivedRecommendation> derived =
      DerivedRecommendation::Fit(CleanPattern());
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  EXPECT_DOUBLE_EQ(derived->TrainingAccuracy(), 1.0);
  EXPECT_EQ(derived->labels().size(), 3u);
  // Unseen corners follow the pattern.
  EXPECT_EQ(derived->Recommend(TaskType::kClassification, Level::kMedLow,
                               Level::kMedLow, Level::kLow),
            "SEA-DT");
  EXPECT_EQ(derived->Recommend(TaskType::kRegression, Level::kMedLow,
                               Level::kMedLow, Level::kHigh),
            "iCaRL");
  EXPECT_EQ(derived->Recommend(TaskType::kRegression, Level::kMedLow,
                               Level::kMedLow, Level::kLow),
            "Naive-NN");
}

TEST(DerivedRecommendationTest, SingleWinnerDegeneratesGracefully) {
  std::vector<ScenarioOutcome> outcomes = {
      {TaskType::kRegression, Level::kLow, Level::kLow, Level::kLow,
       "Naive-NN"},
      {TaskType::kClassification, Level::kHigh, Level::kHigh,
       Level::kHigh, "Naive-NN"},
  };
  Result<DerivedRecommendation> derived =
      DerivedRecommendation::Fit(outcomes);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived->Recommend(TaskType::kRegression, Level::kMedHigh,
                               Level::kLow, Level::kLow),
            "Naive-NN");
}

TEST(DerivedRecommendationTest, RejectsTooFewOutcomes) {
  EXPECT_FALSE(DerivedRecommendation::Fit({}).ok());
  EXPECT_FALSE(DerivedRecommendation::Fit(
                   {{TaskType::kRegression, Level::kLow, Level::kLow,
                     Level::kLow, "X"}})
                   .ok());
}

}  // namespace
}  // namespace oebench
