// Differential proof that computation reuse is pure work elision
// (DESIGN.md "Computation reuse"): representative sweep grids run with
// --reuse on and off must produce byte-identical result dumps and
// identical deterministic counters, across thread counts, sharded and
// unsharded execution, and chaos schedules — and the warm-start path
// must emit bit-identical epoch-ablation rows while executing
// measurably fewer training steps (asserted via the reuse.* counters).
// DumpOutcome is the oracle: it renders every result field that result
// logs persist (doubles as 16-hex bit patterns) and excludes only
// wall-clock-derived fields, which legitimately differ run to run.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/chaos.h"
#include "core/parallel_eval.h"
#include "preprocess/pipeline.h"
#include "streamgen/corpus.h"
#include "streamgen/representative.h"
#include "streamgen/stream_generator.h"
#include "sweep/merge.h"
#include "sweep/result_log.h"
#include "sweep/reuse.h"
#include "sweep/shard_runner.h"

namespace oebench {
namespace {

std::vector<CorpusEntry> TestEntries() {
  std::vector<CorpusEntry> entries = Corpus();
  entries.resize(3);
  return entries;
}

std::vector<std::string> TestLearners() {
  return {"Naive-NN", "Naive-GBDT"};
}

SweepConfig TestConfig(int threads, const ReuseOptions& reuse) {
  SweepConfig config;
  config.base_config.seed = 1;
  config.base_config.epochs = 2;
  config.repeats = 2;
  config.threads = threads;
  config.scale = 0.02;
  config.reuse = reuse;
  return config;
}

/// Deterministic counters of the last run, with the work-*performed*
/// families stripped: reuse.* counts cache traffic and prepare.*
/// counts pipeline executions, both of which reuse elides by design
/// (e.g. two same-process shards straddling a dataset prepare it twice
/// cold but share one cached prepare). Everything downstream of a
/// prepared stream — eval.*, sweep.*, result_log.* — must be identical
/// between modes.
std::map<std::string, int64_t> WorkloadCounters() {
  std::map<std::string, int64_t> counters =
      MetricsRegistry::Global()->Snapshot().counters;
  for (auto it = counters.begin(); it != counters.end();) {
    if (it->first.rfind("reuse.", 0) == 0 ||
        it->first.rfind("prepare.", 0) == 0) {
      it = counters.erase(it);
    } else {
      ++it;
    }
  }
  return counters;
}

void ResetProcessState() {
  MetricsRegistry::Global()->Reset();
  sweep::PreparedStreamCache::Global()->Clear();
  sweep::SnapshotStore::Global()->Clear();
}

struct ModeResult {
  std::string dump;
  std::map<std::string, int64_t> counters;
};

/// One full sweep in the given configuration. `chaos_spec` (optional)
/// is applied identically in both modes: with one thread the ordinal
/// clauses (throw-at-task) are exact, with more threads only the
/// identity-keyed clauses (transient) are deterministic — callers pick
/// accordingly. Sharded mode runs every shard through a durable log
/// and merges, exactly like the CLI.
ModeResult RunMode(int threads, bool sharded, const std::string& chaos_spec,
                   const ReuseOptions& reuse) {
  ResetProcessState();
  std::vector<CorpusEntry> entries = TestEntries();
  std::vector<std::string> learners = TestLearners();
  SweepConfig config = TestConfig(threads, reuse);

  ModeResult out;
  if (!sharded) {
    std::unique_ptr<ChaosInjector> chaos;
    if (!chaos_spec.empty()) {
      Result<ChaosSchedule> schedule = ChaosSchedule::Parse(chaos_spec);
      OE_CHECK(schedule.ok()) << schedule.status().ToString();
      chaos = std::make_unique<ChaosInjector>(*schedule);
      config.chaos = chaos.get();
    }
    SweepOutcome outcome = ParallelSweepEntries(entries, learners, config);
    out.dump = sweep::DumpOutcome(outcome);
  } else {
    constexpr int kShards = 2;
    sweep::TaskManifest manifest =
        sweep::EntriesManifest(entries, learners, config.repeats);
    std::vector<std::string> logs;
    for (int i = 0; i < kShards; ++i) {
      sweep::ShardRunOptions options;
      options.config = config;
      options.shard = sweep::Shard{i, kShards};
      options.log_path =
          StrFormat("reuse_equivalence_%dof%d.log", i, kShards);
      std::remove(options.log_path.c_str());
      std::unique_ptr<ChaosInjector> chaos;
      if (!chaos_spec.empty()) {
        Result<ChaosSchedule> schedule = ChaosSchedule::Parse(chaos_spec);
        OE_CHECK(schedule.ok()) << schedule.status().ToString();
        chaos = std::make_unique<ChaosInjector>(*schedule);
        options.config.chaos = chaos.get();
      }
      Result<sweep::ShardRunStats> stats =
          sweep::RunCorpusShard(entries, learners, options);
      OE_CHECK(stats.ok()) << stats.status().ToString();
      logs.push_back(options.log_path);
    }
    Result<sweep::MergeReport> merged = sweep::MergeShardLogsReport(
        manifest, sweep::MakeLogHeader(manifest, config, sweep::Shard{}),
        logs);
    OE_CHECK(merged.ok()) << merged.status().ToString();
    out.dump = sweep::DumpOutcome(merged->outcome);
    for (const std::string& log : logs) std::remove(log.c_str());
  }
  out.counters = WorkloadCounters();
  return out;
}

ReuseOptions FullReuse() {
  ReuseOptions reuse;
  reuse.prepare = true;
  reuse.warmstart = true;
  return reuse;
}

/// The differential grid the subsystem's contract is stated over:
/// {1, 4} threads x {unsharded, 2-shard + merge} x {fault-free, chaos}.
/// Every cell must be byte-identical between reuse on and off, with
/// identical deterministic workload counters.
TEST(ReuseEquivalenceTest, DifferentialGridBitIdentical) {
  for (int threads : {1, 4}) {
    for (bool sharded : {false, true}) {
      for (bool chaos : {false, true}) {
        // Ordinal faults need start-order determinism (exact with one
        // worker); at higher thread counts the identity-keyed
        // transient shower is the deterministic chaos mode.
        const std::string chaos_spec =
            !chaos ? "" : (threads == 1 ? "throw-at-task=2"
                                        : "transient=5:0.5");
        SCOPED_TRACE(StrFormat("threads=%d sharded=%d chaos=%s", threads,
                               sharded ? 1 : 0,
                               chaos_spec.empty() ? "off"
                                                  : chaos_spec.c_str()));
        ModeResult off =
            RunMode(threads, sharded, chaos_spec, ReuseOptions{});
        ModeResult on = RunMode(threads, sharded, chaos_spec, FullReuse());
        ASSERT_FALSE(off.dump.empty());
        EXPECT_EQ(off.dump, on.dump);
        EXPECT_EQ(off.counters, on.counters);
      }
    }
  }
}

TEST(ReuseEquivalenceTest, ThreadCountInvariantWithReuseOn) {
  // The engine's counters-identical-across-thread-counts contract must
  // survive the cache: with reuse on, 1-thread and 4-thread runs agree
  // on the dump and on every deterministic counter — including the
  // reuse.* family itself (each key is requested once per sweep, so
  // single-flight makes hit/miss counts scheduling-independent).
  ModeResult one = RunMode(1, /*sharded=*/false, "", FullReuse());
  std::map<std::string, int64_t> one_full =
      MetricsRegistry::Global()->Snapshot().counters;
  ModeResult four = RunMode(4, /*sharded=*/false, "", FullReuse());
  std::map<std::string, int64_t> four_full =
      MetricsRegistry::Global()->Snapshot().counters;
  EXPECT_EQ(one.dump, four.dump);
  EXPECT_EQ(one_full, four_full);
}

PreparedStream MakeSmallStream() {
  StreamSpec spec = RepresentativeSpec("ROOM", 0.02);
  Result<GeneratedStream> generated = GenerateStream(spec);
  OE_CHECK(generated.ok()) << generated.status().ToString();
  Result<PreparedStream> prepared = PrepareStream(*generated, {});
  OE_CHECK(prepared.ok()) << prepared.status().ToString();
  prepared->name = "ROOM";
  return std::move(*prepared);
}

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global()->GetCounter(name)->value();
}

void ExpectGridsBitIdentical(const std::vector<RepeatedResult>& cold,
                             const std::vector<RepeatedResult>& warm) {
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t g = 0; g < cold.size(); ++g) {
    SCOPED_TRACE(StrFormat("grid entry %zu", g));
    EXPECT_EQ(sweep::EncodeDouble(cold[g].loss_mean),
              sweep::EncodeDouble(warm[g].loss_mean));
    EXPECT_EQ(sweep::EncodeDouble(cold[g].loss_stddev),
              sweep::EncodeDouble(warm[g].loss_stddev));
    EXPECT_EQ(cold[g].peak_memory_bytes, warm[g].peak_memory_bytes);
    EXPECT_EQ(cold[g].not_applicable, warm[g].not_applicable);
    EXPECT_EQ(cold[g].learner, warm[g].learner);
    EXPECT_EQ(cold[g].dataset, warm[g].dataset);
  }
}

/// bench_fig10's shape: the epoch ablation forks every grid value from
/// one trained prefix. Rows must be bit-identical to the cold run while
/// the warm-up work drops from sum(grid) to max(grid) epochs per
/// repeat — the "measurably fewer training steps" half of the claim,
/// asserted through the deterministic reuse.* counters.
TEST(WarmstartEquivalenceTest, EpochGridBitIdenticalWithFewerSteps) {
  ResetProcessState();
  PreparedStream stream = MakeSmallStream();
  const std::vector<int> grid = {1, 2, 5};
  const int repeats = 2;
  LearnerConfig config;
  config.seed = 1;

  std::map<std::string, int64_t> cold_eval;
  std::map<std::string, int64_t> warm_eval;
  {
    MetricsRegistry::Global()->Reset();
    std::vector<RepeatedResult> cold = sweep::RunEpochGridRepeated(
        "Naive-NN", config, grid, stream, repeats, /*warmstart=*/false);
    cold_eval = WorkloadCounters();
    EXPECT_EQ(CounterValue("reuse.warmstart_forks"), 0);

    MetricsRegistry::Global()->Reset();
    sweep::SnapshotStore::Global()->Clear();
    std::vector<RepeatedResult> warm = sweep::RunEpochGridRepeated(
        "Naive-NN", config, grid, stream, repeats, /*warmstart=*/true);
    warm_eval = WorkloadCounters();
    ExpectGridsBitIdentical(cold, warm);

    // Fewer steps: each repeat trains max(grid) warm-up epochs once
    // instead of sum(grid) across the grid's cold runs.
    EXPECT_EQ(CounterValue("reuse.warmstart_window0_epochs"), 5 * repeats);
    EXPECT_LT(CounterValue("reuse.warmstart_window0_epochs"),
              (1 + 2 + 5) * repeats);
    EXPECT_EQ(CounterValue("reuse.warmstart_forks"),
              static_cast<int64_t>(grid.size()) * repeats);
    EXPECT_EQ(CounterValue("reuse.warmstart_fallbacks"), 0);
  }
  // Forked runs report the same eval.* accounting as cold ones — the
  // donor trains outside the counted protocol on purpose.
  EXPECT_EQ(cold_eval, warm_eval);
}

TEST(WarmstartEquivalenceTest, NonForkableLearnerFallsBackIdentically) {
  // EWC carries auxiliary state (Fisher anchors) the epochs-1 donor
  // trick cannot replay, so it must take the cold path under
  // --reuse=warmstart — counted, and bit-identical by construction.
  ResetProcessState();
  PreparedStream stream = MakeSmallStream();
  const std::vector<int> grid = {1, 3};
  LearnerConfig config;
  config.seed = 1;
  std::vector<RepeatedResult> cold = sweep::RunEpochGridRepeated(
      "EWC", config, grid, stream, 2, /*warmstart=*/false);
  MetricsRegistry::Global()->Reset();
  std::vector<RepeatedResult> warm = sweep::RunEpochGridRepeated(
      "EWC", config, grid, stream, 2, /*warmstart=*/true);
  ExpectGridsBitIdentical(cold, warm);
  EXPECT_EQ(CounterValue("reuse.warmstart_forks"), 0);
  EXPECT_GE(CounterValue("reuse.warmstart_fallbacks"), 1);
}

}  // namespace
}  // namespace oebench
