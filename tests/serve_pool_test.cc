// Shared state pool tests: dedup accounting, single-flight builds,
// bit-identity of pooled sessions, and the ISSUE acceptance property —
// a 1k-stream pool run's resident-memory saving is asserted from the
// serve.state_pool.* metrics, not eyeballed.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "serve/session.h"
#include "serve/state_pool.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"

namespace oebench {
namespace serve {
namespace {

std::shared_ptr<const GeneratedStream> MakeStream(size_t corpus_index,
                                                  uint64_t salt) {
  const CorpusEntry& entry = Corpus()[corpus_index % Corpus().size()];
  StreamSpec spec = SpecFromEntry(entry, /*scale=*/0.0, salt);
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return std::make_shared<const GeneratedStream>(std::move(*stream));
}

SessionOptions FastSessionOptions(StatePool* pool) {
  SessionOptions options;
  options.max_windows = 2;
  options.learner = "Naive-DT";
  options.learner_config.epochs = 1;
  options.state_pool = pool;
  return options;
}

std::string DumpEval(const EvalResult& result) {
  std::string out = result.learner + "|" + result.dataset + "|" +
                    std::to_string(result.items_processed) + "|" +
                    sweep::EncodeDouble(result.mean_loss) + "|" +
                    sweep::EncodeDouble(result.faded_loss) + "|";
  for (size_t i = 0; i < result.per_window_loss.size(); ++i) {
    if (i > 0) out += ",";
    out += sweep::EncodeDouble(result.per_window_loss[i]);
  }
  return out;
}

EvalResult DriveSessionInline(StreamSession* session) {
  int64_t next_row = 0;
  bool end_sent = false;
  bool finished = false;
  while (!finished) {
    for (int i = 0; i < 16; ++i) {
      if (next_row < session->end_row()) {
        if (session->Offer(next_row, 0.0) == AdmitResult::kAccepted) {
          ++next_row;
        }
      } else if (!end_sent) {
        if (session->OfferEnd(0.0) == AdmitResult::kAccepted) {
          end_sent = true;
        }
      }
    }
    session->ProcessBatch(32, &finished);
    EXPECT_FALSE(session->quarantined()) << session->status().ToString();
    if (session->quarantined()) break;
  }
  return session->result();
}

TEST(StatePoolTest, SameSpecHitsAndSharesOneContext) {
  StatePool pool;
  std::shared_ptr<const GeneratedStream> stream = MakeStream(0, 5);
  PipelineOptions options;
  Result<std::shared_ptr<const StreamContext>> first =
      pool.GetOrBuild(*stream, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<std::shared_ptr<const StreamContext>> second =
      pool.GetOrBuild(*stream, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Pointer identity, not just equal contents: one resident copy.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(pool.misses(), 1);
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(pool.entries(), 1);
  EXPECT_GT(pool.bytes_held(), 0);
  // One hit saved exactly one copy of the entry.
  EXPECT_EQ(pool.bytes_saved(), pool.bytes_held());
}

TEST(StatePoolTest, DistinctSpecsNeverAlias) {
  StatePool pool;
  std::shared_ptr<const GeneratedStream> a = MakeStream(0, 1);
  std::shared_ptr<const GeneratedStream> b = MakeStream(0, 2);  // salt
  PipelineOptions options;
  Result<std::shared_ptr<const StreamContext>> ca =
      pool.GetOrBuild(*a, options);
  Result<std::shared_ptr<const StreamContext>> cb =
      pool.GetOrBuild(*b, options);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_NE(ca->get(), cb->get());
  EXPECT_EQ(pool.misses(), 2);
  EXPECT_EQ(pool.hits(), 0);
  EXPECT_EQ(pool.entries(), 2);
  EXPECT_EQ(pool.bytes_saved(), 0);
}

TEST(StatePoolTest, SingleFlightUnderConcurrentRequests) {
  StatePool pool;
  std::shared_ptr<const GeneratedStream> stream = MakeStream(1, 9);
  PipelineOptions options;
  constexpr int kThreads = 8;
  std::vector<const StreamContext*> seen(kThreads, nullptr);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Result<std::shared_ptr<const StreamContext>> ctx =
            pool.GetOrBuild(*stream, options);
        if (!ctx.ok()) {
          failures.fetch_add(1);
          return;
        }
        seen[static_cast<size_t>(t)] = ctx->get();
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  // Single-flight: exactly one build, regardless of which thread won.
  EXPECT_EQ(pool.misses(), 1);
  EXPECT_EQ(pool.hits(), kThreads - 1);
  EXPECT_EQ(pool.entries(), 1);
}

TEST(StatePoolTest, ClearDropsEntriesButHandlesStayValid) {
  StatePool pool;
  std::shared_ptr<const GeneratedStream> stream = MakeStream(0, 3);
  PipelineOptions options;
  Result<std::shared_ptr<const StreamContext>> ctx =
      pool.GetOrBuild(*stream, options);
  ASSERT_TRUE(ctx.ok());
  pool.Clear();
  EXPECT_EQ(pool.entries(), 0);
  EXPECT_EQ(pool.bytes_held(), 0);
  // The handle keeps the context alive past eviction.
  EXPECT_GT((*ctx)->x.rows(), 0);
  // Re-requesting rebuilds (a fresh miss, a fresh copy).
  Result<std::shared_ptr<const StreamContext>> again =
      pool.GetOrBuild(*stream, options);
  ASSERT_TRUE(again.ok());
  EXPECT_NE(ctx->get(), again->get());
  EXPECT_EQ(pool.misses(), 2);
}

// Pooling is memory elision, never result change: a pooled session's
// served output is bit-identical to a private-context session's.
TEST(StatePoolTest, PooledSessionsAreBitIdenticalToPrivateOnes) {
  std::shared_ptr<const GeneratedStream> stream = MakeStream(0, 11);
  StreamSession private_session(0, stream, FastSessionOptions(nullptr));
  ASSERT_TRUE(private_session.Init().ok());
  const std::string want = DumpEval(DriveSessionInline(&private_session));

  StatePool pool;
  StreamSession first(1, stream, FastSessionOptions(&pool));
  StreamSession second(2, stream, FastSessionOptions(&pool));
  ASSERT_TRUE(first.Init().ok());
  ASSERT_TRUE(second.Init().ok());
  EXPECT_EQ(pool.misses(), 1);
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(DumpEval(DriveSessionInline(&first)), want);
  EXPECT_EQ(DumpEval(DriveSessionInline(&second)), want);
}

// The ISSUE acceptance property: a 1k-session run over K distinct specs
// with the pool on holds one context per spec instead of one per
// session. The resident-memory drop is asserted from the
// serve.state_pool.* metrics: bytes_saved is exactly the duplicate bytes
// the (sessions - K) hit sessions did not allocate.
TEST(StatePoolTest, ThousandSessionsOverFewSpecsSaveMeasurableMemory) {
  MetricsRegistry::Global()->Reset();
  constexpr int kSessions = 1000;
  constexpr int kDistinct = 8;
  std::vector<std::shared_ptr<const GeneratedStream>> streams;
  streams.reserve(kDistinct);
  for (int k = 0; k < kDistinct; ++k) {
    streams.push_back(MakeStream(static_cast<size_t>(k),
                                 static_cast<uint64_t>(k)));
  }
  StatePool pool;
  std::vector<std::unique_ptr<StreamSession>> sessions(kSessions);
  std::vector<Status> statuses(kSessions, Status::OK());
  {
    ThreadPool init_pool(4);
    std::vector<std::future<void>> futures;
    futures.reserve(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      futures.push_back(init_pool.Submit([&, i] {
        SessionOptions options = FastSessionOptions(&pool);
        options.ring_capacity = 2;  // keep 1k rings cheap
        auto session = std::make_unique<StreamSession>(
            i, streams[static_cast<size_t>(i % kDistinct)], options);
        statuses[static_cast<size_t>(i)] = session->Init();
        sessions[static_cast<size_t>(i)] = std::move(session);
      }));
    }
    for (std::future<void>& f : futures) f.get();
  }
  for (const Status& status : statuses) {
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  // Exactly one build per distinct spec; every other session shared.
  EXPECT_EQ(pool.entries(), kDistinct);
  EXPECT_EQ(pool.misses(), kDistinct);
  EXPECT_EQ(pool.hits(), kSessions - kDistinct);
  // The measured saving: (kSessions - kDistinct) duplicate contexts that
  // were never allocated. Each entry's estimate is >= its fixed
  // overhead, so the saving has a hard floor — and dwarfs what is
  // actually held resident (the pool-off run would have paid
  // held + saved).
  EXPECT_GE(pool.bytes_saved(),
            static_cast<int64_t>(kSessions - kDistinct) * 4096);
  EXPECT_GT(pool.bytes_held(), 0);
  EXPECT_GE(pool.bytes_saved(), 10 * pool.bytes_held());
  // The same numbers are published on the metrics registry, so the
  // daemon's shutdown snapshot carries the memory claim.
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  EXPECT_EQ(snap.counters.at("serve.state_pool.misses"), kDistinct);
  EXPECT_EQ(snap.counters.at("serve.state_pool.hits"),
            kSessions - kDistinct);
  EXPECT_EQ(snap.gauges.at("serve.state_pool.entries"),
            static_cast<double>(kDistinct));
  EXPECT_EQ(snap.gauges.at("serve.state_pool.bytes_saved"),
            static_cast<double>(pool.bytes_saved()));
  EXPECT_EQ(snap.gauges.at("serve.state_pool.bytes_held"),
            static_cast<double>(pool.bytes_held()));
}

}  // namespace
}  // namespace serve
}  // namespace oebench
