#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.h"
#include "core/icarl.h"
#include "core/recommendation.h"
#include "core/sea.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

PreparedStream MakePrepared(TaskType task, uint64_t seed = 41,
                            int64_t instances = 1600) {
  StreamSpec spec;
  spec.name = "core_test";
  spec.task = task;
  spec.num_classes = 3;
  spec.num_instances = instances;
  spec.num_numeric_features = 5;
  spec.window_size = 200;
  spec.drift_pattern = DriftPattern::kGradual;
  spec.drift_magnitude = 0.5;
  spec.noise_level = 0.2;
  spec.seed = seed;
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  EXPECT_TRUE(prepared.ok());
  return *prepared;
}

LearnerConfig FastConfig() {
  LearnerConfig config;
  config.epochs = 3;
  config.hidden_sizes = {16, 8};
  return config;
}

TEST(TaskLossTest, ErrorRateAndMse) {
  EXPECT_DOUBLE_EQ(
      TaskLoss(TaskType::kClassification, {0, 1, 1}, {0, 1, 0}),
      1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TaskLoss(TaskType::kRegression, {1.0, 2.0}, {0.0, 4.0}),
                   2.5);
}

TEST(LearnerFactoryTest, AllNamesConstruct) {
  LearnerConfig config = FastConfig();
  for (const std::string& name :
       AllLearnerNames(TaskType::kClassification)) {
    Result<std::unique_ptr<StreamLearner>> learner =
        MakeLearner(name, config, TaskType::kClassification, 3);
    ASSERT_TRUE(learner.ok()) << name;
    EXPECT_EQ((*learner)->name(), name);
  }
  EXPECT_EQ(AllLearnerNames(TaskType::kClassification).size(), 10u);
  EXPECT_EQ(AllLearnerNames(TaskType::kRegression).size(), 9u);
}

TEST(LearnerFactoryTest, ArfRejectsRegression) {
  EXPECT_FALSE(
      MakeLearner("ARF", FastConfig(), TaskType::kRegression, 2).ok());
  EXPECT_FALSE(
      MakeLearner("nope", FastConfig(), TaskType::kRegression, 2).ok());
}

class AllLearnersTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllLearnersTest, RunsPrequentialOnClassification) {
  PreparedStream stream = MakePrepared(TaskType::kClassification);
  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner(GetParam(), FastConfig(), stream.task,
                  stream.num_classes);
  ASSERT_TRUE(learner.ok());
  EvalResult result = RunPrequential(learner->get(), stream);
  EXPECT_EQ(result.per_window_loss.size(), stream.windows.size() - 1);
  // Better than random guessing over 3 classes.
  EXPECT_LT(result.mean_loss, 0.62) << GetParam();
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_GT(result.peak_memory_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Classification, AllLearnersTest,
    ::testing::Values("Naive-NN", "EWC", "LwF", "iCaRL", "SEA-NN",
                      "Naive-DT", "Naive-GBDT", "SEA-DT", "SEA-GBDT",
                      "ARF"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class RegressionLearnersTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(RegressionLearnersTest, RunsPrequentialOnRegression) {
  PreparedStream stream = MakePrepared(TaskType::kRegression, 43);
  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner(GetParam(), FastConfig(), stream.task,
                  stream.num_classes);
  ASSERT_TRUE(learner.ok());
  EvalResult result = RunPrequential(learner->get(), stream);
  // Targets are standardised: predicting the mean gives ~1.0 MSE; a
  // working learner does clearly better.
  EXPECT_LT(result.mean_loss, 0.9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Regression, RegressionLearnersTest,
    ::testing::Values("Naive-NN", "EWC", "LwF", "iCaRL", "SEA-NN",
                      "Naive-DT", "Naive-GBDT", "SEA-DT", "SEA-GBDT"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(IcarlTest, BufferStaysWithinBudget) {
  PreparedStream stream = MakePrepared(TaskType::kClassification, 44);
  LearnerConfig config = FastConfig();
  config.buffer_size = 30;
  IcarlLearner learner(config);
  learner.Begin(stream);
  for (const WindowData& window : stream.windows) {
    learner.TrainWindow(window);
    EXPECT_LE(learner.buffer_rows(), 30 + 3);  // per-class rounding slack
    EXPECT_GT(learner.buffer_rows(), 0);
  }
}

TEST(SeaTest, EnsembleBounded) {
  PreparedStream stream = MakePrepared(TaskType::kClassification, 45);
  LearnerConfig config = FastConfig();
  config.ensemble_size = 3;
  SeaLearner learner(SeaBase::kDt, config);
  learner.Begin(stream);
  for (const WindowData& window : stream.windows) {
    learner.TrainWindow(window);
    EXPECT_LE(learner.ensemble_size(), 3);
  }
  EXPECT_EQ(learner.ensemble_size(), 3);
}

TEST(EvaluatorTest, TestThenTrainSkipsWarmup) {
  PreparedStream stream = MakePrepared(TaskType::kRegression, 46);
  Result<std::unique_ptr<StreamLearner>> learner =
      MakeLearner("Naive-DT", FastConfig(), stream.task,
                  stream.num_classes);
  ASSERT_TRUE(learner.ok());
  EvalResult result = RunPrequential(learner->get(), stream);
  ASSERT_EQ(result.per_window_loss.size(), stream.windows.size() - 1);
  for (double loss : result.per_window_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(EvaluatorTest, RepeatedRunsAggregate) {
  PreparedStream stream = MakePrepared(TaskType::kClassification, 47,
                                       1200);
  RepeatedResult result =
      RunRepeated("Naive-DT", FastConfig(), stream, 3);
  EXPECT_FALSE(result.not_applicable);
  EXPECT_GT(result.loss_mean, 0.0);
  EXPECT_GE(result.loss_stddev, 0.0);
  RepeatedResult na = RunRepeated("ARF", FastConfig(),
                                  MakePrepared(TaskType::kRegression, 48,
                                               1200),
                                  1);
  EXPECT_TRUE(na.not_applicable);
}

TEST(RecommendationTest, EncodesFigure9Branches) {
  // Classification, low anomaly -> tree family.
  EXPECT_EQ(RecommendAlgorithm(TaskType::kClassification, Level::kHigh,
                               Level::kLow, Level::kLow),
            "SEA-GBDT");
  EXPECT_EQ(RecommendAlgorithm(TaskType::kClassification, Level::kLow,
                               Level::kLow, Level::kLow),
            "SEA-DT");
  // Classification, high anomaly -> NN family.
  EXPECT_EQ(RecommendAlgorithm(TaskType::kClassification, Level::kHigh,
                               Level::kHigh, Level::kLow),
            "iCaRL");
  EXPECT_EQ(RecommendAlgorithm(TaskType::kClassification, Level::kLow,
                               Level::kHigh, Level::kLow),
            "Naive-NN");
  // Regression.
  EXPECT_EQ(RecommendAlgorithm(TaskType::kRegression, Level::kLow,
                               Level::kLow, Level::kHigh),
            "iCaRL");
  EXPECT_EQ(RecommendAlgorithm(TaskType::kRegression, Level::kHigh,
                               Level::kLow, Level::kLow),
            "SEA-NN");
  EXPECT_EQ(RecommendAlgorithm(TaskType::kRegression, Level::kLow,
                               Level::kLow, Level::kLow),
            "Naive-NN");
  // Tree preference under tight budgets.
  EXPECT_EQ(RecommendAlgorithm(TaskType::kRegression, Level::kLow,
                               Level::kLow, Level::kLow, true),
            "Naive-GBDT");
}

TEST(RecommendationTest, BestAlgorithmPicksLowestLoss) {
  std::vector<RepeatedResult> results(3);
  results[0].learner = "A";
  results[0].loss_mean = 0.5;
  results[1].learner = "B";
  results[1].loss_mean = 0.2;
  results[2].learner = "C";
  results[2].loss_mean = 0.1;
  results[2].not_applicable = true;
  EXPECT_EQ(BestAlgorithm(results), "B");
}

}  // namespace
}  // namespace oebench
