// Tests of SAM-kNN, the class-emergence generator support, and the
// fading-factor prequential metric.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/evaluator.h"
#include "core/sam_knn.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

PreparedStream MakeClsStream(DriftPattern pattern, double emergence,
                             uint64_t seed) {
  StreamSpec spec;
  spec.name = "samknn";
  spec.task = TaskType::kClassification;
  spec.num_classes = 3;
  spec.num_instances = 2400;
  spec.num_numeric_features = 5;
  spec.window_size = 200;
  spec.drift_pattern = pattern;
  spec.drift_magnitude = pattern == DriftPattern::kNone ? 0.0 : 2.5;
  spec.class_emergence_fraction = emergence;
  spec.noise_level = 0.1;
  spec.seed = seed;
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  EXPECT_TRUE(prepared.ok());
  return *prepared;
}

TEST(SamKnnTest, LearnsSeparableClasses) {
  PreparedStream stream = MakeClsStream(DriftPattern::kNone, 0.0, 1);
  LearnerConfig config;
  SamKnnLearner learner(config);
  EvalResult result = RunPrequential(&learner, stream);
  EXPECT_LT(result.mean_loss, 0.25);
  EXPECT_GT(learner.stm_size(), 0);
}

TEST(SamKnnTest, StmBoundedAndLtmPopulated) {
  PreparedStream stream = MakeClsStream(DriftPattern::kAbrupt, 0.0, 2);
  LearnerConfig config;
  SamKnnLearner::Options options;
  options.max_stm = 300;
  options.max_ltm = 500;
  SamKnnLearner learner(config, options);
  learner.Begin(stream);
  for (const WindowData& window : stream.windows) {
    learner.TrainWindow(window);
    EXPECT_LE(learner.stm_size(), 300);
    EXPECT_LE(learner.ltm_size(), 500);
  }
  // With 2400 samples flowing through a 300-sample STM, the LTM must
  // have received (and kept at least some) archived samples.
  EXPECT_GT(learner.ltm_size(), 0);
}

TEST(SamKnnTest, AdaptsAfterAbruptDrift) {
  PreparedStream stream = MakeClsStream(DriftPattern::kAbrupt, 0.0, 3);
  LearnerConfig config;
  SamKnnLearner learner(config);
  EvalResult result = RunPrequential(&learner, stream);
  // Last window well after the mid-stream switch: recovered accuracy.
  EXPECT_LT(result.per_window_loss.back(), 0.3);
}

TEST(SamKnnTest, RejectsRegression) {
  LearnerConfig config;
  EXPECT_FALSE(
      MakeLearner("SAM-kNN", config, TaskType::kRegression, 2).ok());
  EXPECT_TRUE(
      MakeLearner("SAM-kNN", config, TaskType::kClassification, 3).ok());
}

TEST(ClassEmergenceTest, ClassesAppearInOrder) {
  StreamSpec spec;
  spec.name = "emerge";
  spec.task = TaskType::kClassification;
  spec.num_classes = 4;
  spec.num_instances = 4000;
  spec.num_numeric_features = 5;
  spec.class_emergence_fraction = 0.2;
  spec.seed = 4;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Result<int64_t> target_idx = stream->table.ColumnIndex("target");
  ASSERT_TRUE(target_idx.ok());
  const std::vector<double>& y =
      stream->table.column(*target_idx).numeric_values();
  // Before class c's introduction row, label c never occurs.
  for (int c = 1; c < 4; ++c) {
    int64_t intro = static_cast<int64_t>(0.2 * c * 4000);
    for (int64_t t = 0; t < intro; ++t) {
      ASSERT_LT(static_cast<int>(y[static_cast<size_t>(t)]), c)
          << "class " << c << " appeared at row " << t;
    }
  }
  // After the last introduction all classes occur.
  std::set<int> late;
  for (int64_t t = 3200; t < 4000; ++t) {
    late.insert(static_cast<int>(y[static_cast<size_t>(t)]));
  }
  EXPECT_EQ(late.size(), 4u);
}

TEST(FadedLossTest, WeighsRecentWindowsMore) {
  // A learner whose loss improves over time must have faded < mean; one
  // that degrades must have faded > mean. Synthesise via a stub learner.
  class ScriptedLearner : public StreamLearner {
   public:
    explicit ScriptedLearner(bool improving) : improving_(improving) {}
    void Begin(const PreparedStream&) override { window_ = 0; }
    double TestLoss(const WindowData&) override {
      double loss = improving_ ? 1.0 / (1.0 + window_)
                               : static_cast<double>(window_);
      ++window_;
      return loss;
    }
    void TrainWindow(const WindowData&) override {}
    std::string name() const override { return "scripted"; }
    int64_t MemoryBytes() const override { return 1; }

   private:
    bool improving_;
    int window_ = 0;
  };
  PreparedStream stream = MakeClsStream(DriftPattern::kNone, 0.0, 5);
  ScriptedLearner improving(true);
  EvalResult up = RunPrequential(&improving, stream);
  EXPECT_LT(up.faded_loss, up.mean_loss);
  ScriptedLearner degrading(false);
  EvalResult down = RunPrequential(&degrading, stream);
  EXPECT_GT(down.faded_loss, down.mean_loss);
}

}  // namespace
}  // namespace oebench
