// Further generator properties: anomaly-rate realisation, noise-level
// monotonicity of learnability, seasonal covariate movement, and
// event/ground-truth bookkeeping under combined injections.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/evaluator.h"
#include "linalg/vector_ops.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

class AnomalyRateTest : public ::testing::TestWithParam<double> {};

TEST_P(AnomalyRateTest, PointAnomalyRateRealised) {
  StreamSpec spec;
  spec.name = "anomaly_rate";
  spec.num_instances = 8000;
  spec.num_numeric_features = 5;
  spec.point_anomaly_rate = GetParam();
  spec.seed = 71;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  double realised =
      static_cast<double>(stream->true_outlier_rows.size()) / 8000.0;
  EXPECT_NEAR(realised, GetParam(), 0.004 + 0.25 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Rates, AnomalyRateTest,
                         ::testing::Values(0.001, 0.01, 0.05));

TEST(GeneratorNoiseTest, MoreNoiseMeansHarderStream) {
  auto loss_at = [](double noise) {
    StreamSpec spec;
    spec.name = "noise";
    spec.task = TaskType::kClassification;
    spec.num_classes = 2;
    spec.num_instances = 2000;
    spec.num_numeric_features = 5;
    spec.window_size = 200;
    spec.noise_level = noise;
    spec.seed = 72;
    Result<GeneratedStream> stream = GenerateStream(spec);
    EXPECT_TRUE(stream.ok());
    Result<PreparedStream> prepared = PrepareStream(*stream);
    EXPECT_TRUE(prepared.ok());
    LearnerConfig config;
    config.epochs = 3;
    Result<std::unique_ptr<StreamLearner>> learner = MakeLearner(
        "Naive-GBDT", config, prepared->task, prepared->num_classes);
    EXPECT_TRUE(learner.ok());
    return RunPrequential(learner->get(), *prepared).mean_loss;
  };
  double quiet = loss_at(0.05);
  double noisy = loss_at(0.8);
  EXPECT_LT(quiet, noisy);
}

TEST(GeneratorSeasonalTest, FeatureMeansOscillate) {
  StreamSpec spec;
  spec.name = "seasonal";
  spec.num_instances = 4000;
  spec.num_numeric_features = 4;
  spec.window_size = 250;
  spec.drift_pattern = DriftPattern::kRecurrent;
  spec.drift_magnitude = 0.0;      // isolate the seasonal term
  spec.seasonal_amplitude = 2.0;
  spec.drift_period_fraction = 0.5;
  spec.noise_level = 0.05;
  spec.seed = 73;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  // Window means of feature 0 must rise and fall (non-monotone) with a
  // visible amplitude.
  const Column& col = stream->table.column(0);
  std::vector<double> window_means;
  for (int64_t w = 0; w < 16; ++w) {
    double sum = 0.0;
    for (int64_t r = w * 250; r < (w + 1) * 250; ++r) {
      sum += col.NumericAt(r);
    }
    window_means.push_back(sum / 250.0);
  }
  double lo = *std::min_element(window_means.begin(), window_means.end());
  double hi = *std::max_element(window_means.begin(), window_means.end());
  EXPECT_GT(hi - lo, 0.5);
  // Non-monotone: the max is not at either end.
  size_t argmax = static_cast<size_t>(
      std::max_element(window_means.begin(), window_means.end()) -
      window_means.begin());
  EXPECT_GT(argmax, 0u);
  EXPECT_LT(argmax, window_means.size() - 1);
}

TEST(GeneratorCombinedTest, GroundTruthCoversAllInjections) {
  StreamSpec spec;
  spec.name = "combined";
  spec.task = TaskType::kRegression;
  spec.num_instances = 4000;
  spec.num_numeric_features = 6;
  spec.drift_pattern = DriftPattern::kAbrupt;
  spec.drift_magnitude = 2.0;
  spec.point_anomaly_rate = 0.005;
  spec.anomaly_events.push_back({0.7, 0.72, 1.0, 0, 9.0});
  spec.base_missing_rate = 0.05;
  spec.dropouts.push_back({3, 0.0, 0.3, 1.0});
  spec.seed = 74;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  // Drift row recorded.
  ASSERT_EQ(stream->true_drift_rows.size(), 1u);
  EXPECT_EQ(stream->true_drift_rows[0], 2000);
  // Outliers include both the event span and scattered points.
  std::set<int64_t> outliers(stream->true_outlier_rows.begin(),
                             stream->true_outlier_rows.end());
  int64_t in_event = 0;
  int64_t outside_event = 0;
  for (int64_t row : outliers) {
    if (row >= 2800 && row < 2880 + 1) {
      ++in_event;
    } else {
      ++outside_event;
    }
  }
  EXPECT_GT(in_event, 50);
  EXPECT_GT(outside_event, 5);
  // Dropout feature missing early, observed late.
  const Column& dropped = stream->table.column(3);
  EXPECT_GT(dropped.CountMissing(), 1000);
  EXPECT_FALSE(dropped.IsMissing(3999));
}

}  // namespace
}  // namespace oebench
