// Serving failure domains (ISSUE 9): serve-side chaos clauses and the
// ServeChaosInjector, session quarantine semantics (exception,
// transient exhaustion, non-finite explosion, drain-and-discard),
// engine failure collection with worker-count-invariant injection, the
// failure breaker, deadline eviction of wedged streams, WaitAllFinished
// timeout diagnostics, admission edge races (offer-after-finished,
// double OfferEnd, offer-during-quarantine), the AdmissionController
// (both modes), the bounded offer backoff, and oebench_serve CLI
// contract tests exec'd via OEBENCH_SERVE_BIN. Also part of the
// check-sanitize TSan/ASan passes — quarantine, eviction and
// abandonment all race against producers and pool workers by design.

#include <sys/wait.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/io_env.h"
#include "common/metrics.h"
#include "core/chaos.h"
#include "core/evaluator.h"
#include "core/parallel_eval.h"
#include "serve/admission.h"
#include "serve/failure.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/session.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace serve {
namespace {

// ---------------------------------------------------------------------
// ChaosSchedule: serve-side clauses

TEST(ServeChaosScheduleTest, ParsesServeClauses) {
  Result<ChaosSchedule> schedule = ChaosSchedule::Parse(
      "throw-at-activation=2,nan-at-record=3,transient=9:0.25");
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  EXPECT_EQ(schedule->throw_at_activation, 2);
  EXPECT_EQ(schedule->nan_at_record, 3);
  EXPECT_EQ(schedule->transient_seed, 9u);
  EXPECT_DOUBLE_EQ(schedule->transient_p, 0.25);
  EXPECT_TRUE(schedule->has_serve_clauses());
  EXPECT_FALSE(schedule->has_sweep_clauses());
  const std::string text = schedule->ToString();
  EXPECT_NE(text.find("throw-at-activation=2"), std::string::npos);
  EXPECT_NE(text.find("nan-at-record=3"), std::string::npos);
}

TEST(ServeChaosScheduleTest, RejectsDuplicatesAndMalformedClauses) {
  EXPECT_FALSE(
      ChaosSchedule::Parse("throw-at-activation=1,throw-at-activation=2")
          .ok());
  EXPECT_FALSE(ChaosSchedule::Parse("nan-at-record=0").ok());
  EXPECT_FALSE(ChaosSchedule::Parse("throw-at-activation=abc").ok());
  EXPECT_FALSE(ChaosSchedule::Parse("nan-at-record=1,nan-at-record=1").ok());
}

TEST(ServeChaosScheduleTest, SweepVsServeClauseClassification) {
  Result<ChaosSchedule> sweep_only = ChaosSchedule::Parse("throw-at-task=1");
  ASSERT_TRUE(sweep_only.ok());
  EXPECT_TRUE(sweep_only->has_sweep_clauses());
  EXPECT_FALSE(sweep_only->has_serve_clauses());
  // Transient belongs to both worlds: neither classifier claims it.
  Result<ChaosSchedule> transient = ChaosSchedule::Parse("transient=7:0.5");
  ASSERT_TRUE(transient.ok());
  EXPECT_FALSE(transient->has_sweep_clauses());
  EXPECT_FALSE(transient->has_serve_clauses());
}

// ---------------------------------------------------------------------
// SessionFailure formatting

TEST(ServeFailureFormatTest, KindNamesAreStable) {
  EXPECT_STREQ(SessionFailureKindName(SessionFailureKind::kException),
               "exception");
  EXPECT_STREQ(SessionFailureKindName(SessionFailureKind::kNonFinite),
               "non-finite");
  EXPECT_STREQ(SessionFailureKindName(SessionFailureKind::kTransient),
               "transient");
  EXPECT_STREQ(SessionFailureKindName(SessionFailureKind::kDeadline),
               "deadline");
}

TEST(ServeFailureFormatTest, SanitizeCollapsesControlCharacters) {
  EXPECT_EQ(SanitizeFailureMessage("a\tb\nc\rd"), "a b c d");
  EXPECT_EQ(SanitizeFailureMessage("clean"), "clean");
}

TEST(ServeFailureFormatTest, ReportEmptyWithoutFailuresAndListsEachRow) {
  EXPECT_EQ(FormatSessionFailureReport({}), "");
  SessionFailure failure;
  failure.session_id = 3;
  failure.stream = "electricity";
  failure.kind = SessionFailureKind::kNonFinite;
  failure.message = "metrics exploded";
  failure.records_processed = 42;
  const std::string report = FormatSessionFailureReport({failure});
  EXPECT_NE(report.find("QUARANTINED SESSIONS (1)"), std::string::npos);
  EXPECT_NE(report.find("#3"), std::string::npos);
  EXPECT_NE(report.find("electricity"), std::string::npos);
  EXPECT_NE(report.find("non-finite"), std::string::npos);
  EXPECT_NE(report.find("records=42"), std::string::npos);
}

// ---------------------------------------------------------------------
// ServeChaosInjector

ChaosSchedule MustParse(const std::string& spec) {
  Result<ChaosSchedule> schedule = ChaosSchedule::Parse(spec);
  EXPECT_TRUE(schedule.ok()) << schedule.status().ToString();
  return *schedule;
}

TEST(ServeChaosInjectorTest, ThrowsEveryAttemptAtTargetOrdinal) {
  ServeChaosInjector injector(MustParse("throw-at-activation=2"));
  EXPECT_TRUE(injector.active());
  EXPECT_NO_THROW(injector.OnActivation(1, "a"));
  // Every attempt throws: the session's retry loop must not clear it.
  EXPECT_THROW(injector.OnActivation(2, "b"), std::runtime_error);
  EXPECT_THROW(injector.OnActivation(2, "b"), std::runtime_error);
  EXPECT_NO_THROW(injector.OnActivation(3, "c"));
  EXPECT_GE(injector.faults_injected(), 2);
}

TEST(ServeChaosInjectorTest, TransientFiresOncePerStreamIdentity) {
  ServeChaosInjector injector(MustParse("transient=11:1.0"));
  EXPECT_TRUE(injector.active());
  EXPECT_THROW(injector.OnActivation(1, "stream-a"), TransientTaskError);
  // The sticky set clears the fault: the in-process retry succeeds.
  EXPECT_NO_THROW(injector.OnActivation(1, "stream-a"));
  EXPECT_THROW(injector.OnActivation(2, "stream-b"), TransientTaskError);
  EXPECT_NO_THROW(injector.OnActivation(2, "stream-b"));
}

TEST(ServeChaosInjectorTest, NanPoisonsOnlyTheTargetSession) {
  ServeChaosInjector injector(MustParse("nan-at-record=1"));
  EvalResult target;
  target.mean_loss = 0.5;
  target.faded_loss = 0.5;
  injector.OnSessionFinish(1, &target);
  EXPECT_TRUE(std::isnan(target.mean_loss));
  EXPECT_TRUE(std::isnan(target.faded_loss));
  EvalResult untouched;
  untouched.mean_loss = 0.5;
  untouched.faded_loss = 0.25;
  injector.OnSessionFinish(2, &untouched);
  EXPECT_DOUBLE_EQ(untouched.mean_loss, 0.5);
  EXPECT_DOUBLE_EQ(untouched.faded_loss, 0.25);
}

// ---------------------------------------------------------------------
// StreamSession quarantine semantics

std::shared_ptr<const GeneratedStream> MakeStream(size_t corpus_index,
                                                  uint64_t salt) {
  const CorpusEntry& entry = Corpus()[corpus_index];
  StreamSpec spec = SpecFromEntry(entry, /*scale=*/0.0, salt);
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return std::make_shared<const GeneratedStream>(std::move(*stream));
}

SessionOptions FastSessionOptions(size_t max_windows = 3) {
  SessionOptions options;
  options.max_windows = max_windows;
  options.learner = "Naive-DT";
  options.learner_config.epochs = 1;
  return options;
}

// Drives the session until it reports finished, offering rows then the
// sentinel; tolerates quarantine (that is what is under test).
void DriveToFinish(StreamSession* session) {
  int64_t next_row = 0;
  bool end_sent = false;
  bool finished = false;
  while (!finished) {
    for (int i = 0; i < 16; ++i) {
      if (next_row < session->end_row()) {
        if (session->Offer(next_row, 0.0) == AdmitResult::kAccepted) {
          ++next_row;
        }
      } else if (!end_sent) {
        const AdmitResult admit = session->OfferEnd(0.0);
        if (admit == AdmitResult::kAccepted ||
            admit == AdmitResult::kFinished) {
          end_sent = true;
        }
      }
    }
    session->ProcessBatch(32, &finished);
  }
}

TEST(ServeSessionFailureTest, ActivationThrowQuarantinesAndDrains) {
  MetricsRegistry::Global()->Reset();
  ServeChaosInjector injector(MustParse("throw-at-activation=1"));
  StreamSession session(0, MakeStream(0, 5), FastSessionOptions());
  ASSERT_TRUE(session.Init().ok());
  session.set_chaos(&injector);

  DriveToFinish(&session);
  EXPECT_TRUE(session.finished());
  EXPECT_TRUE(session.quarantined());
  EXPECT_FALSE(session.status().ok());
  // Every record offered after the quarantine was accepted and then
  // discarded, so producer accounting stayed exact.
  EXPECT_GT(session.records_discarded(), 0);

  SessionFailure failure;
  ASSERT_TRUE(session.TakeFailureReport(&failure));
  EXPECT_EQ(failure.session_id, 0);
  EXPECT_EQ(failure.kind, SessionFailureKind::kException);
  EXPECT_EQ(failure.stream, session.name());
  EXPECT_NE(failure.message.find("injected chaos"), std::string::npos);
  // The report moves out exactly once.
  EXPECT_FALSE(session.TakeFailureReport(&failure));

  // Admission edge: a finished (quarantined) session admits nothing.
  EXPECT_EQ(session.Offer(0, 0.0), AdmitResult::kFinished);
  EXPECT_EQ(session.OfferEnd(0.0), AdmitResult::kFinished);

  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  EXPECT_EQ(snap.volatile_counters.at("serve.sessions_quarantined"), 1);
  EXPECT_EQ(snap.volatile_counters.at("serve.failures.exception"), 1);
}

TEST(ServeSessionFailureTest, TransientRetryClearsWithinAttempts) {
  MetricsRegistry::Global()->Reset();
  ServeChaosInjector injector(MustParse("transient=3:1.0"));
  SessionOptions options = FastSessionOptions();
  options.attempts = 2;  // one in-process retry
  StreamSession session(0, MakeStream(0, 6), options);
  ASSERT_TRUE(session.Init().ok());
  session.set_chaos(&injector);
  DriveToFinish(&session);
  EXPECT_TRUE(session.finished());
  EXPECT_FALSE(session.quarantined());
  EXPECT_TRUE(session.status().ok()) << session.status().ToString();
  EXPECT_GT(session.result().items_processed, 0);
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  EXPECT_GE(snap.volatile_counters.at("serve.transient_retries"), 1);
}

TEST(ServeSessionFailureTest, TransientExhaustionQuarantines) {
  MetricsRegistry::Global()->Reset();
  ServeChaosInjector injector(MustParse("transient=3:1.0"));
  SessionOptions options = FastSessionOptions();
  options.attempts = 1;  // no retry budget
  StreamSession session(0, MakeStream(0, 6), options);
  ASSERT_TRUE(session.Init().ok());
  session.set_chaos(&injector);
  DriveToFinish(&session);
  EXPECT_TRUE(session.quarantined());
  SessionFailure failure;
  ASSERT_TRUE(session.TakeFailureReport(&failure));
  EXPECT_EQ(failure.kind, SessionFailureKind::kTransient);
}

TEST(ServeSessionFailureTest, NanPoisonTripsNonFiniteDetector) {
  MetricsRegistry::Global()->Reset();
  ServeChaosInjector injector(MustParse("nan-at-record=1"));
  StreamSession session(0, MakeStream(0, 7), FastSessionOptions());
  ASSERT_TRUE(session.Init().ok());
  session.set_chaos(&injector);
  DriveToFinish(&session);
  EXPECT_TRUE(session.quarantined());
  SessionFailure failure;
  ASSERT_TRUE(session.TakeFailureReport(&failure));
  EXPECT_EQ(failure.kind, SessionFailureKind::kNonFinite);
  EXPECT_NE(failure.message.find("non-finite"), std::string::npos);
  // The failure records how far the stream got before the explosion.
  EXPECT_GT(failure.records_processed, 0);
}

TEST(ServeSessionFailureTest, DoubleOfferEndIsIdempotent) {
  StreamSession session(0, MakeStream(0, 8), FastSessionOptions(1));
  ASSERT_TRUE(session.Init().ok());
  ASSERT_EQ(session.OfferEnd(0.0), AdmitResult::kAccepted);
  // A second sentinel before the first is consumed must not enqueue a
  // duplicate shutdown message.
  EXPECT_EQ(session.OfferEnd(0.0), AdmitResult::kFinished);
  bool finished = false;
  const int64_t processed = session.ProcessBatch(16, &finished);
  EXPECT_TRUE(finished);
  EXPECT_EQ(processed, 1);  // exactly one sentinel was in the ring
  EXPECT_EQ(session.OfferEnd(0.0), AdmitResult::kFinished);
}

// ---------------------------------------------------------------------
// ServeEngine failure collection

std::unique_ptr<StreamSession> MakeInitedSession(int64_t id,
                                                 size_t corpus_index,
                                                 SessionOptions options) {
  auto session = std::make_unique<StreamSession>(
      id, MakeStream(corpus_index, static_cast<uint64_t>(id)), options);
  EXPECT_TRUE(session->Init().ok());
  return session;
}

// Runs a 3-stream serve under `schedule` and returns the collected
// (session_id, kind) failure set.
std::vector<std::pair<int64_t, SessionFailureKind>> FailureSet(
    const ChaosSchedule& schedule, int workers) {
  ServeChaosInjector injector(schedule);
  ServerOptions engine_options;
  engine_options.workers = workers;
  engine_options.quantum = 16;
  engine_options.chaos = &injector;
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < 3; ++i) {
    engine.AddSession(
        MakeInitedSession(i, static_cast<size_t>(i), FastSessionOptions(2)));
  }
  LoadGenOptions load;
  load.seed = 17;
  load.admission = AdmissionPolicy::kBlock;
  RunLoadGenerator(&engine, load);
  EXPECT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  std::vector<std::pair<int64_t, SessionFailureKind>> kinds;
  for (const SessionFailure& failure : engine.failures()) {
    kinds.emplace_back(failure.session_id, failure.kind);
  }
  std::sort(kinds.begin(), kinds.end());
  // Sibling sessions must be untouched by the quarantine.
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    EXPECT_TRUE(engine.session(i)->finished());
    bool failed = false;
    for (const auto& entry : kinds) {
      if (entry.first == static_cast<int64_t>(i)) failed = true;
    }
    if (!failed) {
      EXPECT_FALSE(engine.session(i)->quarantined());
      EXPECT_GT(engine.session(i)->result().items_processed, 0);
    }
  }
  return kinds;
}

TEST(ServeEngineFailureTest, PoisonStreamCostsOneSessionNeverTheEngine) {
  MetricsRegistry::Global()->Reset();
  const auto kinds = FailureSet(MustParse("throw-at-activation=2"), 2);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0].first, 1);  // ordinal 2 == session id 1
  EXPECT_EQ(kinds[0].second, SessionFailureKind::kException);
}

TEST(ServeEngineFailureTest, InjectionIsWorkerCountInvariant) {
  // Registration-order ordinals make the faulted stream set a pure
  // function of the schedule, not of scheduling.
  const ChaosSchedule schedule =
      MustParse("throw-at-activation=1,nan-at-record=3");
  MetricsRegistry::Global()->Reset();
  const auto one_worker = FailureSet(schedule, 1);
  MetricsRegistry::Global()->Reset();
  const auto four_workers = FailureSet(schedule, 4);
  ASSERT_EQ(one_worker.size(), 2u);
  EXPECT_EQ(one_worker, four_workers);
  EXPECT_EQ(one_worker[0],
            (std::pair<int64_t, SessionFailureKind>(
                0, SessionFailureKind::kException)));
  EXPECT_EQ(one_worker[1],
            (std::pair<int64_t, SessionFailureKind>(
                2, SessionFailureKind::kNonFinite)));
}

TEST(ServeEngineFailureTest, BreakerAbandonsTheRunAfterBudget) {
  MetricsRegistry::Global()->Reset();
  ServeChaosInjector injector(MustParse("throw-at-activation=1"));
  ServerOptions engine_options;
  engine_options.workers = 2;
  engine_options.chaos = &injector;
  engine_options.max_session_failures = 0;  // first quarantine trips it
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < 2; ++i) {
    engine.AddSession(
        MakeInitedSession(i, static_cast<size_t>(i), FastSessionOptions(2)));
  }
  // Session 0 (ordinal 1) throws; feed it to completion so its failure
  // is collected. Session 1 never receives a sentinel — without the
  // breaker, WaitAllFinished would hang on it.
  for (int64_t row = 0;; ++row) {
    const AdmitResult admit =
        row < engine.session(0)->end_row()
            ? engine.Offer(0, row, 0.0)
            : engine.OfferEnd(0, 0.0);
    if (admit == AdmitResult::kFinished) break;
    if (admit == AdmitResult::kOverloaded) {
      --row;
      std::this_thread::yield();
    }
  }
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/60.0));
  EXPECT_TRUE(engine.breaker_tripped());
  ASSERT_EQ(engine.failures().size(), 1u);
  EXPECT_EQ(engine.failures()[0].session_id, 0);
  // The sentinel-less sibling was abandoned, not quarantined: it gets
  // no failure record and its result is not trusted.
  EXPECT_TRUE(engine.session(1)->finished());
  EXPECT_TRUE(engine.session(1)->abandoned());
  EXPECT_FALSE(engine.session(1)->quarantined());
  // After the breaker, offers are refused outright.
  EXPECT_EQ(engine.Offer(1, 0, 0.0), AdmitResult::kFinished);
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  EXPECT_EQ(snap.volatile_counters.at("serve.breaker_trips"), 1);
  EXPECT_GE(snap.volatile_counters.at("serve.sessions_abandoned"), 1);
}

TEST(ServeEngineFailureTest, DeadlineEvictionUnwedgesShutdown) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 2;
  engine_options.session_deadline_ms = 200;
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < 2; ++i) {
    engine.AddSession(
        MakeInitedSession(i, static_cast<size_t>(i), FastSessionOptions(2)));
  }
  // Session 0 completes normally; session 1 gets a few records but no
  // sentinel — a wedged producer. The deadline evicts it so shutdown
  // completes.
  for (int64_t row = 0;; ++row) {
    const AdmitResult admit =
        row < engine.session(0)->end_row()
            ? engine.Offer(0, row, 0.0)
            : engine.OfferEnd(0, 0.0);
    if (admit == AdmitResult::kFinished) break;
    if (admit == AdmitResult::kOverloaded) {
      --row;
      std::this_thread::yield();
    }
  }
  for (int64_t row = 0; row < 3; ++row) {
    engine.Offer(1, row, 0.0);
  }
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/60.0));
  EXPECT_EQ(engine.inflight(), 0);
  EXPECT_TRUE(engine.session(1)->finished());
  EXPECT_TRUE(engine.session(1)->quarantined());
  ASSERT_EQ(engine.failures().size(), 1u);
  EXPECT_EQ(engine.failures()[0].session_id, 1);
  EXPECT_EQ(engine.failures()[0].kind, SessionFailureKind::kDeadline);
  // The healthy sibling was untouched.
  EXPECT_FALSE(engine.session(0)->quarantined());
  EXPECT_GT(engine.session(0)->result().items_processed, 0);
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  EXPECT_GE(snap.volatile_counters.at("serve.deadline_evictions"), 1);
}

TEST(ServeEngineFailureTest, TimeoutDiagnosticsNameTheWedgedSession) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 1;
  ServeEngine engine(engine_options);
  engine.AddSession(MakeInitedSession(0, 0, FastSessionOptions(2)));
  ASSERT_EQ(engine.Offer(0, 0, 0.0), AdmitResult::kAccepted);
  // No sentinel and no deadline: the bounded wait must time out and the
  // diagnostics must name the stuck session.
  EXPECT_FALSE(engine.WaitAllFinished(/*timeout_seconds=*/0.3));
  const std::string diag = engine.DescribeUnfinished();
  EXPECT_NE(diag.find("session #0"), std::string::npos);
  EXPECT_NE(diag.find("queue_depth="), std::string::npos);
  EXPECT_NE(diag.find("activations="), std::string::npos);
  // Unwedge for a clean teardown.
  for (;;) {
    const AdmitResult admit = engine.OfferEnd(0, 0.0);
    if (admit == AdmitResult::kAccepted || admit == AdmitResult::kFinished) {
      break;
    }
    std::this_thread::yield();
  }
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/60.0));
  EXPECT_EQ(engine.DescribeUnfinished(), "");
}

// ---------------------------------------------------------------------
// AdmissionController

TEST(ServeAdmissionTest, QueueDepthProxyHasHysteresis) {
  AdmissionOptions options;
  options.shed_depth = 10;
  options.resume_depth = 5;
  AdmissionController admission(options);
  EXPECT_FALSE(admission.ShouldShed(9));
  EXPECT_TRUE(admission.ShouldShed(10));  // crossed the shed threshold
  EXPECT_TRUE(admission.shedding());
  // Inside the hysteresis band the current state holds.
  EXPECT_TRUE(admission.ShouldShed(7));
  EXPECT_FALSE(admission.ShouldShed(5));  // at/below resume: recover
  EXPECT_FALSE(admission.ShouldShed(7));  // band again, now accepting
  EXPECT_EQ(admission.transitions(), 2);
}

TEST(ServeAdmissionTest, LatencyModeShedsOnTailBlowupAndResumes) {
  MetricsRegistry::Global()->Reset();
  Histogram* latency =
      MetricsRegistry::Global()->GetHistogram("serve.record_latency_seconds");
  AdmissionOptions options;
  options.p99_limit_seconds = 0.05;
  options.resume_fraction = 0.5;
  options.min_delta_records = 16;
  AdmissionController admission(options);
  EXPECT_FALSE(admission.ShouldShed(0));  // no data yet

  // A burst of 200 ms records: the delta p99 blows the 50 ms budget.
  for (int i = 0; i < 64; ++i) latency->Record(0.2);
  EXPECT_TRUE(admission.ShouldShed(0));
  EXPECT_TRUE(admission.shedding());
  EXPECT_GT(admission.last_p99(), options.p99_limit_seconds);

  // Recovery: a long run of 1 ms records pulls the delta p99 under the
  // resume threshold (hysteresis at limit * resume_fraction).
  for (int i = 0; i < 512; ++i) latency->Record(0.001);
  EXPECT_FALSE(admission.ShouldShed(0));
  EXPECT_LT(admission.last_p99(),
            options.p99_limit_seconds * options.resume_fraction);
  EXPECT_EQ(admission.transitions(), 2);
}

TEST(ServeAdmissionTest, EngineShedsDataRecordsButNeverSentinels) {
  MetricsRegistry::Global()->Reset();
  AdmissionOptions admission_options;
  admission_options.shed_depth = 1;  // shed whenever anything is queued
  admission_options.resume_depth = 0;
  AdmissionController admission(admission_options);
  ServerOptions engine_options;
  engine_options.workers = 1;
  engine_options.slow_every = 1;  // hold the worker so inflight stays up
  engine_options.slow_ms = 100;
  engine_options.admission = &admission;
  ServeEngine engine(engine_options);
  engine.AddSession(MakeInitedSession(0, 0, FastSessionOptions(1)));
  ASSERT_EQ(engine.Offer(0, 0, 0.0), AdmitResult::kAccepted);
  // The first record is still in flight: the controller sheds data...
  EXPECT_EQ(engine.Offer(0, 1, 0.0), AdmitResult::kShed);
  // ...but the sentinel is exempt, so shutdown cannot be wedged by an
  // overload that never clears.
  AdmitResult admit = engine.OfferEnd(0, 0.0);
  EXPECT_TRUE(admit == AdmitResult::kAccepted ||
              admit == AdmitResult::kFinished);
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/60.0));
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  EXPECT_GE(snap.volatile_counters.at("serve.drops_shed"), 1);
}

// ---------------------------------------------------------------------
// Bounded offer backoff (block policy)

TEST(ServeLoadGenBackoffTest, BlockPolicyBacksOffAndStillDeliversAll) {
  MetricsRegistry::Global()->Reset();
  ServerOptions engine_options;
  engine_options.workers = 1;
  engine_options.quantum = 8;
  engine_options.slow_every = 1;  // every activation sleeps, so the
  engine_options.slow_ms = 2;     // tiny rings force offer retries
  ServeEngine engine(engine_options);
  for (int64_t i = 0; i < 2; ++i) {
    SessionOptions options = FastSessionOptions(2);
    options.ring_capacity = 4;
    engine.AddSession(MakeInitedSession(i, static_cast<size_t>(i), options));
  }
  LoadGenOptions load;
  load.admission = AdmissionPolicy::kBlock;
  const LoadStats stats = RunLoadGenerator(&engine, load);
  ASSERT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/120.0));
  EXPECT_TRUE(engine.failures().empty());
  // Block policy still delivers everything...
  EXPECT_EQ(stats.accepted, stats.offered);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.shed, 0);
  // ...and the backpressure spin was bounded by counted backoff.
  const MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  const auto it = snap.volatile_counters.find("serve.offer_retries");
  ASSERT_NE(it, snap.volatile_counters.end());
  EXPECT_GT(it->second, 0);
  // Per-stream conservation under pure backpressure.
  ASSERT_EQ(stats.per_stream.size(), 2u);
  for (const StreamLoadStats& s : stats.per_stream) {
    EXPECT_EQ(s.offered, s.accepted + s.dropped + s.shed);
  }
}

// ---------------------------------------------------------------------
// oebench_serve CLI contract (exec the real binary)

const char* ServeBin() { return std::getenv("OEBENCH_SERVE_BIN"); }

int RunServeCli(const std::string& args) {
  std::string command = std::string("\"") + ServeBin() + "\" " + args +
                        " >/dev/null 2>/dev/null";
  int raw = std::system(command.c_str());
  EXPECT_NE(raw, -1);
  EXPECT_TRUE(WIFEXITED(raw)) << "signal-terminated: " << command;
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

#define SKIP_WITHOUT_SERVE_BIN()                                        \
  do {                                                                  \
    if (ServeBin() == nullptr ||                                        \
        !IoEnv::Default()->FileExists(ServeBin())) {                    \
      GTEST_SKIP() << "OEBENCH_SERVE_BIN not set / not built; run via " \
                      "ctest or the check-serve target";                \
    }                                                                   \
  } while (0)

TEST(ServeFailureCliTest, RobustnessFlagUsageErrorsExitTwo) {
  SKIP_WITHOUT_SERVE_BIN();
  EXPECT_EQ(RunServeCli("--chaos-schedule=bogus"), 2);
  // Sweep-only clauses never fire in the serve engine: strict reject.
  EXPECT_EQ(RunServeCli("--chaos-schedule=throw-at-task=1"), 2);
  EXPECT_EQ(RunServeCli("--session-attempts=0"), 2);
  EXPECT_EQ(RunServeCli("--max-session-failures=-1"), 2);
  EXPECT_EQ(RunServeCli("--allow-quarantined=1"), 2);  // takes no value
  EXPECT_EQ(RunServeCli("--session-deadline-ms=0"), 2);
  EXPECT_EQ(RunServeCli("--watchdog-ms=0"), 2);
  EXPECT_EQ(RunServeCli("--rate-drift=0.5"), 2);     // missing :T
  EXPECT_EQ(RunServeCli("--rate-drift=0:10"), 2);    // A must be > 0
  EXPECT_EQ(RunServeCli("--admission=adaptive:"), 2);
  EXPECT_EQ(RunServeCli("--admission=adaptive:0"), 2);
}

TEST(ServeFailureCliTest, QuarantineExitsOneUnlessAllowed) {
  SKIP_WITHOUT_SERVE_BIN();
  const std::string base =
      "--streams=2 --workers=2 --duration-windows=2 --scale=0 --epochs=1 "
      "--chaos-schedule=throw-at-activation=1";
  EXPECT_EQ(RunServeCli(base), 1);
  EXPECT_EQ(RunServeCli(base + " --allow-quarantined"), 0);
}

TEST(ServeFailureCliTest, BreakerExitsOneEvenWhenQuarantineAllowed) {
  SKIP_WITHOUT_SERVE_BIN();
  EXPECT_EQ(RunServeCli("--streams=2 --workers=2 --duration-windows=2 "
                        "--scale=0 --epochs=1 "
                        "--chaos-schedule=throw-at-activation=1 "
                        "--max-session-failures=0 --allow-quarantined"),
            1);
}

TEST(ServeFailureCliTest, FaultFreeRunWithRobustnessFlagsExitsZero) {
  SKIP_WITHOUT_SERVE_BIN();
  EXPECT_EQ(RunServeCli("--streams=2 --workers=2 --duration-windows=2 "
                        "--scale=0 --epochs=1 --session-deadline-ms=30000 "
                        "--watchdog-ms=30000 --max-session-failures=2 "
                        "--rate-drift=0.5:1 --admission=adaptive:50"),
            0);
}

}  // namespace
}  // namespace serve
}  // namespace oebench
