// Fault-injection and crash-recovery suite for the sharded-sweep
// durability story (ctest label: check-fault). What it enforces:
//  - the IoEnv abstraction: the default env really writes files, and
//    FaultInjectingEnv injects exactly the scheduled faults — transient
//    failures (kUnavailable) leave nothing behind, torn writes leave
//    the exact partial prefix, a crash leaves exactly its byte budget
//    on disk and kills every later operation;
//  - the shard runner's failure semantics: transient append/sync
//    failures are retried with bounded backoff and the merged outcome
//    stays bit-identical; permanent failures (ENOSPC, torn writes,
//    crashes) stop the sweep cleanly with a Status — never an abort —
//    and resume-with-compaction recovers;
//  - the crash-recovery harness: a 2-shard sweep over a mixed corpus
//    slice, crashed at every record boundary of the shard log (plus
//    mid-record torn points), always resumes + merges to the byte-exact
//    fault-free outcome. The exhaustive sweep runs when
//    OEBENCH_SLOW_TESTS=1 (the check-fault target sets it); without it
//    a fixed subset keeps the tier-1 run fast.
//  - oebench_sweep's CLI error paths: bad/duplicate flags and
//    unmergeable logs exit 2 with a diagnostic, faulted runs exit 1 and
//    recover with --resume (exec'd via OEBENCH_SWEEP_BIN).

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/io_env.h"
#include "common/status.h"
#include "common/string_util.h"
#include "core/parallel_eval.h"
#include "streamgen/corpus.h"
#include "sweep/manifest.h"
#include "sweep/merge.h"
#include "sweep/result_log.h"
#include "sweep/shard_runner.h"

namespace oebench {
namespace {

using sweep::LogHeader;
using sweep::Shard;
using sweep::TaskManifest;

bool SlowTestsEnabled() {
  return std::getenv("OEBENCH_SLOW_TESTS") != nullptr;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fault_" + name;
}

// ---------------------------------------------------------------------
// FaultSchedule parsing.

TEST(FaultScheduleTest, ParsesEveryClauseAndRoundTrips) {
  Result<FaultSchedule> parsed = FaultSchedule::Parse(
      "fail-append=3,torn-append=5:7,fail-sync=2,enospc=9,"
      "crash-at-byte=128,transient=42:0.25,fail-read=4,torn-read=6:33");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->fail_append, 3);
  EXPECT_EQ(parsed->torn_append, 5);
  EXPECT_EQ(parsed->torn_bytes, 7u);
  EXPECT_EQ(parsed->fail_sync, 2);
  EXPECT_EQ(parsed->enospc_append, 9);
  EXPECT_EQ(parsed->crash_after_bytes, 128);
  EXPECT_EQ(parsed->transient_seed, 42u);
  EXPECT_EQ(parsed->transient_p, 0.25);
  EXPECT_EQ(parsed->fail_read, 4);
  EXPECT_EQ(parsed->torn_read, 6);
  EXPECT_EQ(parsed->torn_read_bytes, 33u);
  // ToString is canonical and re-parses to the same schedule.
  Result<FaultSchedule> again = FaultSchedule::Parse(parsed->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->ToString(), parsed->ToString());

  Result<FaultSchedule> crash_only = FaultSchedule::Parse("crash-at-byte=0");
  ASSERT_TRUE(crash_only.ok());
  EXPECT_EQ(crash_only->crash_after_bytes, 0);
  EXPECT_EQ(crash_only->fail_append, 0);
}

TEST(FaultScheduleTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"bogus=1", "fail-append", "fail-append=", "=3", "fail-append=0",
        "fail-append=-2", "fail-append=x", "torn-append=3",
        "torn-append=0:4", "torn-append=3:-1", "fail-sync=0", "enospc=0",
        "crash-at-byte=-1", "crash-at-byte=zz", "transient=42",
        "transient=42:1.5", "transient=42:-0.1", "transient=-1:0.5",
        "fail-append=1,fail-append=2", "crash-at-byte=1,crash-at-byte=2",
        "fail-append=1,,fail-sync=1", "fail-read=0", "fail-read=-1",
        "torn-read=3", "torn-read=0:4", "torn-read=3:-1",
        "fail-read=1,fail-read=2"}) {
    Result<FaultSchedule> parsed = FaultSchedule::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
  }
}

// ---------------------------------------------------------------------
// The default (passthrough) environment.

TEST(IoEnvTest, DefaultEnvWritesReadsRenamesRemoves) {
  IoEnv* env = IoEnv::Default();
  ASSERT_NE(env, nullptr);
  const std::string path = TempPath("default_env.txt");
  const std::string moved = TempPath("default_env_moved.txt");
  std::remove(path.c_str());
  std::remove(moved.c_str());

  Result<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world\n").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  // Close is idempotent.
  EXPECT_TRUE((*file)->Close().ok());

  EXPECT_TRUE(env->FileExists(path));
  Result<std::string> read = env->ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello world\n");

  // Append mode continues an existing file.
  file = env->NewWritableFile(path, /*truncate=*/false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("more\n").ok());
  ASSERT_TRUE((*file)->Close().ok());
  read = env->ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello world\nmore\n");

  ASSERT_TRUE(env->RenameFile(path, moved).ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_TRUE(env->FileExists(moved));
  ASSERT_TRUE(env->RemoveFile(moved).ok());
  EXPECT_FALSE(env->FileExists(moved));

  EXPECT_FALSE(env->ReadFile(TempPath("no_such_file")).ok());
  EXPECT_FALSE(env->RemoveFile(TempPath("no_such_file")).ok());
}

// ---------------------------------------------------------------------
// FaultInjectingEnv semantics.

std::string ReadAll(const std::string& path) {
  Result<std::string> read = IoEnv::Default()->ReadFile(path);
  EXPECT_TRUE(read.ok()) << read.status().ToString();
  return read.ok() ? *read : std::string();
}

TEST(FaultInjectingEnvTest, FailAppendIsTransientAndWritesNothing) {
  FaultSchedule schedule;
  schedule.fail_append = 2;
  FaultInjectingEnv env(schedule);
  const std::string path = TempPath("transient.txt");
  Result<std::unique_ptr<WritableFile>> file =
      env.NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());

  EXPECT_TRUE((*file)->Append("one").ok());
  Status failed = (*file)->Append("two");
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  // The identical retry succeeds — that is what makes it transient.
  EXPECT_TRUE((*file)->Append("two").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadAll(path), "onetwo");
  EXPECT_EQ(env.appends(), 3);
  EXPECT_EQ(env.faults_injected(), 1);
  EXPECT_FALSE(env.crashed());
  std::remove(path.c_str());
}

TEST(FaultInjectingEnvTest, TornAppendLeavesExactPrefixAndIsPermanent) {
  FaultSchedule schedule;
  schedule.torn_append = 1;
  schedule.torn_bytes = 3;
  FaultInjectingEnv env(schedule);
  const std::string path = TempPath("torn.txt");
  Result<std::unique_ptr<WritableFile>> file =
      env.NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());

  Status torn = (*file)->Append("abcdef");
  EXPECT_EQ(torn.code(), StatusCode::kIoError);
  EXPECT_NE(torn.message().find("torn"), std::string::npos);
  // The env survives a torn write; later appends work.
  EXPECT_TRUE((*file)->Append("XYZ").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadAll(path), "abcXYZ");
  EXPECT_EQ(env.bytes_written(), 6);
  std::remove(path.c_str());
}

TEST(FaultInjectingEnvTest, EnospcIsPermanentAndWritesNothing) {
  FaultSchedule schedule;
  schedule.enospc_append = 1;
  FaultInjectingEnv env(schedule);
  const std::string path = TempPath("enospc.txt");
  Result<std::unique_ptr<WritableFile>> file =
      env.NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  Status failed = (*file)->Append("data");
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_NE(failed.message().find("no space left"), std::string::npos);
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadAll(path), "");
  EXPECT_FALSE(env.crashed());
  std::remove(path.c_str());
}

TEST(FaultInjectingEnvTest, CrashLeavesExactByteBudgetThenEverythingFails) {
  FaultSchedule schedule;
  schedule.crash_after_bytes = 5;
  FaultInjectingEnv env(schedule);
  const std::string path = TempPath("crash.txt");
  Result<std::unique_ptr<WritableFile>> file =
      env.NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());

  EXPECT_TRUE((*file)->Append("abc").ok());  // 3 of 5 bytes
  Status crashed = (*file)->Append("defg");  // would reach 7 > 5
  EXPECT_EQ(crashed.code(), StatusCode::kIoError);
  EXPECT_TRUE(env.crashed());
  EXPECT_EQ(env.bytes_written(), 5);

  // The machine is down: every operation on every file now fails.
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE((*file)->Close().ok());
  EXPECT_FALSE(env.NewWritableFile(path, false).ok());
  EXPECT_FALSE(env.ReadFile(path).ok());
  EXPECT_FALSE(env.FileExists(path));
  EXPECT_FALSE(env.RenameFile(path, path + ".x").ok());
  EXPECT_FALSE(env.RemoveFile(path).ok());

  // Exactly the budget reached the disk: "abc" + 2 bytes of "defg".
  EXPECT_EQ(ReadAll(path), "abcde");
  std::remove(path.c_str());
}

TEST(FaultInjectingEnvTest, SeededTransientFaultsAreDeterministic) {
  FaultSchedule schedule;
  schedule.transient_seed = 1234;
  schedule.transient_p = 0.3;
  std::vector<bool> first_pattern;
  for (int round = 0; round < 2; ++round) {
    FaultInjectingEnv env(schedule);
    const std::string path = TempPath("seeded.txt");
    Result<std::unique_ptr<WritableFile>> file =
        env.NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    std::vector<bool> pattern;
    int64_t faults = 0;
    for (int i = 0; i < 64; ++i) {
      Status status = (*file)->Append("x");
      pattern.push_back(status.ok());
      if (!status.ok()) {
        ++faults;
        EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      }
    }
    EXPECT_GT(faults, 0);
    EXPECT_LT(faults, 64);
    EXPECT_EQ(env.faults_injected(), faults);
    if (round == 0) {
      first_pattern = pattern;
    } else {
      EXPECT_EQ(pattern, first_pattern);
    }
    std::remove(path.c_str());
  }
}

TEST(FaultInjectingEnvTest, FailReadFailsNthReadNamingThePath) {
  const std::string path = TempPath("fail_read.txt");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<WritableFile>> file =
        IoEnv::Default()->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("some bytes\n").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  FaultSchedule schedule;
  schedule.fail_read = 2;
  FaultInjectingEnv env(schedule);
  EXPECT_TRUE(env.ReadFile(path).ok());  // read #1: clean
  Result<std::string> failed = env.ReadFile(path);  // read #2: poisoned
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  EXPECT_NE(failed.status().message().find(path), std::string::npos);
  EXPECT_NE(failed.status().message().find("read #2"), std::string::npos);
  // One poisoned block, not a dead disk: the next read works again.
  EXPECT_TRUE(env.ReadFile(path).ok());
  EXPECT_EQ(env.reads(), 3);
  EXPECT_EQ(env.faults_injected(), 1);
  std::remove(path.c_str());
}

TEST(FaultInjectingEnvTest, TornReadServesExactPrefixThenCleanEof) {
  const std::string path = TempPath("torn_read.txt");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<WritableFile>> file =
        IoEnv::Default()->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("abcdefghij").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  FaultSchedule schedule;
  schedule.torn_read = 1;
  schedule.torn_read_bytes = 4;
  {
    // ReadFile: silently truncated — the read *succeeds*; catching the
    // missing tail is the log reader's job, not the env's.
    FaultInjectingEnv env(schedule);
    Result<std::string> read = env.ReadFile(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(*read, "abcd");
    EXPECT_EQ(env.faults_injected(), 1);
  }
  {
    // NewReadableFile: the chunked path caps the cumulative bytes and
    // then reports a clean end of file.
    FaultInjectingEnv env(schedule);
    Result<std::unique_ptr<ReadableFile>> file = env.NewReadableFile(path);
    ASSERT_TRUE(file.ok());
    std::string all, chunk;
    for (;;) {
      ASSERT_TRUE((*file)->Read(3, &chunk).ok());
      if (chunk.empty()) break;
      all += chunk;
    }
    EXPECT_EQ(all, "abcd");
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Shard runner under faults: retry, clean failure, recovery.

std::vector<CorpusEntry> MixedEntries(int per_task) {
  std::vector<CorpusEntry> out;
  int cls = 0;
  int reg = 0;
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.task == TaskType::kClassification && cls < per_task) {
      out.push_back(entry);
      ++cls;
    } else if (entry.task == TaskType::kRegression && reg < per_task) {
      out.push_back(entry);
      ++reg;
    }
  }
  return out;
}

SweepConfig FastConfig(int threads) {
  SweepConfig config;
  config.base_config.seed = 42;
  config.base_config.epochs = 2;
  config.base_config.hidden_sizes = {8};
  config.base_config.tree_max_depth = 6;
  config.base_config.ensemble_size = 3;
  config.repeats = 2;
  config.threads = threads;
  config.scale = 0.0;
  config.pipeline.imputer = "mean";
  return config;
}

sweep::ShardRunOptions FaultOptions(const SweepConfig& config,
                                    const Shard& shard,
                                    const std::string& log_path,
                                    IoEnv* env) {
  sweep::ShardRunOptions options;
  options.config = config;
  options.shard = shard;
  options.log_path = log_path;
  options.env = env;
  options.retry.initial_backoff_ms = 0;  // no real sleeping in tests
  return options;
}

TEST(ShardRunnerFaultTest, TransientFaultsAreRetriedAndMergeBitIdentical) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  ASSERT_EQ(entries.size(), 2u);
  // Naive-Bayes is N/A on the regression entry: the N/A logging path
  // goes through the retry sink too.
  const std::vector<std::string> learners = {"Naive-DT", "Naive-Bayes"};
  SweepConfig config = FastConfig(2);
  const std::string expected =
      sweep::DumpOutcome(ParallelSweepEntries(entries, learners, config));
  TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);

  // Append #3 fails transiently (retried, nothing written) and sync #2
  // fails transiently (retried: the whole row is appended again, so the
  // log gains a bit-identical duplicate the merge must tolerate).
  FaultSchedule schedule;
  schedule.fail_append = 3;
  schedule.fail_sync = 2;
  FaultInjectingEnv env(schedule);
  const std::string path = TempPath("retry_shard.log");
  std::remove(path.c_str());
  Result<sweep::ShardRunStats> stats = sweep::RunCorpusShard(
      entries, learners, FaultOptions(config, Shard{0, 1}, path, &env));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->append_retries, 2);
  EXPECT_EQ(env.faults_injected(), 2);

  Result<SweepOutcome> merged = sweep::MergeShardLogs(
      manifest, sweep::MakeLogHeader(manifest, config, Shard{}), {path});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(sweep::DumpOutcome(*merged), expected);
  std::remove(path.c_str());
}

TEST(ShardRunnerFaultTest, ExhaustedRetriesFailCleanly) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT"};
  SweepConfig config = FastConfig(1);

  // Every append fails transiently: the bounded retry gives up and the
  // run reports the kUnavailable status instead of spinning forever.
  FaultSchedule schedule;
  schedule.transient_seed = 7;
  schedule.transient_p = 1.0;
  FaultInjectingEnv env(schedule);
  const std::string path = TempPath("exhausted_shard.log");
  std::remove(path.c_str());
  Result<sweep::ShardRunStats> stats = sweep::RunCorpusShard(
      entries, learners, FaultOptions(config, Shard{0, 1}, path, &env));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(ShardRunnerFaultTest, EnospcStopsTheSweepWithAStatusNotAnAbort) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT"};
  SweepConfig config = FastConfig(2);

  // Append #3 = the second task row; the sweep must stop early and
  // surface the injected error verbatim in the returned Status.
  FaultSchedule schedule;
  schedule.enospc_append = 3;
  FaultInjectingEnv env(schedule);
  const std::string path = TempPath("enospc_shard.log");
  std::remove(path.c_str());
  Result<sweep::ShardRunStats> stats = sweep::RunCorpusShard(
      entries, learners, FaultOptions(config, Shard{0, 1}, path, &env));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
  EXPECT_NE(stats.status().message().find("no space left"),
            std::string::npos);
  EXPECT_NE(stats.status().message().find("failed permanently"),
            std::string::npos);

  // Recovery: resume with a healthy environment completes the shard
  // and merges bit-identically to the fault-free sweep.
  sweep::ShardRunOptions recover =
      FaultOptions(config, Shard{0, 1}, path, nullptr);
  recover.resume = true;
  Result<sweep::ShardRunStats> resumed =
      sweep::RunCorpusShard(entries, learners, recover);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);
  Result<SweepOutcome> merged = sweep::MergeShardLogs(
      manifest, sweep::MakeLogHeader(manifest, config, Shard{}), {path});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(sweep::DumpOutcome(*merged),
            sweep::DumpOutcome(ParallelSweepEntries(entries, learners,
                                                    config)));
  std::remove(path.c_str());
}

TEST(ShardRunnerFaultTest, TornWriteFailsThenResumeCompactsAndRecovers) {
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT", "Naive-GBDT"};
  SweepConfig config = FastConfig(1);  // serial: append order is fixed

  // Append #2 = the first task row, torn after 5 bytes. Torn writes
  // are permanent — a blind retry would corrupt the line — so the run
  // must fail and leave a torn tail for resume to compact away.
  FaultSchedule schedule;
  schedule.torn_append = 2;
  schedule.torn_bytes = 5;
  FaultInjectingEnv env(schedule);
  const std::string path = TempPath("torn_shard.log");
  std::remove(path.c_str());
  Result<sweep::ShardRunStats> stats = sweep::RunCorpusShard(
      entries, learners, FaultOptions(config, Shard{0, 1}, path, &env));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
  EXPECT_NE(stats.status().message().find("torn"), std::string::npos);

  // The log really is torn: header + 5 bytes of a row, no newline.
  Result<sweep::ResultLogContents> contents = sweep::ReadResultLog(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->rows.size(), 0u);
  EXPECT_EQ(contents->dropped_lines, 1);

  sweep::ShardRunOptions recover =
      FaultOptions(config, Shard{0, 1}, path, nullptr);
  recover.resume = true;
  Result<sweep::ShardRunStats> resumed =
      sweep::RunCorpusShard(entries, learners, recover);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->tasks_resumed, 0);

  TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);
  Result<SweepOutcome> merged = sweep::MergeShardLogs(
      manifest, sweep::MakeLogHeader(manifest, config, Shard{}), {path});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(sweep::DumpOutcome(*merged),
            sweep::DumpOutcome(ParallelSweepEntries(entries, learners,
                                                    config)));
  std::remove(path.c_str());
}

TEST(ShardRunnerFaultTest, ReadFaultsFailMergeAndResumeCleanly) {
  // Read-path faults: a poisoned block (fail-read) or a silently
  // truncated log (torn-read) under a merge or a resume must yield a
  // Status naming the bad log — never an abort, never silent data loss.
  const std::vector<CorpusEntry> entries = MixedEntries(1);
  const std::vector<std::string> learners = {"Naive-DT"};
  SweepConfig config = FastConfig(1);
  TaskManifest manifest =
      sweep::EntriesManifest(entries, learners, config.repeats);
  LogHeader header = sweep::MakeLogHeader(manifest, config, Shard{});

  std::vector<std::string> logs;
  for (int i = 0; i < 2; ++i) {
    logs.push_back(TempPath(StrFormat("read_fault_%d.log", i)));
    std::remove(logs.back().c_str());
    Result<sweep::ShardRunStats> stats = sweep::RunCorpusShard(
        entries, learners,
        FaultOptions(config, Shard{i, 2}, logs.back(), nullptr));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  ASSERT_TRUE(sweep::MergeShardLogs(manifest, header, logs).ok());

  {
    // Read #2 = the second log: the merge fails naming exactly it.
    FaultSchedule schedule;
    schedule.fail_read = 2;
    FaultInjectingEnv env(schedule);
    Result<SweepOutcome> merged =
        sweep::MergeShardLogs(manifest, header, logs, &env);
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.status().code(), StatusCode::kIoError);
    EXPECT_NE(merged.status().message().find(logs[1]), std::string::npos);
  }
  {
    // The second log served 3 bytes short: its final row is torn, and
    // the merge refuses it (resume would compact and re-run the task)
    // rather than silently merging a partial shard.
    Result<std::string> bytes = IoEnv::Default()->ReadFile(logs[1]);
    ASSERT_TRUE(bytes.ok());
    FaultSchedule schedule;
    schedule.torn_read = 2;
    schedule.torn_read_bytes = bytes->size() - 3;
    FaultInjectingEnv env(schedule);
    Result<SweepOutcome> merged =
        sweep::MergeShardLogs(manifest, header, logs, &env);
    ASSERT_FALSE(merged.ok());
    EXPECT_NE(merged.status().message().find(logs[1]), std::string::npos);
    EXPECT_NE(merged.status().message().find("resume the shard"),
              std::string::npos);
  }
  {
    // Resume reads the log it is about to compact — a read fault there
    // fails the shard run cleanly before any work is lost.
    FaultSchedule schedule;
    schedule.fail_read = 1;
    FaultInjectingEnv env(schedule);
    sweep::ShardRunOptions options =
        FaultOptions(config, Shard{0, 2}, logs[0], &env);
    options.resume = true;
    Result<sweep::ShardRunStats> resumed =
        sweep::RunCorpusShard(entries, learners, options);
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kIoError);
    EXPECT_NE(resumed.status().message().find(logs[0]), std::string::npos);
  }
  for (const std::string& log : logs) std::remove(log.c_str());
}

// ---------------------------------------------------------------------
// The crash-recovery harness. One fault-free 2-shard run fixes the
// shard-0 log's bytes (threads=1 => canonical append order, one env
// append per record => file offsets ARE crash offsets); then the same
// shard is re-run with a crash injected at chosen byte offsets, resumed
// with a healthy env, and merged with the untouched shard-1 log. Every
// crash point must reproduce the fault-free outcome bit-identically.

struct CrashHarness {
  std::vector<CorpusEntry> entries;
  std::vector<std::string> learners;
  SweepConfig config;
  TaskManifest manifest;
  LogHeader merge_header;
  std::string expected_dump;   // unsharded fault-free baseline
  std::string clean_log1;      // shard 1/2, fault-free, reused as-is
  std::string reference_text;  // shard 0/2 fault-free log bytes
};

CrashHarness BuildCrashHarness() {
  CrashHarness h;
  h.entries = MixedEntries(2);  // 4 datasets: 2 classification, 2 regression
  EXPECT_EQ(h.entries.size(), 4u);
  // Naive-Bayes is N/A on the regression entries => N/A rows land in
  // the logs and sit between crash points like any other record.
  h.learners = {"Naive-DT", "Naive-GBDT", "Naive-Bayes"};
  h.config = FastConfig(1);
  h.manifest = sweep::EntriesManifest(h.entries, h.learners,
                                      h.config.repeats);
  h.merge_header = sweep::MakeLogHeader(h.manifest, h.config, Shard{});
  h.expected_dump = sweep::DumpOutcome(
      ParallelSweepEntries(h.entries, h.learners, h.config));

  h.clean_log1 = TempPath("crash_shard1.log");
  std::remove(h.clean_log1.c_str());
  Result<sweep::ShardRunStats> shard1 = sweep::RunCorpusShard(
      h.entries, h.learners,
      FaultOptions(h.config, Shard{1, 2}, h.clean_log1, nullptr));
  EXPECT_TRUE(shard1.ok()) << shard1.status().ToString();

  const std::string reference = TempPath("crash_shard0_ref.log");
  std::remove(reference.c_str());
  Result<sweep::ShardRunStats> shard0 = sweep::RunCorpusShard(
      h.entries, h.learners,
      FaultOptions(h.config, Shard{0, 2}, reference, nullptr));
  EXPECT_TRUE(shard0.ok()) << shard0.status().ToString();
  h.reference_text = ReadAll(reference);
  EXPECT_FALSE(h.reference_text.empty());
  std::remove(reference.c_str());
  return h;
}

void CleanupCrashHarness(const CrashHarness& h) {
  std::remove(h.clean_log1.c_str());
}

/// Every byte offset just after a newline (plus offset 0) — the record
/// boundaries a real crash can land on. The header is appended as one
/// block, so its interior newlines model a crash mid-header.
std::vector<int64_t> RecordBoundaries(const std::string& text) {
  std::vector<int64_t> out;
  out.push_back(0);
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') out.push_back(static_cast<int64_t>(i) + 1);
  }
  return out;
}

/// Crashes shard 0 at byte `crash_at`, resumes it with a healthy env,
/// merges with the clean shard-1 log and demands the fault-free dump.
void RunCrashPoint(const CrashHarness& h, int64_t crash_at) {
  SCOPED_TRACE("crash_at=" + std::to_string(crash_at));
  const int64_t total = static_cast<int64_t>(h.reference_text.size());
  const std::string path = TempPath("crash_shard0.log");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  FaultSchedule schedule;
  schedule.crash_after_bytes = crash_at;
  FaultInjectingEnv env(schedule);
  Result<sweep::ShardRunStats> crashed = sweep::RunCorpusShard(
      h.entries, h.learners,
      FaultOptions(h.config, Shard{0, 2}, path, &env));
  if (crash_at < total) {
    EXPECT_FALSE(crashed.ok());
    EXPECT_TRUE(env.crashed());
    // Exactly the byte budget reached the "disk" (crashes before the
    // header rename leave no log at all). Byte offsets are comparable
    // across executions because every field has a fixed width — the
    // wall-clock fields' *values* differ run to run, their lengths
    // never do.
    if (IoEnv::Default()->FileExists(path)) {
      std::string left = ReadAll(path);
      EXPECT_EQ(static_cast<int64_t>(left.size()), crash_at);
    }
  } else {
    // Budget >= the whole log: the run completes without crashing.
    EXPECT_TRUE(crashed.ok()) << crashed.status().ToString();
  }

  sweep::ShardRunOptions recover =
      FaultOptions(h.config, Shard{0, 2}, path, nullptr);
  recover.resume = true;
  Result<sweep::ShardRunStats> resumed =
      sweep::RunCorpusShard(h.entries, h.learners, recover);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->tasks_executed + resumed->tasks_resumed +
                resumed->na_logged,
            resumed->shard_tasks);

  Result<SweepOutcome> merged = sweep::MergeShardLogs(
      h.manifest, h.merge_header, {path, h.clean_log1});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(sweep::DumpOutcome(*merged), h.expected_dump);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

/// Mid-record offsets: 3 distinct torn points inside the first, middle
/// and last row records after the header block.
std::vector<int64_t> MidRecordPoints(const std::vector<int64_t>& boundaries,
                                     int64_t total) {
  // Midpoints of actual records: the final boundary sits at EOF (the
  // log ends in '\n'), so spans come from consecutive boundary pairs.
  std::vector<int64_t> midpoints;
  for (size_t b = 0; b < boundaries.size(); ++b) {
    int64_t begin = boundaries[b];
    int64_t end = b + 1 < boundaries.size() ? boundaries[b + 1] : total;
    if (end - begin >= 2) midpoints.push_back(begin + (end - begin) / 2);
  }
  std::vector<int64_t> out;
  if (midpoints.size() < 3) return midpoints;
  size_t n = midpoints.size();
  for (size_t i : {n / 3, n / 2, n - 1}) {
    if (out.empty() || out.back() != midpoints[i]) out.push_back(midpoints[i]);
  }
  return out;
}

TEST(CrashRecoveryTest, SmokeSubsetOfCrashPoints) {
  CrashHarness h = BuildCrashHarness();
  std::vector<int64_t> boundaries = RecordBoundaries(h.reference_text);
  const int64_t total = static_cast<int64_t>(h.reference_text.size());
  ASSERT_GE(boundaries.size(), 4u);
  // First, one middle and last boundary, plus one mid-record torn
  // point — enough to keep the contract honest in every tier-1 run.
  RunCrashPoint(h, boundaries.front());
  RunCrashPoint(h, boundaries[boundaries.size() / 2]);
  RunCrashPoint(h, boundaries.back());
  std::vector<int64_t> torn = MidRecordPoints(boundaries, total);
  ASSERT_FALSE(torn.empty());
  RunCrashPoint(h, torn.front());
  CleanupCrashHarness(h);
}

TEST(CrashRecoveryTest, EveryRecordBoundaryAndTornPointRecovers) {
  if (!SlowTestsEnabled()) {
    GTEST_SKIP() << "set OEBENCH_SLOW_TESTS=1 (or run the check-fault "
                    "target) for the exhaustive crash-point sweep";
  }
  CrashHarness h = BuildCrashHarness();
  std::vector<int64_t> boundaries = RecordBoundaries(h.reference_text);
  const int64_t total = static_cast<int64_t>(h.reference_text.size());
  // Every record boundary — including 0 (crash before anything) and
  // the full size (no crash at all) — must recover bit-identically.
  for (int64_t boundary : boundaries) RunCrashPoint(h, boundary);
  std::vector<int64_t> torn = MidRecordPoints(boundaries, total);
  ASSERT_GE(torn.size(), 3u);
  for (int64_t point : torn) RunCrashPoint(h, point);
  CleanupCrashHarness(h);
}

// ---------------------------------------------------------------------
// CLI flag validation (in-process death tests).

bench::BenchFlags Parse(std::vector<std::string> args) {
  std::vector<std::string> storage;
  storage.emplace_back("bench_under_test");
  for (std::string& arg : args) storage.push_back(std::move(arg));
  std::vector<char*> argv;
  for (std::string& arg : storage) argv.push_back(arg.data());
  return bench::ParseFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(FaultFlagsTest, FaultScheduleFlagParses) {
  // --log is required: faults are injected into the result log's I/O
  // environment, so a schedule without a log is a usage error.
  bench::BenchFlags flags = Parse(
      {"--fault-schedule=crash-at-byte=64,fail-sync=1", "--log=x.log"});
  EXPECT_EQ(flags.fault_schedule, "crash-at-byte=64,fail-sync=1");
  EXPECT_TRUE(Parse({}).fault_schedule.empty());
}

TEST(FaultFlagsDeathTest, RejectsBadFaultScheduleDuplicateShardAndLogs) {
  EXPECT_EXIT(Parse({"--fault-schedule=bogus"}),
              ::testing::ExitedWithCode(2),
              "--fault-schedule: bad fault clause");
  EXPECT_EXIT(Parse({"--fault-schedule=fail-append=0"}),
              ::testing::ExitedWithCode(2), "fail-append needs N >= 1");
  EXPECT_EXIT(Parse({"--shard=0/2", "--shard=1/2"}),
              ::testing::ExitedWithCode(2), "duplicate --shard");
  EXPECT_EXIT(Parse({"--merge", "a.log", "b.log", "a.log"}),
              ::testing::ExitedWithCode(2), "lists 'a.log' twice");
  EXPECT_EXIT(Parse({"--merge=a.log", "a.log"}),
              ::testing::ExitedWithCode(2), "lists 'a.log' twice");
}

// ---------------------------------------------------------------------
// oebench_sweep end-to-end error paths: exec the real binary.

const char* SweepBin() { return std::getenv("OEBENCH_SWEEP_BIN"); }

int RunSweepCli(const std::string& args) {
  std::string command = std::string("\"") + SweepBin() + "\" " + args +
                        " >/dev/null 2>/dev/null";
  int raw = std::system(command.c_str());
  EXPECT_NE(raw, -1);
  EXPECT_TRUE(WIFEXITED(raw)) << "signal-terminated: " << command;
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

#define SKIP_WITHOUT_SWEEP_BIN()                                       \
  do {                                                                 \
    if (SweepBin() == nullptr ||                                       \
        !IoEnv::Default()->FileExists(SweepBin())) {                   \
      GTEST_SKIP() << "OEBENCH_SWEEP_BIN not set / not built; run via " \
                      "ctest or the check-fault target";               \
    }                                                                  \
  } while (0)

TEST(SweepCliTest, UsageErrorsExitTwo) {
  SKIP_WITHOUT_SWEEP_BIN();
  EXPECT_EQ(RunSweepCli("--fault-schedule=bogus"), 2);
  EXPECT_EQ(RunSweepCli("--shard=0/2 --shard=1/2"), 2);
  EXPECT_EQ(RunSweepCli("--merge a.log b.log a.log"), 2);
  EXPECT_EQ(RunSweepCli("--no-such-flag"), 2);
}

TEST(SweepCliTest, UnreadableMergeLogExitsTwo) {
  SKIP_WITHOUT_SWEEP_BIN();
  EXPECT_EQ(RunSweepCli("--merge " + TempPath("does_not_exist.log")), 2);
}

TEST(SweepCliTest, FaultedRunExitsOneThenResumeAndMergeRecover) {
  SKIP_WITHOUT_SWEEP_BIN();
  const std::string log = TempPath("cli_crash.log");
  std::remove(log.c_str());
  std::remove((log + ".tmp").c_str());
  const std::string base =
      "--datasets=2 --repeats=1 --epochs=1 --scale=0 --threads=1 "
      "--seed=3 --shard=0/1 --log=\"" + log + "\"";

  // Crash after 400 bytes: past the header, inside the row stream.
  EXPECT_EQ(RunSweepCli(base + " --fault-schedule=crash-at-byte=400"), 1);
  // Resume with healthy I/O completes the shard...
  EXPECT_EQ(RunSweepCli(base + " --resume"), 0);
  // ...and the log merges into a full table with matching flags.
  EXPECT_EQ(RunSweepCli("--datasets=2 --repeats=1 --epochs=1 --scale=0 "
                        "--seed=3 --merge \"" + log + "\""),
            0);
  // A merge with mismatched sweep flags must be rejected (exit 2):
  // the log's header pins seed/scale/repeats/epochs/manifest.
  EXPECT_EQ(RunSweepCli("--datasets=2 --repeats=1 --epochs=1 --scale=0 "
                        "--seed=4 --merge \"" + log + "\""),
            2);
  EXPECT_EQ(RunSweepCli("--datasets=3 --repeats=1 --epochs=1 --scale=0 "
                        "--seed=3 --merge \"" + log + "\""),
            2);
  std::remove(log.c_str());
  std::remove((log + ".tmp").c_str());
}

}  // namespace
}  // namespace oebench
