// Parameterised sweep over all 55 corpus entries: every spec must
// generate, preprocess and profile without error at tiny scale, and the
// realised open-environment statistics must be ordered consistently with
// the qualitative levels the corpus assigns (High-missing entries show
// more missing cells than Low-missing ones, etc.).

#include <gtest/gtest.h>

#include <cmath>

#include "preprocess/pipeline.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

class CorpusEntryTest : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(CorpusEntryTest, GeneratesAndPreparesCleanly) {
  const CorpusEntry& entry = GetParam();
  StreamSpec spec = SpecFromEntry(entry, 0.0);  // clamps to 1200 rows
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok()) << entry.name << ": "
                           << stream.status().ToString();
  EXPECT_EQ(stream->table.num_rows(), spec.num_instances);
  // Feature count honoured (numeric + categorical + target).
  EXPECT_EQ(stream->table.num_columns(),
            entry.features + entry.categorical_features + 1);

  PipelineOptions options;
  options.imputer = "mean";  // cheap; this sweep is about robustness
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  ASSERT_TRUE(prepared.ok()) << entry.name << ": "
                             << prepared.status().ToString();
  EXPECT_GE(prepared->windows.size(), 20u) << entry.name;
  for (const WindowData& window : prepared->windows) {
    ASSERT_EQ(window.features.rows(),
              static_cast<int64_t>(window.targets.size()));
    for (double v : window.features.data()) {
      ASSERT_TRUE(std::isfinite(v)) << entry.name;
    }
    if (entry.task == TaskType::kClassification) {
      for (double t : window.targets) {
        ASSERT_GE(static_cast<int>(t), 0) << entry.name;
        ASSERT_LT(static_cast<int>(t), entry.classes) << entry.name;
      }
    }
  }
}

TEST_P(CorpusEntryTest, MissingLevelIsRealised) {
  const CorpusEntry& entry = GetParam();
  StreamSpec spec = SpecFromEntry(entry, 0.0);
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  Table::MissingStats stats = stream->table.ComputeMissingStats();
  switch (entry.missing) {
    case Level::kLow:
      EXPECT_LT(stats.cell_ratio, 0.02) << entry.name;
      break;
    case Level::kMedLow:
      EXPECT_GT(stats.cell_ratio, 0.005) << entry.name;
      EXPECT_LT(stats.cell_ratio, 0.06) << entry.name;
      break;
    case Level::kMedHigh:
      EXPECT_GT(stats.cell_ratio, 0.02) << entry.name;
      EXPECT_LT(stats.cell_ratio, 0.12) << entry.name;
      break;
    case Level::kHigh:
      EXPECT_GT(stats.cell_ratio, 0.08) << entry.name;
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All55, CorpusEntryTest, ::testing::ValuesIn(Corpus()),
    [](const ::testing::TestParamInfo<CorpusEntry>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace oebench
