// The serve acceptance property: with a deterministic schedule and no
// drops (block admission), per-stream serve outputs are bit-identical to
// batch RunPrequential on the same prepared stream — for --workers=1,
// --workers=4, workers=4 with the chaos-slow scheduler knob on, and
// record-batch admission at several --batch-records sizes.
// Result dumps use sweep::EncodeDouble (16-hex IEEE-754), so "equal"
// means equal to the last bit, not within a tolerance.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/session.h"
#include "streamgen/corpus.h"
#include "streamgen/stream_generator.h"
#include "sweep/result_log.h"

namespace oebench {
namespace serve {
namespace {

struct EquivCase {
  size_t corpus_index;
  std::string learner;
};

// A small mix across the corpus: different tasks/shapes, the two learner
// families the driver's --learner=mix uses, plus the NN path.
std::vector<EquivCase> Cases() {
  return {
      {0, "Naive-DT"},
      {20, "Naive-GBDT"},
      {40, "Naive-NN"},
  };
}

constexpr size_t kMaxWindows = 3;

std::shared_ptr<const GeneratedStream> MakeStream(size_t corpus_index,
                                                  uint64_t salt) {
  const CorpusEntry& entry = Corpus()[corpus_index];
  StreamSpec spec = SpecFromEntry(entry, /*scale=*/0.0, salt);
  Result<GeneratedStream> stream = GenerateStream(spec);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return std::make_shared<const GeneratedStream>(std::move(*stream));
}

SessionOptions OptionsForCase(const EquivCase& equiv_case, int64_t id) {
  SessionOptions options;
  options.max_windows = kMaxWindows;
  options.learner = equiv_case.learner;
  options.learner_config.epochs = 1;
  options.learner_config.seed = 1 + static_cast<int>(id);
  return options;
}

std::string DumpEval(const EvalResult& result) {
  std::string out = result.learner + "|" + result.dataset + "|" +
                    std::to_string(result.items_processed) + "|" +
                    std::to_string(result.peak_memory_bytes) + "|" +
                    sweep::EncodeDouble(result.mean_loss) + "|" +
                    sweep::EncodeDouble(result.faded_loss) + "|";
  for (size_t i = 0; i < result.per_window_loss.size(); ++i) {
    if (i > 0) out += ",";
    out += sweep::EncodeDouble(result.per_window_loss[i]);
  }
  return out;
}

// The batch side of the differential: PrepareStream + truncate +
// RunPrequential, exactly what the serve path must reproduce.
std::vector<std::string> BatchDumps(
    const std::vector<std::shared_ptr<const GeneratedStream>>& streams) {
  std::vector<std::string> dumps;
  const std::vector<EquivCase> cases = Cases();
  for (size_t i = 0; i < streams.size(); ++i) {
    const SessionOptions options =
        OptionsForCase(cases[i], static_cast<int64_t>(i));
    Result<PreparedStream> prepared =
        PrepareStream(*streams[i], options.pipeline);
    EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
    if (prepared->windows.size() > kMaxWindows) {
      prepared->windows.resize(kMaxWindows);
      prepared->ranges.resize(kMaxWindows);
    }
    Result<std::unique_ptr<StreamLearner>> learner =
        MakeLearner(options.learner, options.learner_config,
                    prepared->task, prepared->num_classes);
    EXPECT_TRUE(learner.ok()) << learner.status().ToString();
    dumps.push_back(DumpEval(RunPrequential(learner->get(), *prepared)));
  }
  return dumps;
}

// The serve side: full engine + seeded load generator, block admission
// (the determinism contract holds when nothing is dropped).
std::vector<std::string> ServeDumps(
    const std::vector<std::shared_ptr<const GeneratedStream>>& streams,
    int workers, int64_t slow_every, int64_t slow_ms,
    int64_t batch_records = 1) {
  ServerOptions engine_options;
  engine_options.workers = workers;
  engine_options.quantum = 16;
  engine_options.slow_every = slow_every;
  engine_options.slow_ms = slow_ms;
  ServeEngine engine(engine_options);
  const std::vector<EquivCase> cases = Cases();
  for (size_t i = 0; i < streams.size(); ++i) {
    auto session = std::make_unique<StreamSession>(
        static_cast<int64_t>(i), streams[i],
        OptionsForCase(cases[i], static_cast<int64_t>(i)));
    EXPECT_TRUE(session->Init().ok());
    engine.AddSession(std::move(session));
  }
  LoadGenOptions load;
  load.seed = 7;
  load.producers = 2;
  load.admission = AdmissionPolicy::kBlock;
  load.batch_records = batch_records;
  const LoadStats stats = RunLoadGenerator(&engine, load);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_TRUE(engine.WaitAllFinished(/*timeout_seconds=*/300.0));
  EXPECT_TRUE(engine.failures().empty())
      << FormatSessionFailureReport(engine.failures());
  std::vector<std::string> dumps;
  for (size_t i = 0; i < engine.num_sessions(); ++i) {
    EXPECT_TRUE(engine.session(i)->finished());
    EXPECT_EQ(engine.session(i)->windows_lost(), 0);
    dumps.push_back(DumpEval(engine.session(i)->result()));
  }
  return dumps;
}

class ServeEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::vector<EquivCase> cases = Cases();
    for (size_t i = 0; i < cases.size(); ++i) {
      streams_.push_back(
          MakeStream(cases[i].corpus_index, static_cast<uint64_t>(i)));
    }
    batch_ = BatchDumps(streams_);
    ASSERT_EQ(batch_.size(), streams_.size());
    for (const std::string& dump : batch_) {
      ASSERT_FALSE(dump.empty());
    }
  }

  void ExpectMatchesBatch(const std::vector<std::string>& serve_dumps,
                          const std::string& variant) {
    ASSERT_EQ(serve_dumps.size(), batch_.size());
    for (size_t i = 0; i < batch_.size(); ++i) {
      EXPECT_EQ(serve_dumps[i], batch_[i])
          << variant << ": stream " << i << " ("
          << Cases()[i].learner << ") diverged from batch";
    }
  }

  std::vector<std::shared_ptr<const GeneratedStream>> streams_;
  std::vector<std::string> batch_;
};

TEST_F(ServeEquivalenceTest, SingleWorkerMatchesBatch) {
  ExpectMatchesBatch(ServeDumps(streams_, /*workers=*/1,
                                /*slow_every=*/0, /*slow_ms=*/0),
                     "workers=1");
}

TEST_F(ServeEquivalenceTest, FourWorkersMatchBatch) {
  ExpectMatchesBatch(ServeDumps(streams_, /*workers=*/4,
                                /*slow_every=*/0, /*slow_ms=*/0),
                     "workers=4");
}

TEST_F(ServeEquivalenceTest, FourWorkersWithChaosSlowMatchBatch) {
  // The chaos knob stalls every 3rd activation: cross-stream
  // interleaving shifts arbitrarily, within-stream order must not.
  ExpectMatchesBatch(ServeDumps(streams_, /*workers=*/4,
                                /*slow_every=*/3, /*slow_ms=*/2),
                     "workers=4 chaos-slow=3:2");
}

// Two serve runs with the same seed must agree with each other (and,
// transitively via the fixtures above, with batch) — the load schedule
// is a pure function of the seed.
// Record-batch admission (ISSUE: --batch-records) must be invisible to
// the bit-identity contract: batches are contiguous per-stream runs, so
// the delivered record sequence — and every served output — is
// batch-size independent under block admission.
TEST_F(ServeEquivalenceTest, BatchedAdmissionMatchesBatchAnySize) {
  for (int64_t batch_records : {4, 64}) {
    for (int workers : {1, 4}) {
      ExpectMatchesBatch(
          ServeDumps(streams_, workers, /*slow_every=*/0, /*slow_ms=*/0,
                     batch_records),
          "batch_records=" + std::to_string(batch_records) +
              " workers=" + std::to_string(workers));
    }
  }
}

TEST_F(ServeEquivalenceTest, BatchedAdmissionSurvivesChaosSlow) {
  ExpectMatchesBatch(ServeDumps(streams_, /*workers=*/4,
                                /*slow_every=*/3, /*slow_ms=*/2,
                                /*batch_records=*/16),
                     "batch_records=16 workers=4 chaos-slow=3:2");
}

TEST_F(ServeEquivalenceTest, RepeatRunsAreBitIdentical) {
  const std::vector<std::string> first =
      ServeDumps(streams_, /*workers=*/4, /*slow_every=*/0,
                 /*slow_ms=*/0);
  const std::vector<std::string> second =
      ServeDumps(streams_, /*workers=*/4, /*slow_every=*/0,
                 /*slow_ms=*/0);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace serve
}  // namespace oebench

