#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace oebench {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("must be positive");
  return v;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 4);

  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

Status UsesAssignOrReturn(int v, int* out) {
  OE_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(UsesAssignOrReturn(-7, &out).ok());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.2x", &v));
}

TEST(StringUtilTest, MissingMarkers) {
  EXPECT_TRUE(IsMissingMarker(""));
  EXPECT_TRUE(IsMissingMarker("NA"));
  EXPECT_TRUE(IsMissingMarker(" nan "));
  EXPECT_TRUE(IsMissingMarker("?"));
  EXPECT_FALSE(IsMissingMarker("0"));
  EXPECT_FALSE(IsMissingMarker("x"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

TEST(RngTest, Deterministic) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(2);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  std::vector<int64_t> sample = rng.SampleWithoutReplacement(100, 30);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(4);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<size_t>(rng.Categorical(weights))];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, PoissonMean) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(6.0);
  EXPECT_NEAR(sum / n, 6.0, 0.1);
}

}  // namespace
}  // namespace oebench
