#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.h"
#include "core/recommendation.h"
#include "core/selection.h"
#include "stats/profile.h"
#include "streamgen/corpus.h"
#include "streamgen/representative.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

/// End-to-end mini OEBench: generate a small corpus slice, profile it,
/// select representatives, evaluate learners, derive a recommendation.
TEST(IntegrationTest, MiniPipelineEndToEnd) {
  // Six diverse corpus entries, tiny scale for test speed.
  std::vector<std::string> picks = {
      "room_occupancy",     "electricity_prices", "insects_gradual_bal",
      "beijing_air_shunyi", "tetouan_power",      "safe_driver"};
  std::vector<DatasetProfile> profiles;
  for (const CorpusEntry& entry : Corpus()) {
    bool wanted = false;
    for (const std::string& name : picks) {
      if (entry.name == name) wanted = true;
    }
    if (!wanted) continue;
    StreamSpec spec = SpecFromEntry(entry, 0.0);  // clamps to 1200 rows
    Result<GeneratedStream> stream = GenerateStream(spec);
    ASSERT_TRUE(stream.ok()) << entry.name;
    Result<DatasetProfile> profile = ProfileDataset(*stream);
    ASSERT_TRUE(profile.ok()) << profile.status().ToString();
    profiles.push_back(*profile);
  }
  ASSERT_EQ(profiles.size(), picks.size());

  // Selection into 3 clusters.
  Result<SelectionResult> selection = SelectRepresentatives(profiles, 3);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->representatives.size(), 3u);

  // Evaluate two cheap learners on one representative.
  const DatasetProfile& chosen =
      profiles[static_cast<size_t>(selection->representatives[0])];
  const CorpusEntry* entry = nullptr;
  for (const CorpusEntry& e : Corpus()) {
    if (e.name == chosen.name) entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  Result<GeneratedStream> stream =
      GenerateStream(SpecFromEntry(*entry, 0.0));
  ASSERT_TRUE(stream.ok());
  Result<PreparedStream> prepared = PrepareStream(*stream);
  ASSERT_TRUE(prepared.ok());

  LearnerConfig config;
  config.epochs = 2;
  config.hidden_sizes = {8};
  std::vector<RepeatedResult> results;
  for (const char* name : {"Naive-DT", "Naive-GBDT"}) {
    results.push_back(RunRepeated(name, config, *prepared, 1));
    EXPECT_FALSE(results.back().not_applicable);
    EXPECT_TRUE(std::isfinite(results.back().loss_mean));
  }
  std::string best = BestAlgorithm(results);
  EXPECT_TRUE(best == "Naive-DT" || best == "Naive-GBDT");
}

/// The AIR-like stream (high missing) must survive the full KNN pipeline
/// exactly as the evaluation benches run it.
TEST(IntegrationTest, HighMissingStreamThroughKnnPipeline) {
  StreamSpec spec = RepresentativeSpec("AIR", 0.0);
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  PipelineOptions options;
  options.imputer = "knn";
  options.knn_k = 2;
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  for (const WindowData& window : prepared->windows) {
    for (double v : window.features.data()) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
  LearnerConfig config;
  config.epochs = 2;
  config.hidden_sizes = {8};
  EvalResult nn = RunPrequential(
      MakeLearner("Naive-NN", config, prepared->task,
                  prepared->num_classes)
          ->get(),
      *prepared);
  EXPECT_TRUE(std::isfinite(nn.mean_loss));
}

}  // namespace
}  // namespace oebench
