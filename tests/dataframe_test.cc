#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "dataframe/csv.h"
#include "dataframe/csv_scan.h"
#include "dataframe/table.h"

namespace oebench {
namespace {

Table MakeSmallTable() {
  Table table;
  Column num = Column::Numeric("x");
  num.AppendNumeric(1.0);
  num.AppendMissingNumeric();
  num.AppendNumeric(3.0);
  EXPECT_TRUE(table.AddColumn(std::move(num)).ok());
  Column cat = Column::Categorical("c");
  cat.AppendCategory("red");
  cat.AppendCategory("blue");
  cat.AppendMissingCategory();
  EXPECT_TRUE(table.AddColumn(std::move(cat)).ok());
  return table;
}

TEST(ColumnTest, NumericMissing) {
  Column col = Column::Numeric("x");
  col.AppendNumeric(2.0);
  col.AppendMissingNumeric();
  EXPECT_EQ(col.size(), 2);
  EXPECT_FALSE(col.IsMissing(0));
  EXPECT_TRUE(col.IsMissing(1));
  EXPECT_EQ(col.CountMissing(), 1);
}

TEST(ColumnTest, CategoricalDictionary) {
  Column col = Column::Categorical("c");
  col.AppendCategory("a");
  col.AppendCategory("b");
  col.AppendCategory("a");
  EXPECT_EQ(col.num_categories(), 2);
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
  EXPECT_EQ(col.CategoryName(col.CodeAt(1)), "b");
}

TEST(ColumnTest, SlicePreservesDictionary) {
  Column col = Column::Categorical("c");
  col.AppendCategory("a");
  col.AppendCategory("b");
  col.AppendCategory("c");
  Column sliced = col.Slice(1, 3);
  EXPECT_EQ(sliced.size(), 2);
  EXPECT_EQ(sliced.CategoryName(sliced.CodeAt(0)), "b");
}

TEST(TableTest, AddColumnValidation) {
  Table table = MakeSmallTable();
  EXPECT_EQ(table.num_rows(), 3);
  EXPECT_EQ(table.num_columns(), 2);
  // Duplicate name rejected.
  EXPECT_FALSE(table.AddColumn(Column::Numeric("x")).ok());
  // Length mismatch rejected.
  Column bad = Column::Numeric("y");
  bad.AppendNumeric(1.0);
  EXPECT_FALSE(table.AddColumn(std::move(bad)).ok());
}

TEST(TableTest, ColumnIndex) {
  Table table = MakeSmallTable();
  ASSERT_TRUE(table.ColumnIndex("c").ok());
  EXPECT_EQ(*table.ColumnIndex("c"), 1);
  EXPECT_FALSE(table.ColumnIndex("nope").ok());
}

TEST(TableTest, MissingStats) {
  Table table = MakeSmallTable();
  Table::MissingStats stats = table.ComputeMissingStats();
  // Rows 1 and 2 have a missing cell; both columns do; 2 of 6 cells.
  EXPECT_NEAR(stats.row_ratio, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.column_ratio, 1.0, 1e-12);
  EXPECT_NEAR(stats.cell_ratio, 2.0 / 6.0, 1e-12);
}

TEST(TableTest, SliceAndSelectRows) {
  Table table = MakeSmallTable();
  Table sliced = table.Slice(1, 3);
  EXPECT_EQ(sliced.num_rows(), 2);
  EXPECT_TRUE(sliced.column(0).IsMissing(0));
  Table selected = table.SelectRows({2, 0});
  EXPECT_DOUBLE_EQ(selected.column(0).NumericAt(0), 3.0);
  EXPECT_DOUBLE_EQ(selected.column(0).NumericAt(1), 1.0);
}

TEST(TableTest, ToMatrixRequiresNumeric) {
  Table table = MakeSmallTable();
  EXPECT_FALSE(table.ToMatrix().ok());
  Table numeric;
  Column a = Column::Numeric("a");
  a.AppendNumeric(1.0);
  a.AppendMissingNumeric();
  ASSERT_TRUE(numeric.AddColumn(std::move(a)).ok());
  Result<Matrix> m = numeric.ToMatrix();
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(0, 0), 1.0);
  EXPECT_TRUE(std::isnan(m->At(1, 0)));
}

TEST(CsvTest, ParseWithTypesAndMissing) {
  const std::string csv =
      "a,b,c\n"
      "1.5,red,10\n"
      ",blue,20\n"
      "2.5,NA,30\n";
  Result<Table> table = ReadCsvFromString(csv);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 3);
  EXPECT_EQ(table->num_columns(), 3);
  EXPECT_EQ(table->column(0).type(), ColumnType::kNumeric);
  EXPECT_EQ(table->column(1).type(), ColumnType::kCategorical);
  EXPECT_EQ(table->column(2).type(), ColumnType::kNumeric);
  EXPECT_TRUE(table->column(0).IsMissing(1));
  EXPECT_TRUE(table->column(1).IsMissing(2));
  EXPECT_DOUBLE_EQ(table->column(2).NumericAt(2), 30.0);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvFromString("a,b\n1,2\n3\n").ok());
}

TEST(CsvTest, NoHeaderMode) {
  CsvReadOptions options;
  options.has_header = false;
  Result<Table> table = ReadCsvFromString("1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->column(0).name(), "col0");
}

TEST(CsvTest, RoundTripThroughFile) {
  Table table = MakeSmallTable();
  const std::string path = "/tmp/oebench_csv_test.csv";
  ASSERT_TRUE(WriteCsv(table, path).ok());
  Result<Table> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 3);
  EXPECT_TRUE(loaded->column(0).IsMissing(1));
  EXPECT_EQ(loaded->column(1).type(), ColumnType::kCategorical);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// CSV scanner: the blocked (64-byte mask) walker must agree with the
// scalar state machine byte for byte, and at quote='\0' both must agree
// with the legacy getline+Split semantics the rest of the repo's golden
// files were produced under.

/// Materialises every record of a scan as a vector of field strings.
std::vector<std::vector<std::string>> MaterializeAll(
    const std::string& text, const CsvScanResult& scan, char quote) {
  std::vector<std::vector<std::string>> records;
  size_t field_begin = 0;
  for (size_t end : scan.record_ends) {
    std::vector<std::string> fields;
    for (size_t f = field_begin; f < end; ++f) {
      fields.push_back(MaterializeField(text, scan.fields[f], quote));
    }
    records.push_back(std::move(fields));
    field_begin = end;
  }
  return records;
}

/// The legacy reader, re-implemented verbatim: getline over '\n', one
/// trailing '\r' stripped per line, then a delimiter Split where
/// Split("") == {""}. Quoting did not exist.
std::vector<std::vector<std::string>> LegacyLineSplit(
    const std::string& text, char delimiter) {
  std::vector<std::vector<std::string>> records;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> fields;
    std::string field;
    for (char c : line) {
      if (c == delimiter) {
        fields.push_back(field);
        field.clear();
      } else {
        field += c;
      }
    }
    fields.push_back(field);
    records.push_back(std::move(fields));
  }
  return records;
}

void ExpectScannersAgree(const std::string& text, const CsvScanOptions& opt) {
  const CsvScanResult scalar = ScanCsvScalar(text, opt);
  const CsvScanResult blocked = ScanCsvBlocked(text, opt);
  ASSERT_EQ(scalar.record_ends, blocked.record_ends) << "input: " << text;
  ASSERT_EQ(scalar.fields.size(), blocked.fields.size()) << "input: " << text;
  for (size_t i = 0; i < scalar.fields.size(); ++i) {
    EXPECT_TRUE(scalar.fields[i] == blocked.fields[i])
        << "field " << i << " differs on input: " << text;
  }
}

TEST(CsvScanTest, LegacyEquivalenceQuoteOff) {
  const std::vector<std::string> inputs = {
      "",
      "\n",
      "\r\n",
      "a,b,c\n1,2,3\n",
      "a,b,c\n1,2,3",     // truncated final record
      "a,b,\n,,\n",       // empty fields
      "x\r\ny\r\n",       // CRLF
      "x\r\r\n",          // only one \r stripped
      "a,b\n\n c ,d\n",   // blank interior line, spaces kept
      ",\n",
  };
  for (const std::string& text : inputs) {
    const CsvScanResult scan = ScanCsvScalar(text, {',', '\0'});
    EXPECT_EQ(MaterializeAll(text, scan, '\0'), LegacyLineSplit(text, ','))
        << "input: " << text;
    ExpectScannersAgree(text, {',', '\0'});
  }
}

TEST(CsvScanTest, QuotedFields) {
  const std::string text =
      "a,\"b,with,commas\",c\n"
      "\"line\nbreak\",\"doubled \"\" quote\",plain\n";
  const CsvScanResult scan = ScanCsvScalar(text, {',', '"'});
  const auto records = MaterializeAll(text, scan, '"');
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0],
            (std::vector<std::string>{"a", "b,with,commas", "c"}));
  EXPECT_EQ(records[1],
            (std::vector<std::string>{"line\nbreak", "doubled \" quote",
                                      "plain"}));
  ExpectScannersAgree(text, {',', '"'});
}

TEST(CsvScanTest, QuoteEdgeCases) {
  const CsvScanOptions opt{',', '"'};
  // Unterminated quote runs to EOF.
  ExpectScannersAgree("a,\"never closed\nand more", opt);
  // Bytes between the closing quote and the separator are ignored.
  {
    const std::string text = "\"kept\"dropped,b\n";
    const auto records =
        MaterializeAll(text, ScanCsvScalar(text, opt), '"');
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0], (std::vector<std::string>{"kept", "b"}));
    ExpectScannersAgree(text, opt);
  }
  // Quote appearing mid-field is literal, not structural.
  {
    const std::string text = "not\"quoted,b\n";
    const auto records =
        MaterializeAll(text, ScanCsvScalar(text, opt), '"');
    EXPECT_EQ(records[0], (std::vector<std::string>{"not\"quoted", "b"}));
    ExpectScannersAgree(text, opt);
  }
  // Empty quoted field, and a record that is just "".
  ExpectScannersAgree("\"\",a\n\"\"\n", opt);
  // CRLF after a quoted field.
  ExpectScannersAgree("\"a\",b\r\n\"c\",d\r\n", opt);
}

TEST(CsvScanTest, FieldsStraddlingBlocks) {
  // Fields longer than the 64-byte mask block, with the structural
  // bytes landing at every offset around the block boundary.
  for (int pad = 56; pad <= 72; ++pad) {
    const std::string big(static_cast<size_t>(pad), 'x');
    const std::string text = big + "," + big + "\n" + big + "\n";
    ExpectScannersAgree(text, {',', '\0'});
    const std::string quoted =
        "\"" + big + "," + big + "\"," + big + "\n";
    ExpectScannersAgree(quoted, {',', '"'});
    const auto records =
        MaterializeAll(quoted, ScanCsvScalar(quoted, {',', '"'}), '"');
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0][0], big + "," + big);
    EXPECT_EQ(records[0][1], big);
  }
}

TEST(CsvScanTest, RandomizedDifferentialFuzz) {
  // Random byte soup heavy in structural characters: the blocked
  // scanner must agree with the scalar one on every input, quote
  // handling on and off, and quote-off must match the legacy reader.
  const char alphabet[] = {',', '\n', '"', '\r', 'a', 'b', ';', ' '};
  Rng rng(20260809);
  for (int iter = 0; iter < 200; ++iter) {
    const int len = static_cast<int>(rng.UniformInt(200));
    std::string text;
    for (int i = 0; i < len; ++i) {
      text += alphabet[rng.UniformInt(sizeof(alphabet))];
    }
    ExpectScannersAgree(text, {',', '\0'});
    ExpectScannersAgree(text, {',', '"'});
    ExpectScannersAgree(text, {';', '"'});
    const CsvScanResult scan = ScanCsvScalar(text, {',', '\0'});
    EXPECT_EQ(MaterializeAll(text, scan, '\0'), LegacyLineSplit(text, ','))
        << "input: " << text;
  }
  // Long-field soup crossing many block boundaries.
  for (int iter = 0; iter < 40; ++iter) {
    const int len = 300 + static_cast<int>(rng.UniformInt(300));
    std::string text;
    for (int i = 0; i < len; ++i) {
      // Mostly payload bytes so fields regularly straddle blocks.
      text += rng.Bernoulli(0.06)
                  ? alphabet[rng.UniformInt(4)]
                  : static_cast<char>('a' + rng.UniformInt(26));
    }
    ExpectScannersAgree(text, {',', '\0'});
    ExpectScannersAgree(text, {',', '"'});
  }
}

TEST(CsvScanTest, ReadCsvFromStringHonoursQuotes) {
  CsvReadOptions options;
  options.quote = '"';
  Result<Table> table = ReadCsvFromString(
      "a,b\n\"1,5\",\"red\nblue\"\n2,green\n", options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->column(1).type(), ColumnType::kCategorical);
  EXPECT_EQ(table->column(1).CategoryName(table->column(1).CodeAt(0)),
            "red\nblue");
}

}  // namespace
}  // namespace oebench
