#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "dataframe/csv.h"
#include "dataframe/table.h"

namespace oebench {
namespace {

Table MakeSmallTable() {
  Table table;
  Column num = Column::Numeric("x");
  num.AppendNumeric(1.0);
  num.AppendMissingNumeric();
  num.AppendNumeric(3.0);
  EXPECT_TRUE(table.AddColumn(std::move(num)).ok());
  Column cat = Column::Categorical("c");
  cat.AppendCategory("red");
  cat.AppendCategory("blue");
  cat.AppendMissingCategory();
  EXPECT_TRUE(table.AddColumn(std::move(cat)).ok());
  return table;
}

TEST(ColumnTest, NumericMissing) {
  Column col = Column::Numeric("x");
  col.AppendNumeric(2.0);
  col.AppendMissingNumeric();
  EXPECT_EQ(col.size(), 2);
  EXPECT_FALSE(col.IsMissing(0));
  EXPECT_TRUE(col.IsMissing(1));
  EXPECT_EQ(col.CountMissing(), 1);
}

TEST(ColumnTest, CategoricalDictionary) {
  Column col = Column::Categorical("c");
  col.AppendCategory("a");
  col.AppendCategory("b");
  col.AppendCategory("a");
  EXPECT_EQ(col.num_categories(), 2);
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
  EXPECT_EQ(col.CategoryName(col.CodeAt(1)), "b");
}

TEST(ColumnTest, SlicePreservesDictionary) {
  Column col = Column::Categorical("c");
  col.AppendCategory("a");
  col.AppendCategory("b");
  col.AppendCategory("c");
  Column sliced = col.Slice(1, 3);
  EXPECT_EQ(sliced.size(), 2);
  EXPECT_EQ(sliced.CategoryName(sliced.CodeAt(0)), "b");
}

TEST(TableTest, AddColumnValidation) {
  Table table = MakeSmallTable();
  EXPECT_EQ(table.num_rows(), 3);
  EXPECT_EQ(table.num_columns(), 2);
  // Duplicate name rejected.
  EXPECT_FALSE(table.AddColumn(Column::Numeric("x")).ok());
  // Length mismatch rejected.
  Column bad = Column::Numeric("y");
  bad.AppendNumeric(1.0);
  EXPECT_FALSE(table.AddColumn(std::move(bad)).ok());
}

TEST(TableTest, ColumnIndex) {
  Table table = MakeSmallTable();
  ASSERT_TRUE(table.ColumnIndex("c").ok());
  EXPECT_EQ(*table.ColumnIndex("c"), 1);
  EXPECT_FALSE(table.ColumnIndex("nope").ok());
}

TEST(TableTest, MissingStats) {
  Table table = MakeSmallTable();
  Table::MissingStats stats = table.ComputeMissingStats();
  // Rows 1 and 2 have a missing cell; both columns do; 2 of 6 cells.
  EXPECT_NEAR(stats.row_ratio, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.column_ratio, 1.0, 1e-12);
  EXPECT_NEAR(stats.cell_ratio, 2.0 / 6.0, 1e-12);
}

TEST(TableTest, SliceAndSelectRows) {
  Table table = MakeSmallTable();
  Table sliced = table.Slice(1, 3);
  EXPECT_EQ(sliced.num_rows(), 2);
  EXPECT_TRUE(sliced.column(0).IsMissing(0));
  Table selected = table.SelectRows({2, 0});
  EXPECT_DOUBLE_EQ(selected.column(0).NumericAt(0), 3.0);
  EXPECT_DOUBLE_EQ(selected.column(0).NumericAt(1), 1.0);
}

TEST(TableTest, ToMatrixRequiresNumeric) {
  Table table = MakeSmallTable();
  EXPECT_FALSE(table.ToMatrix().ok());
  Table numeric;
  Column a = Column::Numeric("a");
  a.AppendNumeric(1.0);
  a.AppendMissingNumeric();
  ASSERT_TRUE(numeric.AddColumn(std::move(a)).ok());
  Result<Matrix> m = numeric.ToMatrix();
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(0, 0), 1.0);
  EXPECT_TRUE(std::isnan(m->At(1, 0)));
}

TEST(CsvTest, ParseWithTypesAndMissing) {
  const std::string csv =
      "a,b,c\n"
      "1.5,red,10\n"
      ",blue,20\n"
      "2.5,NA,30\n";
  Result<Table> table = ReadCsvFromString(csv);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 3);
  EXPECT_EQ(table->num_columns(), 3);
  EXPECT_EQ(table->column(0).type(), ColumnType::kNumeric);
  EXPECT_EQ(table->column(1).type(), ColumnType::kCategorical);
  EXPECT_EQ(table->column(2).type(), ColumnType::kNumeric);
  EXPECT_TRUE(table->column(0).IsMissing(1));
  EXPECT_TRUE(table->column(1).IsMissing(2));
  EXPECT_DOUBLE_EQ(table->column(2).NumericAt(2), 30.0);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvFromString("a,b\n1,2\n3\n").ok());
}

TEST(CsvTest, NoHeaderMode) {
  CsvReadOptions options;
  options.has_header = false;
  Result<Table> table = ReadCsvFromString("1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->column(0).name(), "col0");
}

TEST(CsvTest, RoundTripThroughFile) {
  Table table = MakeSmallTable();
  const std::string path = "/tmp/oebench_csv_test.csv";
  ASSERT_TRUE(WriteCsv(table, path).ok());
  Result<Table> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 3);
  EXPECT_TRUE(loaded->column(0).IsMissing(1));
  EXPECT_EQ(loaded->column(1).type(), ColumnType::kCategorical);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oebench
