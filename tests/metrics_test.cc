// The metrics/tracing layer and its determinism contract. The registry
// is the single source of truth for every measurement the sweep/bench
// stack reports, so these tests pin down (a) the primitive semantics
// (find-or-create pointers that survive Reset, lock-striped histograms,
// capped spans), (b) the JSON snapshot format both ways plus the
// merge-time rollup, and (c) the contract that *counters* are
// bit-identical across thread counts and runs while wall-clock lives
// only in volatile sections. Also home of the AggregateThroughput
// regression: pooled items/seconds, never a mean of per-run ratios.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.h"
#include "core/parallel_eval.h"
#include "streamgen/corpus.h"
#include "sweep/merge.h"

namespace oebench {
namespace {

TEST(MetricsRegistryTest, CountersFindOrCreateAndAccumulate) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.items");
  EXPECT_EQ(c, registry.GetCounter("test.items"));
  c->Add(5);
  c->Increment();
  EXPECT_EQ(c->value(), 6);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("test.items"), 6);
  EXPECT_TRUE(snapshot.volatile_counters.empty());
}

TEST(MetricsRegistryTest, VolatileCountersAreASeparateNamespace) {
  MetricsRegistry registry;
  registry.GetCounter("retries")->Add(1);
  registry.GetVolatileCounter("retries")->Add(7);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("retries"), 1);
  EXPECT_EQ(snapshot.volatile_counters.at("retries"), 7);
}

TEST(MetricsRegistryTest, GaugeSetAddAndSetMax) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("pool.workers");
  g->Set(4.0);
  EXPECT_EQ(g->value(), 4.0);
  g->Add(2.0);
  g->Add(-1.0);
  EXPECT_EQ(g->value(), 5.0);
  g->SetMax(3.0);  // never lowers
  EXPECT_EQ(g->value(), 5.0);
  g->SetMax(9.0);
  EXPECT_EQ(g->value(), 9.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 10.0, 100.0});
  h->Record(0.5);     // bucket 0
  h->Record(1.0);     // bucket 0 (inclusive upper bound)
  h->Record(5.0);     // bucket 1
  h->Record(1000.0);  // overflow bucket
  HistogramSnapshot s = h->Snapshot();
  ASSERT_EQ(s.bounds, (std::vector<double>{1.0, 10.0, 100.0}));
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets, (std::vector<int64_t>{2, 1, 0, 1}));
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.sum, 1006.5);
  EXPECT_EQ(s.min, 0.5);
  EXPECT_EQ(s.max, 1000.0);
}

TEST(MetricsRegistryTest, HistogramDefaultsToSharedLatencyBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  EXPECT_EQ(h->Snapshot().bounds, DefaultLatencyBounds());
  // Later Get calls ignore bounds and return the existing histogram.
  EXPECT_EQ(h, registry.GetHistogram("lat", {1.0}));
}

TEST(MetricsRegistryTest, DefaultLatencyBoundsResolveMicroseconds) {
  // Regression for the serving work: per-record latencies are µs-scale,
  // so the shared bounds must keep sub-millisecond resolution instead of
  // collapsing everything under 1 ms into one or two buckets.
  const std::vector<double>& bounds = DefaultLatencyBounds();
  for (size_t i = 1; i < bounds.size(); ++i) {
    ASSERT_LT(bounds[i - 1], bounds[i]) << "bounds must be sorted";
  }
  size_t sub_millisecond = 0;
  for (double b : bounds) {
    if (b <= 1e-3) ++sub_millisecond;
  }
  EXPECT_GE(sub_millisecond, 10u);
  EXPECT_LE(bounds.front(), 1e-7);  // 100 ns floor
  EXPECT_GE(bounds.back(), 100.0);  // still covers batch timings

  // Distinct µs-scale latencies must land in distinct buckets.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  h->Record(2e-6);   // ~2 µs
  h->Record(4e-5);   // ~40 µs
  h->Record(7e-4);   // ~700 µs
  const HistogramSnapshot snap = h->Snapshot();
  size_t occupied = 0;
  for (int64_t bucket : snap.buckets) {
    if (bucket > 0) ++occupied;
  }
  EXPECT_EQ(occupied, 3u);
}

TEST(MetricsRegistryTest, HistogramSurvivesConcurrentRecording) {
  // Lock-striped recording must not drop samples under contention —
  // this is the case the check-sanitize TSan pass watches.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) h->Record(0.25);
    });
  }
  for (std::thread& worker : workers) worker.join();
  HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.buckets[0], kThreads * kPerThread);
  EXPECT_EQ(s.min, 0.25);
  EXPECT_EQ(s.max, 0.25);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h", {1.0});
  c->Add(3);
  g->Set(2.5);
  h->Record(0.5);
  registry.RecordSpan("task:x", 0.0, 1.0);
  registry.Reset();
  // Hot paths cache these pointers in function-local statics; Reset
  // must zero values without deallocating the metric objects.
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->Snapshot().count, 0);
  EXPECT_TRUE(registry.Snapshot().spans.empty());
  EXPECT_EQ(registry.Snapshot().spans_dropped, 0);
  c->Add(1);
  h->Record(0.25);
  EXPECT_EQ(registry.GetCounter("c"), c);
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 1);
  EXPECT_EQ(registry.Snapshot().histograms.at("h").count, 1);
}

TEST(MetricsRegistryTest, SpansAreCappedAndOverflowIsCounted) {
  MetricsRegistry registry;
  constexpr int kOver = 5;
  for (int i = 0; i < 4096 + kOver; ++i) {
    registry.RecordSpan("task:x", static_cast<double>(i), 1.0);
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.spans.size(), 4096u);
  EXPECT_EQ(snapshot.spans_dropped, kOver);
}

TEST(ScopedTimerTest, RecordsOnceAndReturnsElapsed) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("phase", {1e9});
  double elapsed = 0.0;
  {
    ScopedTimer timer(h, "span:phase", &registry);
    elapsed = timer.Stop();
    EXPECT_GE(elapsed, 0.0);
    EXPECT_EQ(timer.Stop(), 0.0);  // disarmed after first Stop
  }  // destructor must not double-record
  HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.sum, elapsed);
  ASSERT_EQ(registry.Snapshot().spans.size(), 1u);
  EXPECT_EQ(registry.Snapshot().spans[0].name, "span:phase");

  ScopedTimer inert(nullptr);
  EXPECT_EQ(inert.Stop(), 0.0);
}

MetricsSnapshot SampleSnapshot() {
  MetricsSnapshot s;
  s.counters["eval.items"] = 1200;
  s.counters["sweep.tasks_executed"] = 8;
  s.volatile_counters["sweep.transient_retries"] = 2;
  s.gauges["pool.workers"] = 4.0;
  HistogramSnapshot h;
  h.bounds = {1.0, 10.0};
  h.buckets = {3, 1, 0};
  h.count = 4;
  h.sum = 6.5;
  h.min = 0.25;
  h.max = 5.0;
  s.histograms["sweep.task_seconds"] = h;
  s.spans.push_back({"task:AIR|Naive-DT|0", 0.125, 2.5});
  s.spans_dropped = 1;
  return s;
}

void ExpectSnapshotsEqual(const MetricsSnapshot& a,
                          const MetricsSnapshot& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.volatile_counters, b.volatile_counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (const auto& [name, ha] : a.histograms) {
    ASSERT_TRUE(b.histograms.count(name)) << name;
    const HistogramSnapshot& hb = b.histograms.at(name);
    EXPECT_EQ(ha.bounds, hb.bounds);
    EXPECT_EQ(ha.buckets, hb.buckets);
    EXPECT_EQ(ha.count, hb.count);
    EXPECT_EQ(ha.sum, hb.sum);
    EXPECT_EQ(ha.min, hb.min);
    EXPECT_EQ(ha.max, hb.max);
  }
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].name, b.spans[i].name);
    EXPECT_EQ(a.spans[i].start_seconds, b.spans[i].start_seconds);
    EXPECT_EQ(a.spans[i].duration_seconds, b.spans[i].duration_seconds);
  }
  EXPECT_EQ(a.spans_dropped, b.spans_dropped);
}

TEST(MetricsJsonTest, FullSnapshotRoundTripsExactly) {
  MetricsSnapshot original = SampleSnapshot();
  std::string json = MetricsToJson(original);
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsJson(json, &parsed).ok());
  ExpectSnapshotsEqual(original, parsed);
  // %.17g rendering must round-trip doubles bit-exactly, including
  // awkward ones.
  MetricsSnapshot awkward;
  awkward.gauges["g"] = 0.1 + 0.2;  // 0.30000000000000004
  MetricsSnapshot reparsed;
  ASSERT_TRUE(ParseMetricsJson(MetricsToJson(awkward), &reparsed).ok());
  EXPECT_EQ(reparsed.gauges.at("g"), awkward.gauges.at("g"));
}

TEST(MetricsJsonTest, DeterministicModeEmitsOnlyCounters) {
  MetricsSnapshot snapshot = SampleSnapshot();
  MetricsJsonOptions options;
  options.deterministic = true;
  std::string json = MetricsToJson(snapshot, options);
  // Volatile sections carry wall-clock and environment noise, so the
  // deterministic snapshot must not mention them at all.
  EXPECT_EQ(json.find("gauges"), std::string::npos);
  EXPECT_EQ(json.find("histograms"), std::string::npos);
  EXPECT_EQ(json.find("volatile"), std::string::npos);
  EXPECT_EQ(json.find("spans"), std::string::npos);
  EXPECT_NE(json.find("\"deterministic\": true"), std::string::npos);
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsJson(json, &parsed).ok());
  EXPECT_EQ(parsed.counters, snapshot.counters);
  EXPECT_TRUE(parsed.gauges.empty());
  EXPECT_TRUE(parsed.histograms.empty());
}

TEST(MetricsJsonTest, RejectsMalformedInput) {
  MetricsSnapshot out;
  EXPECT_FALSE(ParseMetricsJson("", &out).ok());
  EXPECT_FALSE(ParseMetricsJson("{}", &out).ok());  // missing version
  EXPECT_FALSE(
      ParseMetricsJson("{\"version\": 2, \"counters\": {}}", &out).ok());
  // Unknown keys are an error: the format is ours, so an unexpected
  // key means a version skew, not an extension.
  EXPECT_FALSE(
      ParseMetricsJson("{\"version\": 1, \"surprise\": {}}", &out).ok());
  std::string valid = MetricsToJson(SampleSnapshot());
  EXPECT_TRUE(ParseMetricsJson(valid, &out).ok());
  EXPECT_FALSE(ParseMetricsJson(valid + "x", &out).ok());  // trailing data
  EXPECT_FALSE(
      ParseMetricsJson(valid.substr(0, valid.size() - 2), &out).ok());
}

TEST(MetricsMergeTest, SumsCountersMaxesGaugesAddsBuckets) {
  MetricsSnapshot a = SampleSnapshot();
  MetricsSnapshot b = SampleSnapshot();
  b.counters["eval.items"] = 300;
  b.counters["prepare.rows"] = 50;  // only in b
  b.gauges["pool.workers"] = 2.0;
  b.histograms["sweep.task_seconds"].buckets = {0, 0, 2};
  b.histograms["sweep.task_seconds"].count = 2;
  b.histograms["sweep.task_seconds"].sum = 40.0;
  b.histograms["sweep.task_seconds"].min = 15.0;
  b.histograms["sweep.task_seconds"].max = 25.0;

  MetricsSnapshot acc;
  ASSERT_TRUE(MergeMetricsSnapshots(a, &acc).ok());
  ASSERT_TRUE(MergeMetricsSnapshots(b, &acc).ok());
  EXPECT_EQ(acc.counters.at("eval.items"), 1500);
  EXPECT_EQ(acc.counters.at("prepare.rows"), 50);
  EXPECT_EQ(acc.counters.at("sweep.tasks_executed"), 16);
  EXPECT_EQ(acc.volatile_counters.at("sweep.transient_retries"), 4);
  EXPECT_EQ(acc.gauges.at("pool.workers"), 4.0);  // max wins
  const HistogramSnapshot& h = acc.histograms.at("sweep.task_seconds");
  EXPECT_EQ(h.buckets, (std::vector<int64_t>{3, 1, 2}));
  EXPECT_EQ(h.count, 6);
  EXPECT_EQ(h.sum, 46.5);
  EXPECT_EQ(h.min, 0.25);
  EXPECT_EQ(h.max, 25.0);
  // Per-shard spans do not survive the rollup; their count is folded
  // into spans_dropped so the loss is visible.
  EXPECT_TRUE(acc.spans.empty());
  EXPECT_EQ(acc.spans_dropped, 2 + 2);
}

TEST(MetricsMergeTest, HistogramBoundsMismatchFails) {
  MetricsSnapshot a = SampleSnapshot();
  MetricsSnapshot b = SampleSnapshot();
  b.histograms["sweep.task_seconds"].bounds = {2.0, 20.0};
  MetricsSnapshot acc;
  ASSERT_TRUE(MergeMetricsSnapshots(a, &acc).ok());
  Status status = MergeMetricsSnapshots(b, &acc);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("sweep.task_seconds"),
            std::string::npos);
}

EvalResult TimedRun(int64_t items, double train_seconds,
                    double test_seconds) {
  EvalResult run;
  run.items_processed = items;
  run.train_seconds = train_seconds;
  run.test_seconds = test_seconds;
  double seconds = train_seconds + test_seconds;
  run.throughput = seconds > 0 ? items / seconds : 0.0;
  return run;
}

TEST(AggregateThroughputTest, PoolsItemsAndSecondsAcrossRuns) {
  // Regression for RunRepeated's old aggregation, which averaged the
  // per-repeat ratios: a sub-timer-resolution repeat (0 measured
  // seconds, ratio guarded to 0) deflated the mean to 500 here. The
  // pooled formula keeps its items and reports 2000/1.0.
  std::vector<EvalResult> runs = {TimedRun(1000, 1.0, 0.0),
                                  TimedRun(1000, 0.0, 0.0)};
  EXPECT_EQ(AggregateThroughput(runs), 2000.0);
  // And a plain two-run pool is total items over total seconds, not
  // the mean of 1000 and 250.
  runs = {TimedRun(1000, 1.0, 0.0), TimedRun(1000, 2.0, 2.0)};
  EXPECT_EQ(AggregateThroughput(runs), 2000.0 / 5.0);
}

TEST(AggregateThroughputTest, RecoversItemsFromLoggedRatio) {
  // Rows reloaded from a result log carry throughput but not the item
  // count; the aggregator recovers items = throughput * seconds.
  EvalResult logged;
  logged.items_processed = 0;
  logged.train_seconds = 1.5;
  logged.test_seconds = 0.5;
  logged.throughput = 500.0;  // 1000 items over 2.0 seconds
  std::vector<EvalResult> runs = {logged, TimedRun(600, 1.0, 0.0)};
  EXPECT_DOUBLE_EQ(AggregateThroughput(runs), 1600.0 / 3.0);
}

TEST(AggregateThroughputTest, AlwaysFiniteNeverNegative) {
  EXPECT_EQ(AggregateThroughput({}), 0.0);
  EXPECT_EQ(AggregateThroughput({TimedRun(1000, 0.0, 0.0)}), 0.0);
  EvalResult poisoned = TimedRun(100, 1.0, 0.0);
  poisoned.train_seconds = std::numeric_limits<double>::infinity();
  EXPECT_EQ(AggregateThroughput({poisoned}), 0.0);
  EXPECT_EQ(AggregateThroughput({TimedRun(0, 1.0, 0.0)}), 0.0);
}

/// Small mixed-task corpus slice + fast config, mirroring
/// parallel_eval_test's determinism fixtures.
std::vector<CorpusEntry> SmallEntries() {
  std::vector<CorpusEntry> out;
  int cls = 0;
  int reg = 0;
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.task == TaskType::kClassification && cls < 1) {
      out.push_back(entry);
      ++cls;
    } else if (entry.task == TaskType::kRegression && reg < 1) {
      out.push_back(entry);
      ++reg;
    }
  }
  return out;
}

SweepConfig FastConfig(int threads) {
  SweepConfig config;
  config.base_config.seed = 42;
  config.base_config.epochs = 2;
  config.base_config.tree_max_depth = 6;
  config.base_config.ensemble_size = 3;
  config.repeats = 2;
  config.threads = threads;
  config.scale = 0.0;
  config.pipeline.imputer = "mean";
  return config;
}

TEST(SweepMetricsTest, CountersAreIdenticalAcrossThreadCounts) {
  // The determinism contract: counters hold work counts, which a
  // fixed workload fully determines — so 1 worker and 4 workers must
  // produce the exact same counter map (volatile sections may differ).
  const std::vector<CorpusEntry> entries = SmallEntries();
  const std::vector<std::string> learners = {"Naive-DT", "Naive-Bayes"};
  MetricsRegistry* registry = MetricsRegistry::Global();

  registry->Reset();
  SweepOutcome serial = ParallelSweepEntries(entries, learners,
                                             FastConfig(1));
  MetricsSnapshot snap1 = registry->Snapshot();

  registry->Reset();
  SweepOutcome parallel = ParallelSweepEntries(entries, learners,
                                               FastConfig(4));
  MetricsSnapshot snap4 = registry->Snapshot();

  EXPECT_EQ(snap1.counters, snap4.counters);
  EXPECT_EQ(snap1.counters.at("sweep.tasks_executed"), serial.tasks_run);
  EXPECT_EQ(snap1.counters.at("sweep.pairs_skipped"),
            serial.pairs_skipped);
  EXPECT_EQ(snap1.counters.at("eval.runs"), serial.tasks_run);
  EXPECT_GT(snap1.counters.at("eval.items"), 0);
  EXPECT_EQ(snap1.counters.at("prepare.streams"),
            static_cast<int64_t>(entries.size()));
  // And recording metrics never perturbs the sweep itself.
  EXPECT_EQ(sweep::DumpOutcome(serial), sweep::DumpOutcome(parallel));
}

TEST(SweepMetricsTest, DeterministicSnapshotsAreByteIdenticalAcrossRuns) {
  const std::vector<CorpusEntry> entries = SmallEntries();
  const std::vector<std::string> learners = {"Naive-DT"};
  MetricsRegistry* registry = MetricsRegistry::Global();
  MetricsJsonOptions options;
  options.deterministic = true;

  registry->Reset();
  ParallelSweepEntries(entries, learners, FastConfig(4));
  std::string first = MetricsToJson(registry->Snapshot(), options);

  registry->Reset();
  ParallelSweepEntries(entries, learners, FastConfig(4));
  std::string second = MetricsToJson(registry->Snapshot(), options);

  EXPECT_EQ(first, second);
  // The snapshot is non-vacuous: it parses and carries real counts.
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsJson(first, &parsed).ok());
  EXPECT_GT(parsed.counters.at("eval.items"), 0);
}

TEST(SweepMetricsTest, SweepRecordsSpansAndPhaseHistograms) {
  const std::vector<CorpusEntry> entries = SmallEntries();
  MetricsRegistry* registry = MetricsRegistry::Global();
  registry->Reset();
  SweepOutcome outcome =
      ParallelSweepEntries(entries, {"Naive-DT"}, FastConfig(2));
  MetricsSnapshot snapshot = registry->Snapshot();
  // One "task:dataset|learner|repeat" span per executed task.
  EXPECT_EQ(snapshot.spans.size(),
            static_cast<size_t>(outcome.tasks_run));
  for (const SpanSnapshot& span : snapshot.spans) {
    EXPECT_EQ(span.name.rfind("task:", 0), 0u) << span.name;
    EXPECT_GE(span.duration_seconds, 0.0);
  }
  EXPECT_EQ(snapshot.histograms.at("sweep.task_seconds").count,
            outcome.tasks_run);
  EXPECT_EQ(snapshot.histograms.at("sweep.queue_wait_seconds").count,
            outcome.tasks_run);
  EXPECT_EQ(snapshot.histograms.at("eval.train_seconds").count,
            outcome.tasks_run);
  EXPECT_GE(snapshot.gauges.at("pool.workers"), 2.0);
  EXPECT_GE(snapshot.gauges.at("sweep.tasks_inflight_peak"), 1.0);
  EXPECT_EQ(snapshot.gauges.at("sweep.tasks_inflight"), 0.0);
}

}  // namespace
}  // namespace oebench
