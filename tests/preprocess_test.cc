#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "preprocess/imputer.h"
#include "preprocess/normalizer.h"
#include "preprocess/one_hot.h"
#include "preprocess/pipeline.h"
#include "preprocess/windowing.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(OneHotTest, ExpandsCategoricalColumns) {
  Table table;
  Column num = Column::Numeric("x");
  num.AppendNumeric(1.0);
  num.AppendNumeric(2.0);
  ASSERT_TRUE(table.AddColumn(std::move(num)).ok());
  Column cat = Column::Categorical("c");
  cat.AppendCategory("a");
  cat.AppendCategory("b");
  ASSERT_TRUE(table.AddColumn(std::move(cat)).ok());

  OneHotEncoder encoder;
  ASSERT_TRUE(encoder.Fit(table).ok());
  EXPECT_EQ(encoder.num_output_columns(), 3);
  Result<Table> out = encoder.Transform(table);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_columns(), 3);
  EXPECT_EQ(out->column(1).name(), "c=a");
  EXPECT_DOUBLE_EQ(out->column(1).NumericAt(0), 1.0);
  EXPECT_DOUBLE_EQ(out->column(1).NumericAt(1), 0.0);
  EXPECT_DOUBLE_EQ(out->column(2).NumericAt(1), 1.0);
}

TEST(OneHotTest, MissingCategoryBecomesNanIndicators) {
  Table table;
  Column cat = Column::Categorical("c");
  cat.AppendCategory("a");
  cat.AppendMissingCategory();
  ASSERT_TRUE(table.AddColumn(std::move(cat)).ok());
  OneHotEncoder encoder;
  ASSERT_TRUE(encoder.Fit(table).ok());
  Result<Table> out = encoder.Transform(table);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::isnan(out->column(0).NumericAt(1)));
}

TEST(OneHotTest, UnseenCategoryMapsToZeros) {
  Table fit_table;
  Column cat = Column::Categorical("c");
  cat.AppendCategory("a");
  ASSERT_TRUE(fit_table.AddColumn(std::move(cat)).ok());
  OneHotEncoder encoder;
  ASSERT_TRUE(encoder.Fit(fit_table).ok());

  Table new_table;
  Column cat2 = Column::Categorical("c");
  cat2.AppendCategory("zzz");
  ASSERT_TRUE(new_table.AddColumn(std::move(cat2)).ok());
  Result<Table> out = encoder.Transform(new_table);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->column(0).NumericAt(0), 0.0);
}

TEST(NormalizerTest, StandardizesWithFitStatistics) {
  Matrix fit = Matrix::FromRows({{0.0, 10.0}, {2.0, 30.0}});
  Normalizer norm;
  ASSERT_TRUE(norm.Fit(fit).ok());
  Matrix data = Matrix::FromRows({{1.0, 20.0}, {3.0, 40.0}});
  norm.Transform(&data);
  EXPECT_NEAR(data.At(0, 0), 0.0, 1e-9);   // (1-1)/1
  EXPECT_NEAR(data.At(0, 1), 0.0, 1e-9);   // (20-20)/10
  EXPECT_NEAR(data.At(1, 0), 2.0, 1e-9);
  EXPECT_NEAR(data.At(1, 1), 2.0, 1e-9);
  EXPECT_NEAR(norm.InverseTransformValue(1, 2.0), 40.0, 1e-9);
}

TEST(NormalizerTest, NanPassThrough) {
  Matrix fit = Matrix::FromRows({{0.0}, {2.0}});
  Normalizer norm;
  ASSERT_TRUE(norm.Fit(fit).ok());
  Matrix data = Matrix::FromRows({{kNan}});
  norm.Transform(&data);
  EXPECT_TRUE(std::isnan(data.At(0, 0)));
}

class ImputerParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ImputerParamTest, FillsEveryNan) {
  Rng rng(11);
  Matrix data(60, 4);
  for (double& v : data.data()) v = rng.Gaussian();
  // Punch random holes.
  Matrix holey = data;
  for (int64_t r = 0; r < holey.rows(); ++r) {
    for (int64_t c = 0; c < holey.cols(); ++c) {
      if (rng.Bernoulli(0.15)) holey.At(r, c) = kNan;
    }
  }
  Result<std::unique_ptr<Imputer>> imputer = MakeImputer(GetParam());
  ASSERT_TRUE(imputer.ok());
  ASSERT_TRUE((*imputer)->Fit(holey).ok());
  Matrix filled = holey;
  ASSERT_TRUE((*imputer)->Transform(&filled).ok());
  for (double v : filled.data()) EXPECT_TRUE(std::isfinite(v));
  // Observed cells are untouched.
  for (int64_t r = 0; r < holey.rows(); ++r) {
    for (int64_t c = 0; c < holey.cols(); ++c) {
      if (!std::isnan(holey.At(r, c))) {
        EXPECT_DOUBLE_EQ(filled.At(r, c), holey.At(r, c));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ImputerParamTest,
                         ::testing::Values("zero", "mean", "knn",
                                           "regression"));

TEST(ImputerTest, ZeroFillsZero) {
  Matrix data = Matrix::FromRows({{kNan, 2.0}});
  ZeroImputer imputer;
  ASSERT_TRUE(imputer.Fit(data).ok());
  ASSERT_TRUE(imputer.Transform(&data).ok());
  EXPECT_DOUBLE_EQ(data.At(0, 0), 0.0);
}

TEST(ImputerTest, MeanFillsColumnMean) {
  Matrix fit = Matrix::FromRows({{1.0}, {3.0}, {kNan}});
  MeanImputer imputer;
  ASSERT_TRUE(imputer.Fit(fit).ok());
  Matrix data = Matrix::FromRows({{kNan}});
  ASSERT_TRUE(imputer.Transform(&data).ok());
  EXPECT_DOUBLE_EQ(data.At(0, 0), 2.0);
}

TEST(ImputerTest, KnnUsesNearestNeighbours) {
  // Two tight clusters with distinct second-coordinate values; a missing
  // cell near cluster A must be filled with A's value, not the global
  // mean.
  Matrix fit = Matrix::FromRows({
      {0.0, 10.0}, {0.1, 10.0}, {0.2, 10.0},
      {5.0, -10.0}, {5.1, -10.0}, {5.2, -10.0},
  });
  KnnImputer imputer(2);
  ASSERT_TRUE(imputer.Fit(fit).ok());
  Matrix data = Matrix::FromRows({{0.05, kNan}});
  ASSERT_TRUE(imputer.Transform(&data).ok());
  EXPECT_NEAR(data.At(0, 1), 10.0, 1e-9);
}

TEST(ImputerTest, RegressionLearnsLinearRelation) {
  // y column = 2 * x column; imputation should recover it.
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 50; ++i) {
    double x = rng.Gaussian();
    rows.push_back({x, 2.0 * x});
  }
  Matrix fit = Matrix::FromRows(rows);
  RegressionImputer imputer;
  ASSERT_TRUE(imputer.Fit(fit).ok());
  Matrix data = Matrix::FromRows({{1.5, kNan}});
  ASSERT_TRUE(imputer.Transform(&data).ok());
  EXPECT_NEAR(data.At(0, 1), 3.0, 0.05);
}

TEST(WindowingTest, EvenSplit) {
  Result<std::vector<WindowRange>> windows = MakeWindows(100, 25);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 4u);
  EXPECT_EQ((*windows)[3].begin, 75);
  EXPECT_EQ((*windows)[3].end, 100);
}

TEST(WindowingTest, SmallRemainderMergesIntoLastWindow) {
  Result<std::vector<WindowRange>> windows = MakeWindows(105, 25);
  ASSERT_TRUE(windows.ok());
  // 105 = 4*25 + 5; remainder 5 < 12.5 merges.
  ASSERT_EQ(windows->size(), 4u);
  EXPECT_EQ(windows->back().end, 105);
  EXPECT_EQ(windows->back().size(), 30);
}

TEST(WindowingTest, LargeRemainderKept) {
  Result<std::vector<WindowRange>> windows = MakeWindows(115, 25);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 5u);
  EXPECT_EQ(windows->back().size(), 15);
}

TEST(WindowingTest, RejectsBadArgs) {
  EXPECT_FALSE(MakeWindows(0, 10).ok());
  EXPECT_FALSE(MakeWindows(10, 0).ok());
}

class PipelineTest : public ::testing::Test {
 protected:
  GeneratedStream MakeStream() {
    StreamSpec spec;
    spec.name = "pipeline_test";
    spec.task = TaskType::kRegression;
    spec.num_instances = 1200;
    spec.num_numeric_features = 5;
    spec.num_categorical_features = 1;
    spec.window_size = 100;
    spec.base_missing_rate = 0.05;
    spec.seed = 5;
    Result<GeneratedStream> stream = GenerateStream(spec);
    EXPECT_TRUE(stream.ok());
    return *stream;
  }
};

TEST_F(PipelineTest, ProducesCleanNormalizedWindows) {
  GeneratedStream stream = MakeStream();
  Result<PreparedStream> prepared = PrepareStream(stream);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->windows.size(), 12u);
  // 5 numeric + 4 one-hot columns.
  EXPECT_EQ(prepared->windows[0].features.cols(), 9);
  for (const WindowData& window : prepared->windows) {
    for (double v : window.features.data()) {
      EXPECT_TRUE(std::isfinite(v));
    }
    EXPECT_EQ(window.features.rows(),
              static_cast<int64_t>(window.targets.size()));
  }
  // First window approximately standardised.
  std::vector<double> mean = prepared->windows[0].features.ColumnMeans();
  for (int64_t c = 0; c < 5; ++c) {
    EXPECT_NEAR(mean[static_cast<size_t>(c)], 0.0, 1e-6);
  }
}

TEST_F(PipelineTest, WindowFactorChangesWindowCount) {
  GeneratedStream stream = MakeStream();
  PipelineOptions options;
  options.window_factor = 2.0;
  Result<PreparedStream> prepared = PrepareStream(stream, options);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->windows.size(), 6u);
}

TEST_F(PipelineTest, DiscardDropsChronicallyMissingFeatures) {
  StreamSpec spec;
  spec.name = "discard_test";
  spec.num_instances = 1000;
  spec.num_numeric_features = 4;
  spec.window_size = 100;
  spec.dropouts.push_back({0, 0.0, 1.0, 0.9});  // feature 0 mostly gone
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  PipelineOptions options;
  options.discard_missing_above = 0.4;
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->windows[0].features.cols(), 3);
  for (const std::string& name : prepared->feature_names) {
    EXPECT_NE(name, "num0");
  }
}

TEST_F(PipelineTest, OutlierRemovalShrinksWindows) {
  StreamSpec spec;
  spec.name = "outlier_removal_test";
  spec.num_instances = 1000;
  spec.num_numeric_features = 4;
  spec.window_size = 200;
  spec.point_anomaly_rate = 0.05;
  spec.point_anomaly_magnitude = 25.0;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  PipelineOptions options;
  options.outlier_removal = "iforest";
  Result<PreparedStream> pruned = PrepareStream(*stream, options);
  ASSERT_TRUE(pruned.ok());
  Result<PreparedStream> full = PrepareStream(*stream);
  ASSERT_TRUE(full.ok());
  int64_t pruned_rows = 0;
  int64_t full_rows = 0;
  for (const auto& w : pruned->windows) pruned_rows += w.features.rows();
  for (const auto& w : full->windows) full_rows += w.features.rows();
  EXPECT_LT(pruned_rows, full_rows);
}

TEST_F(PipelineTest, ShuffleKeepsRowMultiset) {
  GeneratedStream stream = MakeStream();
  PipelineOptions options;
  options.shuffle = true;
  options.imputer = "zero";
  Result<PreparedStream> shuffled = PrepareStream(stream, options);
  ASSERT_TRUE(shuffled.ok());
  PipelineOptions plain_options;
  plain_options.imputer = "zero";
  Result<PreparedStream> plain = PrepareStream(stream, plain_options);
  ASSERT_TRUE(plain.ok());
  auto total_targets = [](const PreparedStream& s) {
    double sum = 0.0;
    for (const auto& w : s.windows) {
      for (double t : w.targets) sum += t;
    }
    return sum;
  };
  // Shuffling changes per-window normalisation, so compare raw target
  // sums only loosely: same count of rows.
  int64_t shuffled_rows = 0;
  int64_t plain_rows = 0;
  for (const auto& w : shuffled->windows) shuffled_rows += w.features.rows();
  for (const auto& w : plain->windows) plain_rows += w.features.rows();
  EXPECT_EQ(shuffled_rows, plain_rows);
  (void)total_targets;
}

}  // namespace
}  // namespace oebench
