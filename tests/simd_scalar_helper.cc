// Compiled with -DOEBENCH_SIMD_DISABLE (see tests/CMakeLists.txt):
// every oebench::simd call below resolves to the scalar_path inline
// namespace, giving the test binary a linkable scalar variant of each
// kernel alongside the SIMD variants the rest of the code uses.

#include "tests/simd_scalar_helper.h"

#ifndef OEBENCH_SIMD_DISABLE
#error "simd_scalar_helper.cc must be compiled with -DOEBENCH_SIMD_DISABLE"
#endif

#include "linalg/simd.h"

namespace oebench {
namespace scalar_kernels {

void Axpy(double* dst, const double* src, int64_t n, double a) {
  simd::Axpy(dst, src, n, a);
}
void Add(double* dst, const double* src, int64_t n) {
  simd::Add(dst, src, n);
}
void Sub(double* dst, const double* src, int64_t n) {
  simd::Sub(dst, src, n);
}
void Scale(double* v, int64_t n, double s) { simd::Scale(v, n, s); }
void Axpy4(double* dst, const double* b0, const double* b1, const double* b2,
           const double* b3, double a0, double a1, double a2, double a3,
           int64_t n) {
  simd::Axpy4(dst, b0, b1, b2, b3, a0, a1, a2, a3, n);
}
void GemvAccum(const double* a, const double* w, int64_t rows, int64_t cols,
               int64_t stride, double* out) {
  simd::GemvAccum(a, w, rows, cols, stride, out);
}
double DotSeq(const double* a, const double* b, int64_t n) {
  return simd::DotSeq(a, b, n);
}
double SumSquaresSeq(double init, const double* v, int64_t n) {
  return simd::SumSquaresSeq(init, v, n);
}
double SquaredDistanceSeq(const double* a, const double* b, int64_t n) {
  return simd::SquaredDistanceSeq(a, b, n);
}
double NanSquaredDistanceSeq(const double* a, const double* b, int64_t n,
                             int64_t* used) {
  return simd::NanSquaredDistanceSeq(a, b, n, used);
}
bool HasNan(const double* v, int64_t n) { return simd::HasNan(v, n); }
void FillNanWith(double* v, int64_t n, double fill) {
  simd::FillNanWith(v, n, fill);
}
void FillNanWithRow(double* v, const double* fill, int64_t n) {
  simd::FillNanWithRow(v, fill, n);
}
void AccumSquares(double* dst, const double* g, int64_t n) {
  simd::AccumSquares(dst, g, n);
}
void AccumAbs(double* dst, const double* g, int64_t n) {
  simd::AccumAbs(dst, g, n);
}
void AccumRowSkipNan(double* sum, double* count, const double* row,
                     int64_t n) {
  simd::AccumRowSkipNan(sum, count, row, n);
}
void AccumSqDevRowSkipNan(double* var, double* count, const double* row,
                          const double* mean, int64_t n) {
  simd::AccumSqDevRowSkipNan(var, count, row, mean, n);
}
void AccumCovRow(double* cov, const double* row, const double* mean,
                 int64_t n, double di) {
  simd::AccumCovRow(cov, row, mean, n, di);
}
void Rotate(double* x, double* y, int64_t n, double c, double s) {
  simd::Rotate(x, y, n, c, s);
}
void RotateStrided(double* x, double* y, int64_t n, int64_t stride, double c,
                   double s) {
  simd::RotateStrided(x, y, n, stride, c, s);
}

}  // namespace scalar_kernels
}  // namespace oebench
