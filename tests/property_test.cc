// Property-style parameterised sweeps over the open-environment knobs:
// detector sensitivity vs drift magnitude, imputer quality vs missing
// rate, generator realisation of spec parameters, and the paper's §5.3
// failure-injection observation (a single extreme outlier destabilises
// the NN while the decision tree survives).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/evaluator.h"
#include "drift/hdddm.h"
#include "drift/ks_test.h"
#include "models/decision_tree.h"
#include "models/mlp.h"
#include "preprocess/imputer.h"
#include "preprocess/pipeline.h"
#include "streamgen/stream_generator.h"

namespace oebench {
namespace {

// ---------------------------------------------------------------------
// Drift magnitude sweep: the KS detector's p-value must shrink
// monotonically-ish as the injected shift grows.

class DriftMagnitudeTest : public ::testing::TestWithParam<double> {};

TEST_P(DriftMagnitudeTest, KsPValueShrinksWithShift) {
  const double shift = GetParam();
  Rng rng(100 + static_cast<uint64_t>(shift * 10));
  std::vector<double> before(400);
  std::vector<double> after(400);
  for (double& v : before) v = rng.Gaussian();
  for (double& v : after) v = rng.Gaussian(shift, 1.0);
  KsWindowDetector detector;
  detector.Update(before);
  DriftSignal signal = detector.Update(after);
  if (shift >= 0.5) {
    EXPECT_EQ(signal, DriftSignal::kDrift) << "shift " << shift;
  }
  if (shift == 0.0) {
    EXPECT_GT(detector.last_p_value(), 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, DriftMagnitudeTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0));

// ---------------------------------------------------------------------
// Missing-rate sweep: KNN imputation error stays below zero-fill error
// on correlated data, for every missing rate.

class MissingRateTest : public ::testing::TestWithParam<double> {};

TEST_P(MissingRateTest, KnnBeatsZeroFill) {
  const double rate = GetParam();
  Rng rng(7);
  const int n = 200;
  Matrix truth(n, 3);
  for (int i = 0; i < n; ++i) {
    double base = rng.Gaussian() * 2.0 + 5.0;
    truth.At(i, 0) = base + 0.1 * rng.Gaussian();
    truth.At(i, 1) = base + 0.1 * rng.Gaussian();
    truth.At(i, 2) = base + 0.1 * rng.Gaussian();
  }
  Matrix holey = truth;
  int64_t holes = 0;
  for (int64_t r = 0; r < n; ++r) {
    // At most one hole per row so neighbours stay informative.
    if (rng.Bernoulli(rate)) {
      holey.At(r, rng.UniformInt(3)) =
          std::numeric_limits<double>::quiet_NaN();
      ++holes;
    }
  }
  if (holes == 0) GTEST_SKIP();

  auto reconstruction_error = [&](Imputer* imputer) {
    EXPECT_TRUE(imputer->Fit(holey).ok());
    Matrix filled = holey;
    EXPECT_TRUE(imputer->Transform(&filled).ok());
    double err = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < 3; ++c) {
        if (std::isnan(holey.At(r, c))) {
          double d = filled.At(r, c) - truth.At(r, c);
          err += d * d;
        }
      }
    }
    return err / static_cast<double>(holes);
  };
  KnnImputer knn(2);
  ZeroImputer zero;
  EXPECT_LT(reconstruction_error(&knn), reconstruction_error(&zero))
      << "rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, MissingRateTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4));

// ---------------------------------------------------------------------
// Generator realisation sweep: requested missing rate is realised within
// tolerance across the whole parameter range.

class GeneratorMissingTest : public ::testing::TestWithParam<double> {};

TEST_P(GeneratorMissingTest, RealisesRequestedRate) {
  StreamSpec spec;
  spec.name = "gen_missing";
  spec.num_instances = 5000;
  spec.num_numeric_features = 6;
  spec.base_missing_rate = GetParam();
  spec.seed = 9;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  int64_t missing = 0;
  for (int j = 0; j < 6; ++j) {
    missing += stream->table.column(j).CountMissing();
  }
  double realised = static_cast<double>(missing) / (5000.0 * 6.0);
  EXPECT_NEAR(realised, GetParam(), 0.015 + 0.1 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Rates, GeneratorMissingTest,
                         ::testing::Values(0.0, 0.02, 0.08, 0.2));

// ---------------------------------------------------------------------
// Drift-pattern sweep: every pattern yields a stream HDDDM finds at
// least as drifty as the stationary control.

class DriftPatternTest : public ::testing::TestWithParam<DriftPattern> {};

// Fixed-reference KS metric: fraction of windows whose first-feature
// distribution rejects equality with window 0. (HDDDM's adaptive
// threshold legitimately acclimatises to smooth periodic drift, so it is
// the wrong instrument for an any-pattern property test.)
TEST_P(DriftPatternTest, CumulativeShiftVisibleToKsFromWindowZero) {
  auto drift_ratio = [](DriftPattern pattern, double magnitude) {
    StreamSpec spec;
    spec.name = "pattern";
    spec.num_instances = 3000;
    spec.num_numeric_features = 5;
    spec.window_size = 150;
    spec.drift_pattern = pattern;
    spec.drift_magnitude = magnitude;
    spec.noise_level = 0.1;
    spec.seed = 21;
    Result<GeneratedStream> stream = GenerateStream(spec);
    EXPECT_TRUE(stream.ok());
    Result<PreparedStream> prepared = PrepareStream(*stream);
    EXPECT_TRUE(prepared.ok());
    std::vector<double> reference =
        prepared->windows[0].features.ColVector(0);
    int drifts = 0;
    int comparisons = 0;
    for (size_t w = 1; w < prepared->windows.size(); ++w) {
      std::vector<double> current =
          prepared->windows[w].features.ColVector(0);
      double stat = KsStatistic(reference, current);
      double p = KsPValue(stat, static_cast<int64_t>(reference.size()),
                          static_cast<int64_t>(current.size()));
      ++comparisons;
      if (p < 0.05) ++drifts;
    }
    return static_cast<double>(drifts) / static_cast<double>(comparisons);
  };
  double with_drift = drift_ratio(GetParam(), 2.5);
  double stationary = drift_ratio(DriftPattern::kNone, 0.0);
  EXPECT_GT(with_drift, stationary) << DriftPatternToString(GetParam());
  EXPECT_GT(with_drift, 0.2) << DriftPatternToString(GetParam());
  EXPECT_LT(stationary, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, DriftPatternTest,
    ::testing::Values(DriftPattern::kGradual, DriftPattern::kAbrupt,
                      DriftPattern::kRecurrent, DriftPattern::kIncremental,
                      DriftPattern::kIncrementalAbrupt,
                      DriftPattern::kIncrementalReoccurring),
    [](const ::testing::TestParamInfo<DriftPattern>& info) {
      std::string name = DriftPatternToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Failure injection (§5.3): a single extreme value (the paper's 999,990
// precipitation cell) destabilises the NN's subsequent-window losses but
// the decision tree merely degrades.

TEST(FailureInjectionTest, ExtremeOutlierHarmsNnMoreThanTree) {
  StreamSpec spec;
  spec.name = "extreme";
  spec.task = TaskType::kRegression;
  spec.num_instances = 2000;
  spec.num_numeric_features = 5;
  spec.window_size = 200;
  spec.noise_level = 0.1;
  spec.seed = 77;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());

  // Inject the paper's catastrophic cell: a target value four orders of
  // magnitude beyond the normal range, in window 4.
  Result<int64_t> target_idx = stream->table.ColumnIndex("target");
  ASSERT_TRUE(target_idx.ok());
  stream->table.mutable_column(*target_idx).SetNumeric(900, 999990.0);

  PipelineOptions options;
  options.normalize = true;
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  ASSERT_TRUE(prepared.ok());

  LearnerConfig config;
  config.epochs = 5;
  EvalResult nn = RunPrequential(
      MakeLearner("Naive-NN", config, prepared->task,
                  prepared->num_classes)
          ->get(),
      *prepared);
  EvalResult dt = RunPrequential(
      MakeLearner("Naive-DT", config, prepared->task,
                  prepared->num_classes)
          ->get(),
      *prepared);

  // Post-injection windows: NN loss explodes (>= 100x its pre-injection
  // level or non-finite); the tree stays finite everywhere.
  double nn_before = nn.per_window_loss[2];
  double nn_after_max = 0.0;
  for (size_t w = 4; w < nn.per_window_loss.size(); ++w) {
    if (!std::isfinite(nn.per_window_loss[w])) {
      nn_after_max = std::numeric_limits<double>::infinity();
      break;
    }
    nn_after_max = std::max(nn_after_max, nn.per_window_loss[w]);
  }
  EXPECT_TRUE(nn_after_max > 100.0 * std::max(nn_before, 1e-3) ||
              !std::isfinite(nn_after_max));
  for (double loss : dt.per_window_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

// ---------------------------------------------------------------------
// Window-factor sweep: the prepared stream's window count scales
// inversely with the factor.

class WindowFactorTest : public ::testing::TestWithParam<double> {};

TEST_P(WindowFactorTest, WindowCountScales) {
  StreamSpec spec;
  spec.name = "wf";
  spec.num_instances = 2000;
  spec.num_numeric_features = 4;
  spec.window_size = 100;
  Result<GeneratedStream> stream = GenerateStream(spec);
  ASSERT_TRUE(stream.ok());
  PipelineOptions options;
  options.window_factor = GetParam();
  Result<PreparedStream> prepared = PrepareStream(*stream, options);
  ASSERT_TRUE(prepared.ok());
  double expected = 2000.0 / (100.0 * GetParam());
  EXPECT_NEAR(static_cast<double>(prepared->windows.size()), expected,
              1.0);
}

INSTANTIATE_TEST_SUITE_P(Factors, WindowFactorTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace oebench
