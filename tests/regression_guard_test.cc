// Regression guards for bugs found and fixed during development — each
// test documents the failure mode it pins down.

#include <gtest/gtest.h>

#include <cmath>

#include "bench/bench_util.h"
#include "common/random.h"
#include "drift/adwin.h"
#include "preprocess/normalizer.h"

namespace oebench {
namespace {

// Bug: AdwinAccuracyDetector treated ANY window cut as drift, including
// cuts caused by a *falling* error mean. ARF then replaced its freshly
// planted trees the moment they started improving — a permanent
// replacement crashloop that left the forest near chance level.
TEST(RegressionGuardTest, AdwinAccuracyIgnoresImprovingError) {
  AdwinAccuracyDetector detector;
  Rng rng(1);
  // Error rate falls from 80% to 5%: a recovering model.
  int drifts = 0;
  for (int i = 0; i < 1500; ++i) {
    detector.Update(rng.Bernoulli(0.8) ? 1.0 : 0.0);
  }
  for (int i = 0; i < 1500; ++i) {
    if (detector.Update(rng.Bernoulli(0.05) ? 1.0 : 0.0) ==
        DriftSignal::kDrift) {
      ++drifts;
    }
  }
  EXPECT_EQ(drifts, 0);
  // The mirror case — error rising — must still alarm.
  bool fired = false;
  for (int i = 0; i < 1500 && !fired; ++i) {
    fired = detector.Update(rng.Bernoulli(0.7) ? 1.0 : 0.0) ==
            DriftSignal::kDrift;
  }
  EXPECT_TRUE(fired);
}

// Bug: the normaliser divided zero-variance columns by epsilon (1e-9),
// so a feature that was all-missing (imputed to a constant) in window 0
// exploded to ~1e9 the moment the sensor came online — NN losses went
// to 1e15 on the AIR stream (the §5.1 incremental-feature case).
TEST(RegressionGuardTest, ZeroVarianceColumnNormalisesByOne) {
  Matrix fit = Matrix::FromRows({{5.0, 0.0}, {5.0, 2.0}});
  Normalizer norm;
  ASSERT_TRUE(norm.Fit(fit).ok());
  // Column 0 had zero variance at fit time; a later value of 7 must map
  // to 7 - 5 = 2, not (7-5)/1e-9.
  EXPECT_NEAR(norm.TransformValue(0, 7.0), 2.0, 1e-9);
  EXPECT_NEAR(norm.InverseTransformValue(0, 2.0), 7.0, 1e-9);
}

// Bench utility coverage (used by every table/figure binary).
TEST(BenchUtilTest, SparkRendersExtremaAndNonFinite) {
  std::string spark =
      bench::Spark({0.0, 1.0, std::numeric_limits<double>::infinity()});
  EXPECT_NE(spark.find("!"), std::string::npos);
  EXPECT_EQ(bench::Spark({}), "");
  // A constant nonzero series renders mid-scale throughout (all-▁ would
  // be indistinguishable from all-zero data); all-zero stays lowest.
  EXPECT_EQ(bench::Spark({2.0, 2.0, 2.0}), "▄▄▄");
  EXPECT_EQ(bench::Spark({0.0, 0.0, 0.0}), "▁▁▁");
}

TEST(BenchUtilTest, FormatLossHandlesNa) {
  RepeatedResult na;
  na.not_applicable = true;
  EXPECT_EQ(bench::FormatLoss(na), "N/A");
  RepeatedResult ok;
  ok.loss_mean = 0.1234;
  ok.loss_stddev = 0.0056;
  EXPECT_EQ(bench::FormatLoss(ok), "0.123±0.006");
}

TEST(BenchUtilTest, ParseFlagsReadsKnobs) {
  const char* argv[] = {"bench", "--scale=0.5", "--repeats=7",
                        "--seed=42"};
  bench::BenchFlags flags =
      bench::ParseFlags(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.scale, 0.5);
  EXPECT_EQ(flags.repeats, 7);
  EXPECT_EQ(flags.seed, 42u);
  bench::BenchFlags defaults =
      bench::ParseFlags(1, const_cast<char**>(argv), 0.25, 3);
  EXPECT_DOUBLE_EQ(defaults.scale, 0.25);
  EXPECT_EQ(defaults.repeats, 3);
}

}  // namespace
}  // namespace oebench
